//! Node classification on a Cora-like citation network: AdamGNN against
//! the flat GCN baseline, reproducing the shape of the paper's Table 2.
//!
//! Run with: `cargo run --release --example citation_node_classification`

use adamgnn_repro::data::{make_node_dataset, NodeDatasetKind, NodeGenConfig};
use adamgnn_repro::eval::{NodeModelKind, SessionKind, TrainConfig, TrainSession};

fn main() {
    // A scaled-down Cora analogue (same class structure; see DESIGN.md for
    // the synthetic-data substitution rationale).
    let ds = make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale: 0.25,
            max_feat_dim: 128,
            seed: 7,
        },
    );
    println!(
        "dataset: {} ({} nodes, {} edges, {} classes, {} features)\n",
        ds.name,
        ds.n(),
        ds.graph.num_edges(),
        ds.num_classes,
        ds.feat_dim()
    );

    let cfg = TrainConfig {
        epochs: 60,
        lr: 0.01,
        patience: 20,
        hidden: 32,
        levels: 3,
        seed: 1,
        ..Default::default()
    };
    for kind in [
        NodeModelKind::Gcn,
        NodeModelKind::Gat,
        NodeModelKind::AdamGnn,
    ] {
        let started = std::time::Instant::now();
        let res = TrainSession::new(SessionKind::NodeClassification(kind), &cfg)
            .run(&ds)
            .expect("training run");
        println!(
            "{:10}  test accuracy = {:5.2}%   (val {:5.2}%, {} epochs, {:.1}s)",
            kind.name(),
            100.0 * res.test_metric,
            100.0 * res.val_metric.unwrap_or(f64::NAN),
            res.epochs_run,
            started.elapsed().as_secs_f64()
        );
    }
    println!("\nAdamGNN's multi-grained messages typically lift accuracy over");
    println!("the flat baselines on community-structured citation graphs.");
}

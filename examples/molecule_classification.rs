//! Graph classification on a Mutagenicity-like molecule dataset: hierarchical
//! pooling (AdamGNN, SAGPool) against the flat GIN baseline — the
//! workload of the paper's Table 1.
//!
//! Run with: `cargo run --release --example molecule_classification`

use adamgnn_repro::data::{make_graph_dataset, GraphDatasetKind, GraphGenConfig};
use adamgnn_repro::eval::{GraphModelKind, SessionKind, TrainConfig, TrainSession};

fn main() {
    let ds = make_graph_dataset(
        GraphDatasetKind::Mutagenicity,
        &GraphGenConfig {
            scale: 0.1,
            max_nodes: 40,
            seed: 5,
        },
    );
    println!(
        "dataset: {} ({} graphs, avg {:.1} nodes, avg {:.1} edges, {} atom types)\n",
        ds.name,
        ds.len(),
        ds.avg_nodes(),
        ds.avg_edges(),
        ds.feat_dim
    );

    let cfg = TrainConfig {
        epochs: 60,
        lr: 0.01,
        patience: 60,
        hidden: 32,
        levels: 2,
        seed: 2,
        ..Default::default()
    };
    for kind in [
        GraphModelKind::Gin,
        GraphModelKind::SagPool,
        GraphModelKind::AdamGnn,
    ] {
        let started = std::time::Instant::now();
        let res = TrainSession::new(SessionKind::GraphClassification(kind), &cfg)
            .run(&ds)
            .expect("training run");
        println!(
            "{:10}  test accuracy = {:5.2}%   ({:.3}s/epoch, total {:.1}s)",
            kind.name(),
            100.0 * res.test_metric,
            res.epoch_seconds.unwrap_or(f64::NAN),
            started.elapsed().as_secs_f64()
        );
    }
    println!("\nThe class signal is a planted ring motif over marked atoms — the");
    println!("meso-level structure hierarchical pooling captures. Single runs at");
    println!("this scale are noisy; see EXPERIMENTS.md for multi-seed tables.");
}

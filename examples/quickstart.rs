//! Quickstart: build a small attributed graph, train AdamGNN for node
//! classification, and inspect the multi-grained structure it discovers.
//!
//! Run with: `cargo run --release --example quickstart`

use adamgnn_repro::core::{kl_loss, reconstruction_loss, total_loss, LossWeights};
use adamgnn_repro::core::{AdamGnnConfig, AdamGnnNode};
use adamgnn_repro::graph::Topology;
use adamgnn_repro::nn::GraphCtx;
use adamgnn_repro::tensor::{AdamConfig, Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn main() {
    // A graph with three communities of five nodes each, sparsely bridged.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for c in 0..3u32 {
        let base = c * 5;
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((4, 5));
    edges.push((9, 10));
    let n = 15;
    let graph = Topology::from_edges(n, &edges);
    let labels: Vec<usize> = (0..n).map(|i| i / 5).collect();
    let ctx = GraphCtx::new(graph, Matrix::eye(n));

    // Model: 2 granularity levels, 16-dim hidden, 3-class head.
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let mut cfg = AdamGnnConfig::new(n, 16, 2);
    cfg.dropout = 0.0;
    let model = AdamGnnNode::new(&mut store, cfg, 3, &mut rng);
    println!("AdamGNN with {} parameters", store.num_scalars());

    // Train with the paper's composite loss L = L_task + γ L_KL + δ L_R.
    let adam = AdamConfig::with_lr(0.03);
    let weights = LossWeights::default();
    let targets = Rc::new(labels.clone());
    let nodes = Rc::new((0..n).collect::<Vec<_>>());
    for epoch in 0..200 {
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (logits, internals) = model.forward_full(&tape, &bind, &ctx, true, &mut rng);
        let task = tape.cross_entropy(logits, targets.clone(), nodes.clone());
        let kl = kl_loss(&tape, internals.h, &internals.egos_l1);
        let recon = reconstruction_loss(&tape, internals.h, &ctx.graph, &mut rng);
        let loss = total_loss(&tape, task, kl, recon, &weights);
        if epoch % 50 == 0 {
            println!("epoch {epoch:3}  loss = {:.4}", tape.value(loss).scalar());
        }
        let mut grads = tape.backward(loss);
        store.step(&mut grads, &bind, &adam);
    }

    // Inspect: accuracy and the discovered multi-grained structure.
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let (logits, internals) = model.forward_full(&tape, &bind, &ctx, false, &mut rng);
    let lv = tape.value_cloned(logits);
    let correct = (0..n).filter(|&i| lv.row_argmax(i) == labels[i]).count();
    println!("\ntrain accuracy: {}/{n}", correct);
    println!(
        "level-1 egos (adaptively selected, no ratio hyper-parameter): {:?}",
        internals.egos_l1
    );
    for (k, level) in internals.levels.iter().enumerate() {
        println!("level {}: {} hyper-nodes", k + 1, level.size);
    }
    if let Some(beta) = internals.beta {
        let bv = tape.value(beta);
        println!("\nflyback attention (node -> weight per level):");
        for i in [0usize, 7, 14] {
            let row: Vec<String> = bv.row(i).iter().map(|x| format!("{x:.2}")).collect();
            println!("  node {i:2}: {}", row.join("  "));
        }
    }
}

//! Explainability: AdamGNN explains a node's representation "in terms of
//! the scope of the graph" — which granularity level it draws on (flyback
//! attention β) and which region each of its hyper-nodes summarises.
//!
//! Run with: `cargo run --release --example explainability`

use adamgnn_repro::core::{
    kl_loss, reconstruction_loss, total_loss, AdamGnnConfig, AdamGnnNode, LossWeights,
};
use adamgnn_repro::graph::Topology;
use adamgnn_repro::nn::GraphCtx;
use adamgnn_repro::tensor::{AdamConfig, Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn main() {
    // Three communities of different density: a clique, a ring, a star.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..5u32 {
        for j in (i + 1)..5 {
            edges.push((i, j)); // clique 0-4
        }
    }
    for i in 0..5u32 {
        edges.push((5 + i, 5 + (i + 1) % 5)); // ring 5-9
    }
    for i in 11..15u32 {
        edges.push((10, i)); // star 10-14
    }
    edges.push((4, 5));
    edges.push((9, 10));
    let n = 15;
    let labels: Vec<usize> = (0..n).map(|i| i / 5).collect();
    let ctx = GraphCtx::new(Topology::from_edges(n, &edges), Matrix::eye(n));

    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let mut cfg = AdamGnnConfig::new(n, 16, 2);
    cfg.dropout = 0.0;
    let model = AdamGnnNode::new(&mut store, cfg, 3, &mut rng);
    let adam = AdamConfig::with_lr(0.03);
    let targets = Rc::new(labels);
    let nodes = Rc::new((0..n).collect::<Vec<_>>());
    for _ in 0..150 {
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (logits, out) = model.forward_full(&tape, &bind, &ctx, true, &mut rng);
        let task = tape.cross_entropy(logits, targets.clone(), nodes.clone());
        let kl = kl_loss(&tape, out.h, &out.egos_l1);
        let recon = reconstruction_loss(&tape, out.h, &ctx.graph, &mut rng);
        let loss = total_loss(&tape, task, kl, recon, &LossWeights::default());
        let mut grads = tape.backward(loss);
        store.step(&mut grads, &bind, &adam);
    }

    let tape = Tape::new();
    let bind = store.bind(&tape);
    let (_, out) = model.forward_full(&tape, &bind, &ctx, false, &mut rng);
    println!(
        "multi-grained structure: {} levels pooled\n",
        out.levels.len()
    );
    for node in [0usize, 7, 10] {
        let exp = out.explain(&tape, node);
        println!("node {node}:");
        for le in &exp.levels {
            println!(
                "  level {}: beta = {:.3}, hyper-node {} (membership {:.3})",
                le.level, le.beta, le.hyper_node, le.membership
            );
            println!("           scope = {:?}", le.scope);
        }
        println!();
    }
    println!("The scope shows which region of the graph each level's message");
    println!("summarises — the paper's 'explanation in terms of the scope of");
    println!("the graph' (contribution 3).");
}

//! Link prediction on a DBLP-like co-authorship network, evaluated with
//! ROC-AUC on held-out edges — the paper's strongest result (Table 2
//! reports up to 25% AUC improvement for AdamGNN).
//!
//! Run with: `cargo run --release --example link_prediction`

use adamgnn_repro::data::{make_node_dataset, NodeDatasetKind, NodeGenConfig};
use adamgnn_repro::eval::{NodeModelKind, SessionKind, TrainConfig, TrainSession};

fn main() {
    let ds = make_node_dataset(
        NodeDatasetKind::Dblp,
        &NodeGenConfig {
            scale: 0.4,
            max_feat_dim: 256,
            seed: 9,
        },
    );
    println!(
        "dataset: {} ({} nodes, {} edges; 80/10/10 edge split + sampled non-edges)\n",
        ds.name,
        ds.n(),
        ds.graph.num_edges()
    );

    let cfg = TrainConfig {
        epochs: 80,
        lr: 0.01,
        patience: 80,
        hidden: 64,
        levels: 4,
        seed: 4,
        ..Default::default()
    };
    for kind in [
        NodeModelKind::Gcn,
        NodeModelKind::GraphSage,
        NodeModelKind::AdamGnn,
    ] {
        let started = std::time::Instant::now();
        let res = TrainSession::new(SessionKind::LinkPrediction(kind), &cfg)
            .run(&ds)
            .expect("training run");
        println!(
            "{:10}  test ROC-AUC = {:.3}   (val {:.3}, {} epochs, {:.1}s)",
            kind.name(),
            res.test_metric,
            res.val_metric.unwrap_or(f64::NAN),
            res.epochs_run,
            started.elapsed().as_secs_f64()
        );
    }
    println!("\nFor link prediction AdamGNN trains with L = L_R + γ L_KL: the");
    println!("reconstruction objective *is* the task, and the KL term sharpens");
    println!("the ego-network structure the decoder exploits.");
}

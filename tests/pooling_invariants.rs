//! Property-based integration tests of AdamGNN's pooling invariants on
//! random graphs (Proposition 1 and structural guarantees).

use adamgnn_repro::core::{build_s_plan, ego_fitness, select_egos, EgoPairs, ValueSource};
use adamgnn_repro::graph::Topology;
use proptest::prelude::*;

/// Random connected graph: a random tree plus extra edges.
fn connected_graph() -> impl Strategy<Value = Topology> {
    (3..25usize).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..1000u32, n - 1),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..n),
        )
            .prop_map(move |(parents, extra)| {
                let mut edges: Vec<(u32, u32)> = (1..n as u32)
                    .map(|v| (parents[v as usize - 1] % v, v))
                    .collect();
                edges.extend(extra);
                Topology::from_edges(n, &edges)
            })
    })
}

/// Distinct random fitness values per pair.
fn distinct_phi(len: usize) -> Vec<f64> {
    (0..len)
        .map(|k| 0.1 + 0.001 * ((k * 7919) % 1000) as f64 + 1e-9 * k as f64)
        .collect()
}

proptest! {
    /// Proposition 1: with pairwise-distinct ego fitness, a connected
    /// graph always yields at least one selected ego.
    #[test]
    fn proposition1_some_ego_selected(g in connected_graph()) {
        let pairs = EgoPairs::build(&g, 1);
        prop_assume!(!pairs.is_empty());
        let phi = distinct_phi(pairs.len());
        let mut ego_phi = ego_fitness(&pairs, &phi, g.n());
        // force distinctness (ties are measure-zero in training but can
        // occur with synthetic values)
        for (i, v) in ego_phi.iter_mut().enumerate() {
            *v += 1e-7 * i as f64;
        }
        let egos = select_egos(&g, &ego_phi);
        prop_assert!(!egos.is_empty(), "Proposition 1 violated");
    }

    /// Selected egos are never adjacent (two adjacent strict local maxima
    /// are impossible).
    #[test]
    fn selected_egos_are_independent_set(g in connected_graph()) {
        let pairs = EgoPairs::build(&g, 1);
        prop_assume!(!pairs.is_empty());
        let phi = distinct_phi(pairs.len());
        let ego_phi = ego_fitness(&pairs, &phi, g.n());
        let egos = select_egos(&g, &ego_phi);
        for (a, &e1) in egos.iter().enumerate() {
            for &e2 in &egos[a + 1..] {
                prop_assert!(!g.has_edge(e1, e2), "adjacent egos {e1},{e2}");
            }
        }
    }

    /// The S plan never loses a node: every row of `S_k` has at least one
    /// stored entry (the paper's no-information-loss claim vs Top-k).
    #[test]
    fn s_plan_covers_all_nodes(g in connected_graph()) {
        let pairs = EgoPairs::build(&g, 1);
        prop_assume!(!pairs.is_empty());
        let phi = distinct_phi(pairs.len());
        let ego_phi = ego_fitness(&pairs, &phi, g.n());
        let egos = select_egos(&g, &ego_phi);
        prop_assume!(!egos.is_empty());
        let plan = build_s_plan(&g, &pairs, &phi, 1, &egos);
        for r in 0..g.n() {
            prop_assert!(!plan.csr.row_indices(r).is_empty(), "node {r} dropped");
        }
        // the hyper graph is never larger than the original
        prop_assert!(plan.m() <= g.n());
        // ego diagonals are constants, member entries are pair-sourced
        for (r, c, k) in plan.csr.iter() {
            if c < plan.num_egos && r == plan.col_base[c] {
                prop_assert_eq!(plan.sources[k], ValueSource::One);
            }
        }
    }

    /// Column bases are a valid mapping and retained columns have exactly
    /// one entry (the node itself).
    #[test]
    fn retained_columns_are_singletons(g in connected_graph()) {
        let pairs = EgoPairs::build(&g, 1);
        prop_assume!(!pairs.is_empty());
        let phi = distinct_phi(pairs.len());
        let ego_phi = ego_fitness(&pairs, &phi, g.n());
        let egos = select_egos(&g, &ego_phi);
        prop_assume!(!egos.is_empty());
        let plan = build_s_plan(&g, &pairs, &phi, 1, &egos);
        let mut per_col = vec![0usize; plan.m()];
        for (_, c, _) in plan.csr.iter() {
            per_col[c] += 1;
        }
        for (c, &cnt) in per_col.iter().enumerate().skip(plan.num_egos) {
            prop_assert_eq!(cnt, 1, "retained col {} should be a singleton", c);
        }
        // retained nodes must not be members of any selected ego-network
        for c in plan.num_egos..plan.m() {
            let node = plan.col_base[c];
            for &ego in &plan.egos {
                prop_assert!(
                    !g.has_edge(node, ego),
                    "retained node {node} is adjacent to ego {ego}"
                );
            }
        }
    }
}

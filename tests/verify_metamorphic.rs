//! Pillar 2: metamorphic invariants of the AdamGNN pipeline.
//!
//! AdamGNN is a function of an abstract graph, so relabelling node ids
//! must permute node-level outputs the same way (embeddings, flyback β)
//! and leave every scalar unchanged within float-reassociation tolerance
//! (loss terms, graph readouts). Two satellite invariants ride along:
//! the flyback β rows form a probability simplex, and the level-1
//! hyper-node formation matrix routes every unpooled row back to a node
//! that actually owns it (ego, ego-network member, or retained node).

use adamgnn_core::{
    decomposed_loss, AdamGnnConfig, AdamGnnGc, AdamGnnNode, LossWeights, PoolingKind, ReconPlan,
};
use mg_graph::Topology;
use mg_nn::gc::GraphClassifier;
use mg_nn::testkit::seeds;
use mg_nn::GraphCtx;
use mg_tensor::{Matrix, ParamStore, Tape};
use mg_verify::metamorphic::{
    max_row_mapped_diff, permute_rows, permute_topology, pooling_structures_match,
    random_permutation,
};
use proptest::prelude::*;
use std::rc::Rc;

const FEAT: usize = 6;
/// Slack for float reassociation: permuting node ids reorders CSR rows
/// and attention segments, so sums re-associate.
const TOL: f64 = 1e-7;

/// Random connected-ish graph + features, small enough that 64 cases of
/// two full forwards stay fast.
fn graph_and_features() -> impl Strategy<Value = (Topology, Matrix)> {
    (6..14usize).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), n..3 * n),
            proptest::collection::vec(-1.0..1.0f64, n * FEAT),
        )
            .prop_map(move |(mut edges, feat)| {
                // a ring backbone keeps the graph connected so pooling
                // has something to select
                for i in 0..n as u32 {
                    edges.push((i, (i + 1) % n as u32));
                }
                (
                    Topology::from_edges(n, &edges),
                    Matrix::from_vec(n, FEAT, feat),
                )
            })
    })
}

struct Observed {
    h: Matrix,
    beta: Option<Matrix>,
    /// Per level: (selected egos, column anchors), previous-level ids.
    levels: Vec<(Vec<usize>, Vec<usize>)>,
    /// (task, kl, recon, total)
    losses: [f64; 4],
}

fn observe(
    store: &ParamStore,
    model: &AdamGnnNode,
    ctx: &GraphCtx,
    targets: &Rc<Vec<usize>>,
    nodes: &Rc<Vec<usize>>,
    plan: &ReconPlan,
) -> Observed {
    let weights = LossWeights::default();
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let (b, out) = decomposed_loss(&tape, &bind, model, ctx, targets, nodes, plan, &weights);
    let observed = Observed {
        h: tape.value(out.h).clone(),
        beta: out.beta.map(|v| tape.value(v).clone()),
        levels: out
            .levels
            .iter()
            .map(|l| (l.egos.clone(), l.col_base.clone()))
            .collect(),
        losses: [
            tape.value(b.task).scalar(),
            tape.value(b.kl).scalar(),
            tape.value(b.recon).scalar(),
            tape.value(b.total).scalar(),
        ],
    };
    observed
}

fn node_model(n_feat: usize, pooling: PoolingKind) -> (ParamStore, AdamGnnNode) {
    let mut store = ParamStore::new();
    let mut cfg = AdamGnnConfig::new(n_feat, 10, 2);
    cfg.dropout = 0.0;
    cfg.pooling = pooling;
    let model = AdamGnnNode::new(&mut store, cfg, 2, &mut seeds::model_init());
    (store, model)
}

/// One of the three shipped pooling operators, uniformly — the
/// metamorphic invariants are claims about the [`Pooling`] trait
/// contract, so every implementor must satisfy them.
fn any_pooling() -> impl Strategy<Value = PoolingKind> {
    (0usize..PoolingKind::ALL.len()).prop_map(|i| PoolingKind::ALL[i])
}

proptest! {
    /// Node-id permutation permutes embeddings and β rows, maps the ego
    /// (or anchor/cluster) set, and leaves every loss term stable — for
    /// every pooling operator behind the trait.
    #[test]
    fn permutation_equivariance_of_embeddings_and_losses(
        (g, x) in graph_and_features(),
        pooling in any_pooling(),
        pseed in 0u64..10_000,
    ) {
        let n = g.n();
        let perm = random_permutation(n, pseed);
        let (store, model) = node_model(FEAT, pooling);

        let ctx = GraphCtx::new(g.clone(), x.clone());
        let targets = Rc::new((0..n).map(|i| i % 2).collect::<Vec<_>>());
        let nodes = Rc::new((0..n).collect::<Vec<_>>());
        let plan = ReconPlan::sample(&ctx.graph, 7);
        let base = observe(&store, &model, &ctx, &targets, &nodes, &plan);

        let ctx_p = GraphCtx::new(permute_topology(&g, &perm), permute_rows(&x, &perm));
        // same supervision, relabelled: targets are indexed by node id, so
        // node perm[i] must keep node i's label
        let mut tp = vec![0usize; n];
        for i in 0..n {
            tp[perm[i]] = targets[i];
        }
        let targets_p = Rc::new(tp);
        let nodes_p = Rc::new(nodes.iter().map(|&i| perm[i]).collect::<Vec<_>>());
        let plan_p = plan.relabel(&perm);
        let other = observe(&store, &model, &ctx_p, &targets_p, &nodes_p, &plan_p);

        // Ego selection is equivariant only up to fitness ties: exact ties
        // break lexicographically by node id (by design, see select_egos)
        // and near-ties can flip when segment sums re-associate under the
        // relabelling. Such flips change the discrete pooling structure,
        // so the continuous invariants below are only claimed for stable
        // cases — unstable ones are discarded and regenerated (the runner
        // caps total discards, so a systematic equivariance bug in the
        // selection would still fail the test as a reject storm).
        prop_assume!(pooling_structures_match(&base.levels, &other.levels, &perm));

        let hd = max_row_mapped_diff(&base.h, &other.h, &perm);
        prop_assert!(hd < TOL, "embedding equivariance violated: {hd:e}");

        match (&base.beta, &other.beta) {
            (Some(a), Some(b)) => {
                let bd = max_row_mapped_diff(a, b, &perm);
                prop_assert!(bd < TOL, "flyback β not equivariant: {bd:e}");
            }
            (None, None) => {}
            _ => prop_assert!(false, "flyback β present on one side only"),
        }

        for (name, (a, b)) in ["task", "kl", "recon", "total"]
            .iter()
            .zip(base.losses.iter().zip(other.losses.iter()))
        {
            let rel = (a - b).abs() / a.abs().max(b.abs()).max(1.0);
            prop_assert!(rel < TOL, "{name} loss drifted under relabelling: {a} vs {b}");
        }
    }

    /// Satellite: flyback β rows are a probability simplex — entries
    /// non-negative, each row summing to 1 — whatever operator pooled.
    #[test]
    fn flyback_beta_rows_form_a_simplex(
        (g, x) in graph_and_features(),
        pooling in any_pooling(),
    ) {
        let (store, model) = node_model(FEAT, pooling);
        let ctx = GraphCtx::new(g, x);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (_, out) = model.forward_full(
            &tape, &bind, &ctx, false, &mut seeds::forward_rng(),
        );
        prop_assume!(out.beta.is_some()); // graphs that pooled nothing have no β
        let beta = tape.value(out.beta.unwrap()).clone();
        prop_assert_eq!(beta.rows(), ctx.n());
        for i in 0..beta.rows() {
            let mut sum = 0.0;
            for j in 0..beta.cols() {
                let v = beta[(i, j)];
                prop_assert!(v >= 0.0, "β[{i},{j}] = {v} negative");
                prop_assert!(v.is_finite());
                sum += v;
            }
            prop_assert!((sum - 1.0).abs() < 1e-9, "β row {i} sums to {sum}");
        }
    }

    /// The graph-level readout is permutation-invariant: an AdamGNN graph
    /// classifier scores a relabelled graph identically — under every
    /// pooling operator.
    #[test]
    fn graph_readout_is_permutation_invariant(
        (g, x) in graph_and_features(),
        pooling in any_pooling(),
        pseed in 0u64..10_000,
    ) {
        let perm = random_permutation(g.n(), pseed);
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(FEAT, 10, 2);
        cfg.dropout = 0.0;
        cfg.pooling = pooling;
        let model = AdamGnnGc::new(&mut store, cfg, 3, &mut seeds::model_init());
        // logits plus the discrete pooling structure (eval-mode forwards
        // are deterministic, so the two forwards see identical structure)
        let run = |g: Topology, x: Matrix| {
            let ctx = GraphCtx::new(g, x);
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let core = model
                .core()
                .forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
            let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
            let logits = tape.value(out.logits).clone();
            let levels: Vec<(Vec<usize>, Vec<usize>)> = core
                .levels
                .iter()
                .map(|l| (l.egos.clone(), l.col_base.clone()))
                .collect();
            (logits, levels)
        };
        let (a, levels_a) = run(g.clone(), x.clone());
        let (b, levels_b) = run(permute_topology(&g, &perm), permute_rows(&x, &perm));
        // discard tie-flip cases, as in the equivariance test above
        prop_assume!(pooling_structures_match(&levels_a, &levels_b, &perm));
        for j in 0..a.cols() {
            prop_assert!(
                (a[(0, j)] - b[(0, j)]).abs() < TOL,
                "readout logit {j} drifted: {} vs {}", a[(0, j)], b[(0, j)]
            );
        }
    }

    /// Satellite: unpooling round-trip row ownership, specific to the
    /// default operator's sparse formation matrix (SpaPool's soft
    /// assignment deliberately spreads mass to every anchor, and ASAP's
    /// clusters overlap). Pushing the hyper-node identity through the
    /// level-1 formation matrix must route mass only to rows the
    /// hyper-node owns — its ego (weight exactly 1), the ego's λ=1
    /// members, or the retained node itself — and every node must be
    /// owned by at least one hyper-node.
    #[test]
    fn unpooling_routes_rows_to_their_owners((g, x) in graph_and_features()) {
        let (store, model) = node_model(FEAT, PoolingKind::AdamGnn);
        let ctx = GraphCtx::new(g.clone(), x);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (_, out) = model.forward_full(
            &tape, &bind, &ctx, false, &mut seeds::forward_rng(),
        );
        prop_assume!(!out.levels.is_empty());
        let lvl = &out.levels[0];
        let m = lvl.size;
        // unpool the identity: column c of the result is S e_c
        let eye = tape.constant(Matrix::eye(m));
        let up = tape.spmm(lvl.s_csr.clone(), lvl.s_vals, eye);
        let dense = tape.value(up).clone();
        prop_assert_eq!(dense.shape(), (g.n(), m));

        let num_egos = lvl.egos.len();
        let mut owned = vec![false; g.n()];
        for r in 0..g.n() {
            for c in 0..m {
                let v = dense[(r, c)];
                if v == 0.0 {
                    continue;
                }
                owned[r] = true;
                if c < num_egos {
                    let ego = lvl.egos[c];
                    if r == ego {
                        prop_assert!(v == 1.0, "ego row weight must be exactly 1, got {v}");
                    } else {
                        prop_assert!(
                            g.has_edge(r, ego),
                            "row {r} got mass from hyper-node {c} (ego {ego}) it does not belong to"
                        );
                        prop_assert!(v > 0.0 && v.is_finite(), "member weight {v} out of range");
                    }
                } else {
                    // retained node: an identity row
                    prop_assert!(v == 1.0, "retained row weight must be exactly 1, got {v}");
                }
            }
        }
        for (r, &o) in owned.iter().enumerate() {
            prop_assert!(o, "node {r} lost by the unpooling round trip");
        }
    }
}

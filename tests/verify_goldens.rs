//! Pillar 3: golden-trace regression.
//!
//! One seeded training run per task family, each pinned as a checked-in
//! per-epoch trace under `tests/goldens/`. The comparison is bitwise —
//! the IEEE-754 bits in the golden are authoritative — so any change to
//! the numerics, however small, surfaces here with a unified diff of the
//! stored trace. Intentional changes are accepted by regenerating:
//!
//! ```text
//! MG_UPDATE_GOLDENS=1 cargo test --test verify_goldens
//! ```
//!
//! The parallel build runs these same tests: PR 1's kernel determinism
//! means every pool width must reproduce the serial traces bit for bit
//! (the differential fuzzer sweeps pool widths explicitly).
//!
//! Under `--features fast-kernels` the blocked matmul kernels reassociate
//! the k-sum, so traces legitimately differ from the scalar goldens in
//! the low bits. The goldens stay pinned to the deterministic scalar
//! path; these file comparisons are compiled out in that mode (numeric
//! health there is covered by the tolerance parity suite in
//! `crates/tensor/tests/kernel_parity.rs` and by the differential
//! fuzzer's within-build checks, which hold in every mode).
#![cfg(not(feature = "fast-kernels"))]

use mg_verify::{
    check_against_file, goldens_dir, graph_cls_run, link_pred_run, node_cls_run, Compare, Golden,
};

fn check(actual: Golden) {
    let path = goldens_dir().join(format!("{}.json", actual.name));
    if let Err(e) = check_against_file(&path, &actual, Compare::Bitwise) {
        panic!("{e}");
    }
}

#[test]
fn node_classification_trace_matches_golden() {
    check(node_cls_run(0));
}

#[test]
fn link_prediction_trace_matches_golden() {
    check(link_pred_run(0));
}

#[test]
fn graph_classification_trace_matches_golden() {
    check(graph_cls_run(0));
}

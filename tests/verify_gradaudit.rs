//! Pillar 1: model-level gradient audit of the full AdamGNN objective.
//!
//! The whole composite loss `L_task + γ·L_KL + δ·L_R` is treated as one
//! scalar function of every parameter matrix and checked against central
//! differences on a sampled subset of entries, on a graph deep enough to
//! exercise two pooling levels. A companion test injects a sign flip into
//! the `L_R` composition via the fault hook and shows the audit catches
//! it — a class of bug plain gradcheck is structurally blind to, because
//! the flip changes the objective and its gradient coherently.

use adamgnn_core::{faults, AdamGnnConfig, AdamGnnNode, LossWeights, PoolingKind, ReconPlan};
use mg_graph::Topology;
use mg_nn::testkit::seeds;
use mg_nn::GraphCtx;
use mg_tensor::{Matrix, ParamStore, Tape};
use mg_verify::{audit_node_model, AuditConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// Four 6-cliques joined in a ring: community structure at two scales, so
/// a 2-level model genuinely pools twice.
fn clique_ring_ctx() -> (GraphCtx, Vec<usize>) {
    let n = 24usize;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for c in 0..4u32 {
        let base = c * 6;
        for i in 0..6u32 {
            for j in (i + 1)..6u32 {
                edges.push((base + i, base + j));
            }
        }
        // one bridge to the next community
        edges.push((base + 5, (base + 6) % 24));
    }
    let mut rng = StdRng::seed_from_u64(42);
    let x = Matrix::from_fn(n, 8, |_, _| rng.random::<f64>() * 2.0 - 1.0);
    let labels: Vec<usize> = (0..n).map(|i| (i / 6) % 2).collect();
    (GraphCtx::new(Topology::from_edges(n, &edges), x), labels)
}

struct Fixture {
    store: ParamStore,
    model: AdamGnnNode,
    ctx: GraphCtx,
    targets: Rc<Vec<usize>>,
    nodes: Rc<Vec<usize>>,
    plan: ReconPlan,
    weights: LossWeights,
}

fn fixture_with(pooling: PoolingKind) -> Fixture {
    let (ctx, labels) = clique_ring_ctx();
    let mut store = ParamStore::new();
    let mut cfg = AdamGnnConfig::new(8, 12, 2);
    cfg.dropout = 0.0;
    cfg.pooling = pooling;
    let model = AdamGnnNode::new(&mut store, cfg, 2, &mut seeds::model_init());
    let nodes = Rc::new((0..ctx.n()).collect::<Vec<_>>());
    let plan = ReconPlan::sample(&ctx.graph, 17);
    Fixture {
        store,
        model,
        ctx,
        targets: Rc::new(labels),
        nodes,
        plan,
        weights: LossWeights::default(),
    }
}

fn fixture() -> Fixture {
    fixture_with(PoolingKind::AdamGnn)
}

fn run_audit(f: &Fixture) -> mg_verify::AuditReport {
    audit_node_model(
        &f.store,
        &f.model,
        &f.ctx,
        &f.targets,
        &f.nodes,
        &f.plan,
        &f.weights,
        &AuditConfig::default(),
    )
}

#[test]
fn fixture_exercises_two_levels_and_all_three_terms() {
    let f = fixture();
    let tape = Tape::new();
    let bind = f.store.bind(&tape);
    let (breakdown, out) = adamgnn_core::decomposed_loss(
        &tape, &bind, &f.model, &f.ctx, &f.targets, &f.nodes, &f.plan, &f.weights,
    );
    assert!(
        out.levels.len() >= 2,
        "audit graph must pool 2 levels, got {}",
        out.levels.len()
    );
    let task = tape.value(breakdown.task).scalar();
    let kl = tape.value(breakdown.kl).scalar();
    let recon = tape.value(breakdown.recon).scalar();
    assert!(task > 0.0, "task loss inactive: {task}");
    assert!(kl != 0.0 && kl.is_finite(), "KL loss inactive: {kl}");
    assert!(recon > 0.0, "reconstruction loss inactive: {recon}");
    assert!(f.weights.gamma > 0.0 && f.weights.delta > 0.0);
}

#[test]
fn model_gradients_match_central_differences() {
    let f = fixture();
    let report = run_audit(&f);
    assert!(
        report.ok(&AuditConfig::default()),
        "model-level audit failed:\n  {}",
        report.problems(&AuditConfig::default()).join("\n  ")
    );
    // The ISSUE's acceptance bar, asserted explicitly: relative error of
    // the whole-model gradient below 1e-4.
    assert!(
        report.grad.max_rel_err < 1e-4 || report.grad.max_abs_err < 1e-4,
        "gradient error too large: abs {:.3e} rel {:.3e} over {} entries",
        report.grad.max_abs_err,
        report.grad.max_rel_err,
        report.grad.entries_checked
    );
    assert!(report.grad.entries_checked > 0);
}

/// The same whole-model audit for each rival operator: ASAP's LEConv
/// scoring + intra-cluster attention path, and SpaPool's soft assignment
/// (whose entropy auxiliary joins the objective). Their discrete
/// selections are pinned by the freeze, so the frozen objective is the
/// exact function the backward pass differentiates — same contract as
/// the default operator.
#[test]
fn rival_operator_gradients_match_central_differences() {
    for kind in [PoolingKind::Asap, PoolingKind::SpaPool] {
        let f = fixture_with(kind);
        let report = run_audit(&f);
        assert!(
            report.ok(&AuditConfig::default()),
            "{:?} model-level audit failed:\n  {}",
            kind,
            report.problems(&AuditConfig::default()).join("\n  ")
        );
        assert!(
            report.grad.max_rel_err < 1e-4 || report.grad.max_abs_err < 1e-4,
            "{:?} gradient error too large: abs {:.3e} rel {:.3e} over {} entries",
            kind,
            report.grad.max_abs_err,
            report.grad.max_rel_err,
            report.grad.entries_checked
        );
        assert!(report.grad.entries_checked > 0);
    }
}

/// SpaPool's auxiliary term must actually be live in the fixture —
/// otherwise the rival audit above would not be exercising its gradient.
#[test]
fn spapool_fixture_has_live_aux_term() {
    let f = fixture_with(PoolingKind::SpaPool);
    let report = run_audit(&f);
    assert!(
        report.aux != 0.0 && report.aux.is_finite(),
        "SpaPool aux term inactive: {}",
        report.aux
    );
}

#[test]
fn injected_recon_sign_flip_is_caught() {
    let f = fixture();
    let report = faults::with_flipped_recon_sign(|| run_audit(&f));
    let cfg = AuditConfig::default();
    assert!(
        !report.ok(&cfg),
        "audit must catch a sign flip in the L_R composition"
    );
    let problems = report.problems(&cfg).join("\n");
    assert!(
        problems.contains("decomposition inconsistent"),
        "the decomposition-consistency check should be what fires:\n{problems}"
    );
    // And the hook disarms on scope exit: a fresh audit passes again.
    assert!(run_audit(&f).ok(&cfg));
}

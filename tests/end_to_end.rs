//! Cross-crate integration tests: dataset generation → context building →
//! model training → metrics, exercising the same paths as the benchmark
//! harness end to end.

use adamgnn_repro::data::{
    make_graph_dataset, make_node_dataset, GraphDatasetKind, GraphGenConfig, NodeDatasetKind,
    NodeGenConfig,
};
use adamgnn_repro::eval::{GraphModelKind, NodeModelKind, SessionKind, TrainConfig, TrainSession};

fn run(
    kind: SessionKind,
    ds: &adamgnn_repro::data::NodeDataset,
    cfg: &TrainConfig,
) -> adamgnn_repro::eval::RunOutcome {
    TrainSession::new(kind, cfg).run(ds).expect("session runs")
}

fn node_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 25,
        patience: 25,
        hidden: 24,
        levels: 2,
        ..Default::default()
    }
}

fn tiny_node(kind: NodeDatasetKind) -> adamgnn_repro::data::NodeDataset {
    make_node_dataset(
        kind,
        &NodeGenConfig {
            scale: 0.1,
            max_feat_dim: 64,
            seed: 5,
        },
    )
}

#[test]
fn every_node_model_trains_on_cora_like_data() {
    let ds = tiny_node(NodeDatasetKind::Cora);
    let chance = 1.0 / ds.num_classes as f64;
    for kind in NodeModelKind::all() {
        let res = run(SessionKind::NodeClassification(kind), &ds, &node_cfg());
        assert!(
            res.test_metric > chance,
            "{} did not beat chance: {:.3}",
            kind.name(),
            res.test_metric
        );
    }
}

#[test]
fn every_node_model_runs_link_prediction() {
    let ds = tiny_node(NodeDatasetKind::Cora);
    for kind in [
        NodeModelKind::Gcn,
        NodeModelKind::TopKPool,
        NodeModelKind::AdamGnn,
    ] {
        let res = run(SessionKind::LinkPrediction(kind), &ds, &node_cfg());
        assert!(
            res.test_metric > 0.5,
            "{} AUC at or below chance: {:.3}",
            kind.name(),
            res.test_metric
        );
    }
}

#[test]
fn graph_classifiers_beat_chance_on_mutag_like_data() {
    let ds = make_graph_dataset(
        GraphDatasetKind::Mutagenicity,
        &GraphGenConfig {
            scale: 0.05,
            max_nodes: 30,
            seed: 6,
        },
    );
    let cfg = TrainConfig {
        epochs: 30,
        patience: 30,
        hidden: 32,
        levels: 2,
        ..Default::default()
    };
    for kind in [
        GraphModelKind::Gin,
        GraphModelKind::SagPool,
        GraphModelKind::AdamGnn,
    ] {
        let res = TrainSession::new(SessionKind::GraphClassification(kind), &cfg)
            .run(&ds)
            .expect("session runs");
        assert!(
            res.test_metric > 0.5,
            "{} accuracy at or below chance: {:.3}",
            kind.name(),
            res.test_metric
        );
    }
}

#[test]
fn training_is_reproducible_under_fixed_seed() {
    let ds = tiny_node(NodeDatasetKind::Citeseer);
    let a = run(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &ds,
        &node_cfg(),
    );
    let b = run(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &ds,
        &node_cfg(),
    );
    assert_eq!(a.test_metric, b.test_metric);
    assert_eq!(a.epochs_run, b.epochs_run);
}

#[test]
fn adamgnn_benefits_from_multigrained_structure() {
    // On community-structured data with meso-level label signal, AdamGNN
    // with levels should not lose to itself without pooling (levels
    // effectively disabled through flyback-off).
    let ds = tiny_node(NodeDatasetKind::Cora);
    let with = run(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &ds,
        &node_cfg(),
    );
    let mut no_fly = node_cfg();
    no_fly.flyback = false;
    let without = run(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &ds,
        &no_fly,
    );
    // allow slack: both train, flyback must not be catastrophically worse
    assert!(
        with.test_metric + 0.15 >= without.test_metric,
        "flyback hurt badly: {:.3} vs {:.3}",
        with.test_metric,
        without.test_metric
    );
}

//! Checkpoint/resume verification: the mg-ckpt contract, checked at the
//! trainer level for all four tasks.
//!
//! Three claims are pinned here, each bitwise:
//!
//! 1. **Resume reproduces the uninterrupted run.** A run interrupted at
//!    epoch `k` (simulated as a run whose epoch budget ends at `k`,
//!    which is byte-for-byte what an interruption leaves behind) and
//!    resumed to the full budget returns exactly the metrics and trace
//!    of a never-interrupted run.
//! 2. **Checkpointing is pure observation.** Enabling periodic
//!    checkpoint writes changes nothing about the result.
//! 3. **Corruption fails loudly.** Any damaged section, truncation,
//!    magic or version skew is a typed `MgError`, never a panic or a
//!    silently wrong model.
//!
//! The float comparisons use IEEE-754 bit patterns throughout, the same
//! authority as the golden-trace suite.

use adamgnn_repro::data::{
    make_graph_dataset, make_node_dataset, GraphDatasetKind, GraphGenConfig, NodeDataset,
    NodeDatasetKind, NodeGenConfig,
};
use adamgnn_repro::eval::{
    FrozenModel, GraphModelKind, NodeModelKind, RunOutcome, SessionKind, TrainConfig, TrainSession,
};
use mg_ckpt::Checkpoint;
use mg_tensor::MgError;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mg_verify_ckpt_{}_{name}.mgck", std::process::id()))
}

fn node_ds() -> NodeDataset {
    make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale: 0.05,
            max_feat_dim: 16,
            seed: 3,
        },
    )
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        lr: 0.02,
        patience: 50,
        hidden: 12,
        levels: 2,
        seed: 5,
        ..Default::default()
    }
}

/// Bitwise outcome equality. `epoch_seconds` is wall-clock and excluded.
fn assert_outcomes_bitwise(a: &RunOutcome, b: &RunOutcome, what: &str) {
    assert_eq!(
        a.test_metric.to_bits(),
        b.test_metric.to_bits(),
        "{what}: test_metric differs"
    );
    assert_eq!(
        a.val_metric.map(f64::to_bits),
        b.val_metric.map(f64::to_bits),
        "{what}: val_metric differs"
    );
    assert_eq!(a.epochs_run, b.epochs_run, "{what}: epochs_run differs");
    assert_eq!(
        a.trace.records.len(),
        b.trace.records.len(),
        "{what}: trace length differs"
    );
    for (ra, rb) in a.trace.records.iter().zip(&b.trace.records) {
        assert_eq!(ra.epoch, rb.epoch, "{what}: trace epoch differs");
        assert_eq!(
            ra.loss.to_bits(),
            rb.loss.to_bits(),
            "{what}: epoch {} loss differs",
            ra.epoch
        );
        assert_eq!(
            ra.val.to_bits(),
            rb.val.to_bits(),
            "{what}: epoch {} val differs",
            ra.epoch
        );
    }
}

/// The core contract, per task: full run == (prefix run, checkpoint,
/// resume to full budget), bitwise.
fn check_resume_equals_uninterrupted(kind: SessionKind, run: impl Fn(&TrainSession) -> RunOutcome) {
    let path = tmp(kind.task_name());
    let _ = std::fs::remove_file(&path);

    let full = run(&TrainSession::new(kind, &cfg(8)));
    let prefix = run(&TrainSession::new(kind, &cfg(3)).checkpoint_to(&path));
    let resumed = run(&TrainSession::new(kind, &cfg(8)).resume_from(&path));

    assert_eq!(
        prefix.trace.records.len(),
        3,
        "{}: prefix run must stop at its budget",
        kind.task_name()
    );
    assert_outcomes_bitwise(&full, &resumed, kind.task_name());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn node_classification_resume_equals_uninterrupted() {
    let ds = node_ds();
    check_resume_equals_uninterrupted(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        |s| s.run(&ds).expect("session runs"),
    );
}

#[test]
fn link_prediction_resume_equals_uninterrupted() {
    let ds = node_ds();
    check_resume_equals_uninterrupted(SessionKind::LinkPrediction(NodeModelKind::Gcn), |s| {
        s.run(&ds).expect("session runs")
    });
}

#[test]
fn graph_classification_resume_equals_uninterrupted() {
    let ds = make_graph_dataset(
        GraphDatasetKind::Proteins,
        &GraphGenConfig {
            scale: 0.02,
            max_nodes: 20,
            seed: 1,
        },
    );
    check_resume_equals_uninterrupted(SessionKind::GraphClassification(GraphModelKind::Gin), |s| {
        s.run(&ds).expect("session runs")
    });
}

#[test]
fn node_clustering_resume_equals_uninterrupted() {
    let ds = node_ds();
    check_resume_equals_uninterrupted(SessionKind::NodeClustering(NodeModelKind::Gcn), |s| {
        s.run(&ds).expect("session runs")
    });
}

#[test]
fn checkpointing_is_pure_observation() {
    let ds = node_ds();
    let kind = SessionKind::NodeClassification(NodeModelKind::AdamGnn);
    let path = tmp("observation");
    let plain = TrainSession::new(kind, &cfg(6)).run(&ds).expect("runs");
    let ckpted = TrainSession::new(kind, &cfg(6))
        .checkpoint_to(&path)
        .checkpoint_every(2)
        .run(&ds)
        .expect("runs");
    assert_outcomes_bitwise(&plain, &ckpted, "checkpointing on vs off");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_from_completed_run_is_identity() {
    let ds = node_ds();
    let kind = SessionKind::NodeClassification(NodeModelKind::Gcn);
    let path = tmp("identity");
    let full = TrainSession::new(kind, &cfg(5))
        .checkpoint_to(&path)
        .run(&ds)
        .expect("runs");
    let resumed = TrainSession::new(kind, &cfg(5))
        .resume_from(&path)
        .run(&ds)
        .expect("resume runs");
    assert_outcomes_bitwise(&full, &resumed, "resume from completed run");
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint written at the early stop must not train further on
/// resume, even though `next_epoch` is below the budget.
#[test]
fn early_stop_checkpoint_resumes_without_further_training() {
    let ds = node_ds();
    let kind = SessionKind::NodeClassification(NodeModelKind::Gcn);
    let path = tmp("earlystop");
    let mut c = cfg(12);
    c.patience = 1;
    let full = TrainSession::new(kind, &c)
        .checkpoint_to(&path)
        .run(&ds)
        .expect("runs");
    let resumed = TrainSession::new(kind, &c)
        .resume_from(&path)
        .run(&ds)
        .expect("resume runs");
    assert_outcomes_bitwise(&full, &resumed, "resume after early stop");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trained_checkpoint_save_load_save_is_byte_identical() {
    let ds = node_ds();
    let path = tmp("roundtrip");
    TrainSession::new(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &cfg(4),
    )
    .checkpoint_to(&path)
    .run(&ds)
    .expect("runs");
    let bytes = std::fs::read(&path).expect("checkpoint file exists");
    let ck = match Checkpoint::from_bytes(&bytes) {
        Ok(ck) => ck,
        Err(e) => panic!("trained checkpoint fails to load: {e}"),
    };
    assert_eq!(
        ck.to_bytes(),
        bytes,
        "save -> load -> save must be byte-identical"
    );
    assert!(
        ck.structure.is_some(),
        "AdamGNN checkpoint records its pooling structure"
    );
    let _ = std::fs::remove_file(&path);
}

/// Walk the section framing of a real trained checkpoint and damage each
/// section's payload in turn: every one must be rejected with a typed
/// error. Magic, version and truncation failures are checked alongside.
#[test]
fn corruption_in_every_section_is_rejected() {
    let ds = node_ds();
    let path = tmp("corruption");
    TrainSession::new(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &cfg(3),
    )
    .checkpoint_to(&path)
    .run(&ds)
    .expect("runs");
    let good = std::fs::read(&path).expect("checkpoint file exists");
    let _ = std::fs::remove_file(&path);
    assert!(Checkpoint::from_bytes(&good).is_ok());

    // Frame layout: tag u8, len u64 LE, payload, crc u32 LE.
    let mut pos = 8; // magic + version
    let mut sections = 0;
    while pos < good.len() {
        let len = u64::from_le_bytes(good[pos + 1..pos + 9].try_into().unwrap()) as usize;
        let payload_mid = pos + 9 + len / 2;
        let mut bad = good.clone();
        bad[payload_mid] ^= 0x10;
        match Checkpoint::from_bytes(&bad) {
            Err(MgError::Corrupt { .. } | MgError::Truncated { .. }) => {}
            Err(other) => panic!("section {sections}: unexpected error {other}"),
            Ok(_) => panic!("section {sections}: payload corruption not detected"),
        }
        pos += 9 + len + 4;
        sections += 1;
    }
    assert_eq!(pos, good.len(), "section walk must cover the whole file");
    assert_eq!(sections, mg_ckpt::SECTIONS.len());

    // Wrong magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        Checkpoint::from_bytes(&bad),
        Err(MgError::BadMagic { .. })
    ));

    // Version skew.
    let mut bad = good.clone();
    bad[4] = bad[4].wrapping_add(1);
    assert!(matches!(
        Checkpoint::from_bytes(&bad),
        Err(MgError::UnsupportedVersion { .. })
    ));

    // Truncation at a spread of cut points (the exhaustive per-byte walk
    // lives in mg-ckpt's unit tests; a trained file is large).
    for frac in [0, 1, 2, 5, 30, 70, 95, 99] {
        let cut = good.len() * frac / 100;
        match Checkpoint::from_bytes(&good[..cut]) {
            Err(MgError::Truncated { .. } | MgError::Corrupt { .. } | MgError::BadMagic { .. }) => {
            }
            Err(other) => panic!("cut at {frac}%: unexpected error {other}"),
            Ok(_) => panic!("cut at {frac}%: truncated checkpoint loaded"),
        }
    }
}

#[test]
fn resume_rejects_mismatched_jobs() {
    let ds = node_ds();
    let path = tmp("mismatch");
    TrainSession::new(SessionKind::NodeClassification(NodeModelKind::Gcn), &cfg(3))
        .checkpoint_to(&path)
        .run(&ds)
        .expect("runs");

    // Different task, same dataset.
    assert!(matches!(
        TrainSession::new(SessionKind::LinkPrediction(NodeModelKind::Gcn), &cfg(3))
            .resume_from(&path)
            .run(&ds),
        Err(MgError::Mismatch { .. })
    ));

    // Different model.
    assert!(matches!(
        TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &cfg(3)
        )
        .resume_from(&path)
        .run(&ds),
        Err(MgError::Mismatch { .. })
    ));

    // Different training configuration (seed).
    let mut other = cfg(3);
    other.seed = 6;
    assert!(matches!(
        TrainSession::new(SessionKind::NodeClassification(NodeModelKind::Gcn), &other)
            .resume_from(&path)
            .run(&ds),
        Err(MgError::Mismatch { .. })
    ));

    // Different dataset.
    let acm = make_node_dataset(
        NodeDatasetKind::Acm,
        &NodeGenConfig {
            scale: 0.05,
            max_feat_dim: 16,
            seed: 3,
        },
    );
    assert!(matches!(
        TrainSession::new(SessionKind::NodeClassification(NodeModelKind::Gcn), &cfg(3))
            .resume_from(&path)
            .run(&acm),
        Err(MgError::Mismatch { .. })
    ));

    let _ = std::fs::remove_file(&path);
}

/// Frozen inference is deterministic: two independent loads of the same
/// checkpoint serve bit-identical outputs, with the pinned structure.
#[test]
fn frozen_inference_is_deterministic_across_loads() {
    let ds = node_ds();
    let path = tmp("frozen");
    TrainSession::new(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &cfg(4),
    )
    .checkpoint_to(&path)
    .run(&ds)
    .expect("runs");

    let a = FrozenModel::load(&path).expect("first load");
    let b = FrozenModel::load(&path).expect("second load");
    assert!(a.structure().is_some());
    let ctx = adamgnn_repro::nn::GraphCtx::new(ds.graph.clone(), ds.features.clone());
    let oa = a.node_outputs(&ctx).expect("forward");
    let ob = b.node_outputs(&ctx).expect("forward");
    assert_eq!(oa.rows(), ds.n());
    for (x, y) in oa.data().iter().zip(ob.data()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "frozen outputs must be bitwise stable"
        );
    }
    assert_eq!(
        a.predict_labels(&ctx).expect("labels"),
        b.predict_labels(&ctx).expect("labels")
    );
    let _ = std::fs::remove_file(&path);
}

//! Pillar 4: differential serial-vs-parallel training fuzzer.
//!
//! The determinism contract: a seeded training run is a pure function of
//! its seeds — the serial build and the parallel build at *every* pool
//! width must produce bit-identical traces. The serial build contributes
//! the repeatability baseline (and generates the checked-in goldens);
//! under `--features parallel` the same runs are swept across pool
//! widths 1..=4 and compared bitwise against those serial goldens, plus
//! seed-varied runs (not checked in) are cross-checked between widths.
//!
//! The checkpointed-tape leg extends the same contract to recompute-on-
//! backward (`MG_CKPT_TAPE` / `with_ckpt_tape`): dropping and replaying
//! tape segments changes *when* values are resident, never what they
//! are, so a checkpointed run must reproduce the retaining run — and the
//! checked-in goldens — bit for bit.

use adamgnn_core::with_ckpt_tape;
use mg_verify::{
    graph_cls_run, link_pred_run, node_cls_run, sampled_node_cls_run, Compare, Golden,
};

fn assert_identical(label: &str, expected: &Golden, actual: &Golden) {
    if let Err(e) = expected.compare(actual, Compare::Bitwise) {
        panic!("{label}: {e}");
    }
}

type RunFn = fn(u64) -> Golden;

const RUNS: [(&str, RunFn); 3] = [
    ("node_cls", node_cls_run),
    ("link_pred", link_pred_run),
    ("graph_cls", graph_cls_run),
];

/// Within one build, rerunning a seeded run reproduces it bit for bit —
/// the precondition for any cross-build comparison to be meaningful.
#[test]
fn reruns_are_bitwise_repeatable() {
    assert_identical("node_cls rerun", &node_cls_run(0), &node_cls_run(0));
    assert_identical("link_pred rerun", &link_pred_run(0), &link_pred_run(0));
    assert_identical("graph_cls rerun", &graph_cls_run(0), &graph_cls_run(0));
}

/// The sampled-minibatch leg of the same contract: batch composition,
/// fanout truncation and subgraph construction all draw from the seeded
/// RNG stream, so a sampled run is just as much a pure function of its
/// seeds as a full-batch one. There is no checked-in golden (sampling is
/// a new RNG consumer, deliberately not pinned to the full-batch
/// traces), so the checks are within-build.
#[test]
fn sampled_reruns_are_bitwise_repeatable() {
    assert_identical(
        "sampled_node_cls rerun",
        &sampled_node_cls_run(0),
        &sampled_node_cls_run(0),
    );
}

/// Per-level tape checkpointing reproduces the retaining tape bit for
/// bit on all three tasks, in the same build. Valid under every feature
/// combination: the comparison is within-build, like
/// `reruns_are_bitwise_repeatable`.
#[test]
fn checkpointed_tape_matches_retained_same_build() {
    for (label, run) in RUNS {
        let retained = with_ckpt_tape(false, || run(0));
        let ckpt = with_ckpt_tape(true, || run(0));
        assert_identical(
            &format!("{label} retained vs checkpointed"),
            &retained,
            &ckpt,
        );
    }
}

/// Checkpointed runs reproduce the checked-in serial goldens bit for
/// bit — 3/3 tasks. Compiled out under `fast-kernels` (the blocked
/// kernels reassociate sums; the goldens stay pinned to the scalar
/// path), same as every other against-golden check.
#[cfg(not(feature = "fast-kernels"))]
#[test]
fn checkpointed_tape_reproduces_goldens() {
    use mg_verify::{check_against_file, goldens_dir};
    for (label, run) in RUNS {
        let actual = with_ckpt_tape(true, || run(0));
        let path = goldens_dir().join(format!("{}.json", actual.name));
        if let Err(e) = check_against_file(&path, &actual, Compare::Bitwise) {
            panic!("{label} with checkpointed tape diverged from golden: {e}");
        }
    }
}

#[cfg(feature = "parallel")]
mod parallel {
    use super::{assert_identical, RUNS};
    use adamgnn_core::with_ckpt_tape;
    use mg_verify::with_threads;
    #[cfg(not(feature = "fast-kernels"))]
    use mg_verify::{check_against_file, goldens_dir, Compare};

    /// Every pool width reproduces the serial build's checked-in goldens
    /// bit for bit. Compiled out under `fast-kernels`: the blocked
    /// kernels reassociate sums, so only the within-build checks
    /// (`reruns_are_bitwise_repeatable`, `variant_runs_agree_across_pool_widths`)
    /// apply there — the goldens themselves stay pinned to the scalar path.
    #[cfg(not(feature = "fast-kernels"))]
    #[test]
    fn all_pool_widths_reproduce_serial_goldens() {
        for threads in 1..=4 {
            for (label, run) in RUNS {
                let actual = with_threads(threads, || run(0));
                let path = goldens_dir().join(format!("{}.json", actual.name));
                if let Err(e) = check_against_file(&path, &actual, Compare::Bitwise) {
                    panic!("{label} with {threads} threads diverged from serial golden: {e}");
                }
            }
        }
    }

    /// Seed-varied runs — different graphs, different training seeds, no
    /// checked-in golden — agree across pool widths.
    #[test]
    fn variant_runs_agree_across_pool_widths() {
        for variant in 1..=2u64 {
            for (label, run) in RUNS {
                let reference = with_threads(1, || run(variant));
                for threads in 2..=4 {
                    let actual = with_threads(threads, || run(variant));
                    assert_identical(
                        &format!("{label} v{variant}, 1 vs {threads} threads"),
                        &reference,
                        &actual,
                    );
                }
            }
        }
    }

    /// The sampled-minibatch trainer agrees across pool widths: the
    /// sampler itself is serial (one RNG stream), and every kernel the
    /// per-batch forward/backward dispatches is width-independent, so
    /// widths 1..=4 must reproduce each other bit for bit.
    #[test]
    fn sampled_runs_agree_across_pool_widths() {
        use mg_verify::sampled_node_cls_run;
        for variant in 0..=1u64 {
            let reference = with_threads(1, || sampled_node_cls_run(variant));
            for threads in 2..=4 {
                let actual = with_threads(threads, || sampled_node_cls_run(variant));
                assert_identical(
                    &format!("sampled_node_cls v{variant}, 1 vs {threads} threads"),
                    &reference,
                    &actual,
                );
            }
        }
    }

    /// Checkpointing composes with the thread pool: a checkpointed run
    /// at every pool width matches a retained single-thread run of the
    /// same build bit for bit (replayed segments go through the same
    /// width-independent kernels as the original forward).
    #[test]
    fn checkpointed_runs_agree_across_pool_widths() {
        for (label, run) in RUNS {
            let reference = with_threads(1, || with_ckpt_tape(false, || run(0)));
            for threads in 1..=4 {
                let actual = with_threads(threads, || with_ckpt_tape(true, || run(0)));
                assert_identical(
                    &format!("{label} checkpointed, {threads} threads vs retained serial"),
                    &reference,
                    &actual,
                );
            }
        }
    }
}

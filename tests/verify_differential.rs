//! Pillar 4: differential serial-vs-parallel training fuzzer.
//!
//! The determinism contract: a seeded training run is a pure function of
//! its seeds — the serial build and the parallel build at *every* pool
//! width must produce bit-identical traces. The serial build contributes
//! the repeatability baseline (and generates the checked-in goldens);
//! under `--features parallel` the same runs are swept across pool
//! widths 1..=4 and compared bitwise against those serial goldens, plus
//! seed-varied runs (not checked in) are cross-checked between widths.

use mg_verify::{graph_cls_run, link_pred_run, node_cls_run, Compare, Golden};

fn assert_identical(label: &str, expected: &Golden, actual: &Golden) {
    if let Err(e) = expected.compare(actual, Compare::Bitwise) {
        panic!("{label}: {e}");
    }
}

/// Within one build, rerunning a seeded run reproduces it bit for bit —
/// the precondition for any cross-build comparison to be meaningful.
#[test]
fn reruns_are_bitwise_repeatable() {
    assert_identical("node_cls rerun", &node_cls_run(0), &node_cls_run(0));
    assert_identical("link_pred rerun", &link_pred_run(0), &link_pred_run(0));
    assert_identical("graph_cls rerun", &graph_cls_run(0), &graph_cls_run(0));
}

#[cfg(feature = "parallel")]
mod parallel {
    use super::assert_identical;
    #[cfg(not(feature = "fast-kernels"))]
    use mg_verify::{check_against_file, goldens_dir, Compare};
    use mg_verify::{graph_cls_run, link_pred_run, node_cls_run, with_threads, Golden};

    type RunFn = fn(u64) -> Golden;

    const RUNS: [(&str, RunFn); 3] = [
        ("node_cls", node_cls_run),
        ("link_pred", link_pred_run),
        ("graph_cls", graph_cls_run),
    ];

    /// Every pool width reproduces the serial build's checked-in goldens
    /// bit for bit. Compiled out under `fast-kernels`: the blocked
    /// kernels reassociate sums, so only the within-build checks
    /// (`reruns_are_bitwise_repeatable`, `variant_runs_agree_across_pool_widths`)
    /// apply there — the goldens themselves stay pinned to the scalar path.
    #[cfg(not(feature = "fast-kernels"))]
    #[test]
    fn all_pool_widths_reproduce_serial_goldens() {
        for threads in 1..=4 {
            for (label, run) in RUNS {
                let actual = with_threads(threads, || run(0));
                let path = goldens_dir().join(format!("{}.json", actual.name));
                if let Err(e) = check_against_file(&path, &actual, Compare::Bitwise) {
                    panic!("{label} with {threads} threads diverged from serial golden: {e}");
                }
            }
        }
    }

    /// Seed-varied runs — different graphs, different training seeds, no
    /// checked-in golden — agree across pool widths.
    #[test]
    fn variant_runs_agree_across_pool_widths() {
        for variant in 1..=2u64 {
            for (label, run) in RUNS {
                let reference = with_threads(1, || run(variant));
                for threads in 2..=4 {
                    let actual = with_threads(threads, || run(variant));
                    assert_identical(
                        &format!("{label} v{variant}, 1 vs {threads} threads"),
                        &reference,
                        &actual,
                    );
                }
            }
        }
    }
}

//! Checkpointed-tape toggle for the AdamGNN forward pass.
//!
//! Three layers of control, in precedence order:
//!
//! 1. [`with_ckpt_tape`] — a thread-local override for the duration of a
//!    closure. Tests and the memory-report bench use it to compare
//!    retained vs checkpointed runs in one process without touching the
//!    environment (env mutation is racy under the parallel test runner).
//! 2. [`AdamGnnConfig::checkpoint`](crate::AdamGnnConfig) — the builder
//!    toggle, defaulted from the environment at config construction.
//! 3. The `MG_CKPT_TAPE` environment variable (`1`/`true`/`on`) — the
//!    operational switch; the retaining tape stays the golden default.
//!
//! Checkpointing changes *when* forward values are resident, never what
//! they are: gradients are bitwise identical either way (enforced by the
//! replay fingerprint check in mg-tensor and the differential suites).

use std::cell::Cell;

thread_local! {
    static OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Run `f` with tape checkpointing forced on or off for this thread,
/// overriding both the config field and `MG_CKPT_TAPE`. Restores the
/// previous override on exit (also on panic).
pub fn with_ckpt_tape<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(on))));
    f()
}

/// The config-construction default: true when `MG_CKPT_TAPE` is set to
/// `1`, `true` or `on`.
pub(crate) fn env_default() -> bool {
    std::env::var("MG_CKPT_TAPE").is_ok_and(|v| matches!(v.as_str(), "1" | "true" | "on"))
}

/// Effective toggle for a forward pass with the given config default.
pub(crate) fn resolve(cfg_default: bool) -> bool {
    OVERRIDE.with(|c| c.get()).unwrap_or(cfg_default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_restores() {
        assert!(!resolve(false));
        assert!(resolve(true));
        with_ckpt_tape(true, || {
            assert!(resolve(false), "override beats config default");
            assert!(resolve(true));
        });
        with_ckpt_tape(false, || {
            assert!(!resolve(true), "override beats config default");
        });
        assert!(!resolve(false), "override restored on exit");
    }

    #[test]
    fn nested_overrides_unwind() {
        with_ckpt_tape(true, || {
            with_ckpt_tape(false, || assert!(!resolve(true)));
            assert!(resolve(false), "outer override restored");
        });
    }
}

//! Adaptive ego-network selection and hyper-node formation structure —
//! the discrete half of AdamGNN's adaptive graph pooling (Section 3.2).
//!
//! Everything here is gradient-free: selection inspects the *values* of
//! the fitness scores; the resulting [`SPlan`] records, for every stored
//! entry of `S_k`, where its (differentiable) value comes from, so the
//! model can assemble `S_k`'s value vector on the tape.

use crate::fitness::EgoPairs;
use mg_graph::Topology;
use mg_tensor::Csr;

/// Where one stored entry of `S_k` takes its value from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueSource {
    /// The fitness score of pair `k` (differentiable).
    Pair(usize),
    /// The constant `1.0` (ego diagonal and retained nodes).
    One,
}

/// The hyper-node formation matrix plan for one level.
#[derive(Clone, Debug)]
pub struct SPlan {
    /// `n_prev x m` sparsity pattern of `S_k`.
    pub csr: Csr,
    /// Value source per stored entry, aligned with `csr` iteration order.
    pub sources: Vec<ValueSource>,
    /// For every hyper-graph column: the underlying node of the previous
    /// level (the ego for ego columns, the node itself for retained ones).
    pub col_base: Vec<usize>,
    /// Number of leading columns that are selected ego-networks.
    pub num_egos: usize,
    /// Selected ego node ids (previous-level indexing).
    pub egos: Vec<usize>,
    /// Membership triples `(member j, ego column, pair index)` excluding
    /// the ego itself — the input to Eq. 3's attention.
    pub member_pairs: Vec<(usize, usize, usize)>,
}

impl SPlan {
    /// Number of hyper-graph nodes (columns of `S_k`).
    pub fn m(&self) -> usize {
        self.col_base.len()
    }
}

/// Per-ego aggregate fitness `φ_i = mean_{j ∈ N_i^λ} φ_ij` (Eq. 2's
/// summary), computed from pair values.
pub fn ego_fitness(pairs: &EgoPairs, phi_pair: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(phi_pair.len(), pairs.len(), "phi/pair length mismatch");
    let mut sum = vec![0.0f64; n];
    let mut count = vec![0usize; n];
    for (k, &ego) in pairs.dst.iter().enumerate() {
        sum[ego] += phi_pair[k];
        count[ego] += 1;
    }
    (0..n)
        .map(|i| {
            if count[i] > 0 {
                sum[i] / count[i] as f64
            } else {
                f64::NEG_INFINITY
            }
        })
        .collect()
}

/// Adaptive selection: egos whose fitness strictly exceeds all their
/// 1-hop neighbours' (`N̂_p` of the paper). No ratio hyper-parameter.
///
/// Exact ties (possible at initialisation, e.g. when a dead ReLU makes
/// all fitness scores equal) are broken lexicographically by node id, so
/// a connected graph always yields at least one ego (Proposition 1 holds
/// unconditionally rather than almost surely).
pub fn select_egos(topo: &Topology, phi: &[f64]) -> Vec<usize> {
    (0..topo.n())
        .filter(|&i| {
            phi[i] > f64::NEG_INFINITY
                && topo
                    .neighbors(i)
                    .all(|j| phi[i] > phi[j] || (phi[i] == phi[j] && i > j))
        })
        .collect()
}

/// Build the hyper-node formation matrix plan from the selected egos.
///
/// Columns are `[selected egos ..., retained nodes ...]`; a node may
/// belong to several selected ego-networks (overlap is intentional,
/// Section 3.2). Retained nodes are those covered by no selected
/// ego-network.
pub fn build_s_plan(
    topo: &Topology,
    pairs: &EgoPairs,
    phi_pair: &[f64],
    lambda: usize,
    egos: &[usize],
) -> SPlan {
    let n = topo.n();
    // pair index lookup: (member, ego) -> pair position
    let mut pair_idx: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::with_capacity(pairs.len());
    for (k, (&j, &i)) in pairs.src.iter().zip(pairs.dst.iter()).enumerate() {
        pair_idx.insert((j, i), k);
    }
    let _ = phi_pair;

    let mut covered = vec![false; n];
    let mut entries: Vec<(u32, u32)> = Vec::new();
    let mut raw: Vec<(u32, u32, ValueSource)> = Vec::new();
    let mut member_pairs = Vec::new();
    let mut col_base = Vec::with_capacity(egos.len());
    for (col, &ego) in egos.iter().enumerate() {
        col_base.push(ego);
        covered[ego] = true;
        raw.push((ego as u32, col as u32, ValueSource::One));
        entries.push((ego as u32, col as u32));
        let members: Vec<usize> = if lambda == 1 {
            topo.neighbors(ego).collect()
        } else {
            topo.khop(ego, lambda)
                .into_iter()
                .filter(|&j| j != ego)
                .collect()
        };
        for j in members {
            covered[j] = true;
            let k = pair_idx[&(j, ego)];
            raw.push((j as u32, col as u32, ValueSource::Pair(k)));
            entries.push((j as u32, col as u32));
            member_pairs.push((j, col, k));
        }
    }
    let num_egos = egos.len();
    for (node, &cov) in covered.iter().enumerate() {
        if !cov {
            let col = col_base.len();
            col_base.push(node);
            raw.push((node as u32, col as u32, ValueSource::One));
            entries.push((node as u32, col as u32));
        }
    }
    let m = col_base.len();
    let csr = Csr::from_coo(n, m, &entries);
    // align sources with CSR iteration order
    let mut src_of: std::collections::HashMap<(u32, u32), ValueSource> =
        std::collections::HashMap::with_capacity(raw.len());
    for (r, c, s) in raw {
        src_of.insert((r, c), s);
    }
    let sources: Vec<ValueSource> = csr
        .iter()
        .map(|(r, c, _)| src_of[&(r as u32, c as u32)])
        .collect();
    SPlan {
        csr,
        sources,
        col_base,
        num_egos,
        egos: egos.to_vec(),
        member_pairs,
    }
}

/// Add a unit diagonal to a square sparse matrix (Â = A + I), merging with
/// existing diagonal entries.
pub fn add_unit_diag(csr: &Csr, values: &[f64]) -> (Csr, Vec<f64>) {
    assert_eq!(csr.rows(), csr.cols(), "add_unit_diag: square required");
    let n = csr.rows();
    let mut map: std::collections::BTreeMap<(u32, u32), f64> = std::collections::BTreeMap::new();
    for (r, c, k) in csr.iter() {
        map.insert((r as u32, c as u32), values[k]);
    }
    for i in 0..n as u32 {
        *map.entry((i, i)).or_insert(0.0) += 1.0;
    }
    let entries: Vec<(u32, u32)> = map.keys().copied().collect();
    let out = Csr::from_coo(n, n, &entries);
    let vals: Vec<f64> = out
        .iter()
        .map(|(r, c, _)| map[&(r as u32, c as u32)])
        .collect();
    (out, vals)
}

/// Extract the simple-graph topology of a (weighted) square sparse matrix,
/// dropping the diagonal.
pub fn topology_of(csr: &Csr) -> Topology {
    let mut edges = Vec::new();
    for (r, c, _) in csr.iter() {
        if r < c {
            edges.push((r as u32, c as u32));
        }
    }
    Topology::from_edges(csr.rows(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::EgoPairs;

    fn path5() -> Topology {
        Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn ego_fitness_means_per_ego() {
        let topo = path5();
        let pairs = EgoPairs::build(&topo, 1);
        // phi = 1 for every pair -> every ego fitness is 1
        let phi = vec![1.0; pairs.len()];
        let f = ego_fitness(&pairs, &phi, 5);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn select_egos_local_maxima() {
        let topo = path5();
        // fitness peaks at node 2
        let phi = vec![0.1, 0.2, 0.9, 0.3, 0.2];
        assert_eq!(select_egos(&topo, &phi), vec![2]);
        // two peaks at the ends
        let phi = vec![0.9, 0.2, 0.1, 0.2, 0.9];
        assert_eq!(select_egos(&topo, &phi), vec![0, 4]);
    }

    #[test]
    fn proposition1_at_least_one_ego_with_distinct_scores() {
        // any connected graph with pairwise-distinct fitness has >= 1 ego
        let topo = path5();
        let phi = vec![0.11, 0.52, 0.23, 0.44, 0.35];
        assert!(!select_egos(&topo, &phi).is_empty());
    }

    #[test]
    fn ties_break_lexicographically() {
        let topo = path5();
        let phi = vec![0.5; 5];
        // all tied: the highest-id node of each tied neighbourhood wins,
        // so on a path only node 4 survives
        assert_eq!(select_egos(&topo, &phi), vec![4]);
    }

    #[test]
    fn s_plan_covers_every_node_exactly_when_expected() {
        let topo = path5();
        let pairs = EgoPairs::build(&topo, 1);
        let phi: Vec<f64> = (0..pairs.len()).map(|k| 0.1 + 0.01 * k as f64).collect();
        let egos = vec![2usize];
        let plan = build_s_plan(&topo, &pairs, &phi, 1, &egos);
        // ego 2 covers {1, 2, 3}; nodes 0 and 4 are retained
        assert_eq!(plan.m(), 3);
        assert_eq!(plan.num_egos, 1);
        assert_eq!(plan.col_base, vec![2, 0, 4]);
        // every row of S has at least one entry
        for r in 0..5 {
            assert!(
                !plan.csr.row_indices(r).is_empty(),
                "node {r} lost by pooling"
            );
        }
    }

    #[test]
    fn s_plan_ego_diag_is_one_members_are_pairs() {
        let topo = path5();
        let pairs = EgoPairs::build(&topo, 1);
        let phi = vec![0.5; pairs.len()];
        let plan = build_s_plan(&topo, &pairs, &phi, 1, &[1]);
        for (r, c, k) in plan.csr.iter() {
            match plan.sources[k] {
                ValueSource::One => assert!(r == 1 && c == 0 || c > 0),
                ValueSource::Pair(p) => {
                    assert_eq!(pairs.dst[p], 1, "pair must target the ego");
                    assert_eq!(pairs.src[p], r);
                    assert_eq!(c, 0);
                }
            }
        }
    }

    #[test]
    fn s_plan_overlapping_egos_share_members() {
        // triangle + pendant: select both 0 and 2 as egos (overlap at 1)
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let pairs = EgoPairs::build(&topo, 1);
        let phi = vec![0.5; pairs.len()];
        let plan = build_s_plan(&topo, &pairs, &phi, 1, &[0, 2]);
        // node 1 belongs to both ego columns
        assert_eq!(plan.csr.row_indices(1).len(), 2);
        assert_eq!(plan.m(), 2); // no retained nodes
    }

    #[test]
    fn add_unit_diag_merges() {
        let csr = Csr::from_coo(2, 2, &[(0, 0), (0, 1)]);
        let (out, vals) = add_unit_diag(&csr, &[2.0, 3.0]);
        let dense = out.to_dense(&vals);
        assert_eq!(dense[(0, 0)], 3.0);
        assert_eq!(dense[(0, 1)], 3.0);
        assert_eq!(dense[(1, 1)], 1.0);
    }

    #[test]
    fn topology_of_drops_diagonal() {
        let csr = Csr::from_coo(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 2), (2, 1)]);
        let topo = topology_of(&csr);
        assert_eq!(topo.num_edges(), 2);
        assert!(topo.has_edge(0, 1));
        assert!(topo.has_edge(1, 2));
    }
}

//! The AdamGNN model: primary GCN, adaptive multi-grained pooling,
//! unpooling chains and flyback aggregation (paper Sections 3.1-3.4,
//! Algorithm 1).

use crate::fitness::{pair_fitness_with, with_unit_row, AttentionParams, EgoPairs, ATT_SLOPE};
use crate::structure::{
    add_unit_diag, build_s_plan, ego_fitness, select_egos, topology_of, SPlan, ValueSource,
};
use mg_graph::{gcn_norm_weighted, NormAdj, Topology};
use mg_nn::{Activation, GcnLayer, GraphCtx};
use mg_tensor::{Binding, Csr, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Hyper-parameters of AdamGNN.
#[derive(Clone, Copy, Debug)]
pub struct AdamGnnConfig {
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden width (embedding width of every level).
    pub hidden: usize,
    /// Number of granularity levels `K`.
    pub levels: usize,
    /// Ego-network radius `λ`.
    pub lambda: usize,
    /// Enable the flyback aggregator (Table 5 ablates this).
    pub flyback: bool,
    /// Dropout on the primary node representation during training.
    pub dropout: f64,
    /// Include Eq. 2's linearity term `f^c = sigmoid(h_jᵀ h_i)` in the
    /// fitness (ablation knob; the paper always keeps it on).
    pub linearity: bool,
    /// Run the forward blocks through tape checkpoint scopes
    /// (recompute-on-backward; see `crate::ckpt`). Bitwise-invisible to
    /// gradients and traces — it only changes peak tape memory. Defaults
    /// from `MG_CKPT_TAPE`; [`crate::ckpt::with_ckpt_tape`] overrides it.
    pub checkpoint: bool,
}

impl AdamGnnConfig {
    /// Paper-style defaults for a given input width.
    pub fn new(in_dim: usize, hidden: usize, levels: usize) -> Self {
        AdamGnnConfig {
            in_dim,
            hidden,
            levels,
            lambda: 1,
            flyback: true,
            dropout: 0.5,
            linearity: true,
            checkpoint: crate::ckpt::env_default(),
        }
    }
}

/// One pooled level retained for inspection and unpooling.
pub struct LevelState {
    /// Hyper-node formation structure.
    pub s_csr: Rc<Csr>,
    /// Tape variable holding `S_k`'s values (gradients reach φ).
    pub s_vals: Var,
    /// Selected egos, in the previous level's node indexing.
    pub egos: Vec<usize>,
    /// Hyper-graph size after this level.
    pub size: usize,
    /// Anchor of each coarse column in the previous level's indexing:
    /// the ego for ego columns, the node itself for retained columns.
    pub col_base: Vec<usize>,
}

/// The discrete and detached pieces of one pooling level, captured on a
/// reference forward so a verification re-run can hold them fixed.
///
/// Ego selection is piecewise-constant in the parameters and the
/// hyper-adjacency normalisation `Â_k` is deliberately detached from the
/// tape, so the gradient the optimiser uses is the gradient *at fixed
/// structure*. Central-difference gradient checking must difference that
/// same fixed-structure function — re-selecting egos or re-normalising
/// `Â_k` under a perturbed parameter would measure paths the backward
/// pass (correctly) never propagates through.
#[derive(Clone)]
pub struct FrozenLevel {
    /// Selected egos, in the previous level's node indexing.
    pub egos: Vec<usize>,
    /// Normalised hyper-graph adjacency fed to the level GCN.
    pub norm: NormAdj,
    /// Topology the next level pools.
    pub next_topo: Rc<Topology>,
}

/// Per-level [`FrozenLevel`]s from one reference forward pass.
#[derive(Clone, Default)]
pub struct FrozenStructure {
    pub levels: Vec<FrozenLevel>,
}

/// Everything a task head needs from one AdamGNN forward pass.
pub struct AdamGnnOutput {
    /// Final node representations `H = H_0 + Σ β_k Ĥ_k` (n x hidden).
    pub h: Var,
    /// Primary representations `H_0`.
    pub h0: Var,
    /// Unpooled per-level messages `Ĥ_k`, original-graph indexing.
    pub unpooled: Vec<Var>,
    /// Flyback attention `β` per node per level (n x K), when flyback ran.
    pub beta: Option<Var>,
    /// Level-1 egos (original node ids) — the cluster centres of the KL
    /// self-optimisation loss (Eq. 5).
    pub egos_l1: Rc<Vec<usize>>,
    /// Per-level metadata.
    pub levels: Vec<LevelState>,
}

/// Adaptive Multi-grained Graph Neural Network.
pub struct AdamGnn {
    cfg: AdamGnnConfig,
    /// Primary GCN layer (Eq. 1) — one layer, as in the paper.
    gcn0: GcnLayer,
    /// One GCN per granularity level, run on the coarsened graph.
    level_gcns: Vec<GcnLayer>,
    /// Fitness attention (Eq. 2).
    fit: AttentionParams,
    /// Hyper-node feature-initialisation attention (Eq. 3).
    init_att: AttentionParams,
    /// Flyback attention (Eq. 4).
    fly: AttentionParams,
}

impl AdamGnn {
    /// Create the model, registering all parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: AdamGnnConfig, rng: &mut StdRng) -> Self {
        assert!(cfg.levels >= 1, "AdamGNN needs at least one level");
        assert!(cfg.lambda >= 1, "lambda must be >= 1");
        let gcn0 = GcnLayer::new(
            store,
            "adam.gcn0",
            cfg.in_dim,
            cfg.hidden,
            Activation::Relu,
            rng,
        );
        let level_gcns = (0..cfg.levels)
            .map(|k| {
                GcnLayer::new(
                    store,
                    &format!("adam.gcn{}", k + 1),
                    cfg.hidden,
                    cfg.hidden,
                    Activation::Relu,
                    rng,
                )
            })
            .collect();
        AdamGnn {
            cfg,
            gcn0,
            level_gcns,
            fit: AttentionParams::new(store, "adam.fit", cfg.hidden, rng),
            init_att: AttentionParams::new(store, "adam.init", cfg.hidden, rng),
            fly: AttentionParams::new(store, "adam.fly", cfg.hidden, rng),
        }
    }

    /// Model configuration.
    pub fn cfg(&self) -> &AdamGnnConfig {
        &self.cfg
    }

    /// Full forward pass over one graph.
    pub fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> AdamGnnOutput {
        self.forward_inner(tape, bind, ctx, train, rng, None).0
    }

    /// Forward pass that also captures the discrete/detached structure
    /// for later frozen replays (see [`FrozenStructure`]).
    pub fn forward_recorded(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> (AdamGnnOutput, FrozenStructure) {
        self.forward_inner(tape, bind, ctx, train, rng, None)
    }

    /// Eval-mode forward with the pooling structure pinned to a prior
    /// recording: egos are not re-selected and `Â_k` is not re-normalised,
    /// so the scalar losses built on top are exactly the fixed-structure
    /// function whose gradient the backward pass computes.
    pub fn forward_frozen(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        frozen: &FrozenStructure,
    ) -> AdamGnnOutput {
        // Eval mode draws nothing; the stream only satisfies signatures.
        let mut rng = StdRng::seed_from_u64(0);
        self.forward_inner(tape, bind, ctx, false, &mut rng, Some(frozen))
            .0
    }

    fn forward_inner(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
        frozen: Option<&FrozenStructure>,
    ) -> (AdamGnnOutput, FrozenStructure) {
        // Recompute-on-backward for the big forward blocks. Every scope
        // closes before any early `break`, so no abort paths are needed;
        // checkpointing never changes the values or gradients, only when
        // interior buffers are resident (see crate::ckpt).
        let ckpt = crate::ckpt::resolve(self.cfg.checkpoint);
        // ---- primary node representation (Eq. 1) ----
        let x = ctx.x_var(tape);
        let mut h0 = self.gcn0.forward(tape, bind, ctx, x);
        if train && self.cfg.dropout > 0.0 {
            h0 = tape.dropout(h0, self.cfg.dropout, rng);
        }

        // ---- multi-grained structure construction ----
        let mut topo: Rc<Topology> = ctx.graph.clone();
        // weighted Â of the current level (values detached from the tape)
        let mut weighted: (Rc<Csr>, Vec<f64>) = {
            let (csr, vals) = add_unit_diag(ctx.unit.csr.as_ref(), &ctx.unit.values);
            (Rc::new(csr), vals)
        };
        let mut h_prev = h0;
        let mut s_chain: Vec<(Rc<Csr>, Var)> = Vec::new();
        let mut unpooled: Vec<Var> = Vec::new();
        let mut levels: Vec<LevelState> = Vec::new();
        let mut egos_l1: Rc<Vec<usize>> = Rc::new(Vec::new());
        let mut recorded = FrozenStructure::default();

        for (k, level_gcn) in self.level_gcns.iter().enumerate() {
            if let Some(fs) = frozen {
                if k >= fs.levels.len() {
                    break; // the reference run stopped pooling here
                }
            }
            if topo.num_edges() == 0 {
                break; // nothing left to pool
            }
            let n_prev = topo.n();
            let pairs = EgoPairs::build(&topo, self.cfg.lambda);
            if pairs.is_empty() {
                break;
            }
            // per-pair fitness φ (differentiable); its attention
            // intermediates (per-pair gathers of h) dominate the level's
            // tape footprint, so they recompute on backward.
            let fit_scope = ckpt.then(|| tape.begin_checkpoint());
            let phi = pair_fitness_with(
                tape,
                bind,
                &self.fit,
                &pairs,
                h_prev,
                n_prev,
                self.cfg.linearity,
            );
            if let Some(scope) = fit_scope {
                tape.end_checkpoint(scope, &[phi]);
            }
            let phi_data: Vec<f64> = tape.value(phi).data().to_vec();
            // adaptive ego selection (discrete; pinned on frozen replays)
            let egos = match frozen {
                Some(fs) => fs.levels[k].egos.clone(),
                None => {
                    let ego_phi = ego_fitness(&pairs, &phi_data, n_prev);
                    select_egos(&topo, &ego_phi)
                }
            };
            if egos.is_empty() {
                break; // all-tied fitness: no strict local maximum
            }
            if k == 0 {
                egos_l1 = Rc::new(egos.clone());
            }
            let plan = build_s_plan(&topo, &pairs, &phi_data, self.cfg.lambda, &egos);
            // pooling block: S_k assembly, hyper features, the level GCN
            // and the unpool chain. Only its three outputs stay resident.
            let pool_scope = ckpt.then(|| tape.begin_checkpoint());
            // S_k values on the tape: φ entries + constant ones
            let phi_ext = with_unit_row(tape, phi);
            let gather_idx: Vec<usize> = plan
                .sources
                .iter()
                .map(|s| match s {
                    ValueSource::Pair(p) => *p,
                    ValueSource::One => pairs.len(),
                })
                .collect();
            let s_col = tape.gather_rows(phi_ext, Rc::new(gather_idx));
            let s_vals = tape.reshape(s_col, 1, plan.csr.nnz());
            let s_csr = Rc::new(plan.csr.clone());

            // hyper-node features (Eq. 3)
            let x_next = self.hyper_features(tape, bind, &plan, phi, h_prev);

            // hyper-graph connectivity A_k = S_kᵀ Â_{k-1} S_k (detached;
            // pinned on frozen replays)
            let (norm, next_topo) = match frozen {
                Some(fs) => (fs.levels[k].norm.clone(), fs.levels[k].next_topo.clone()),
                None => {
                    let s_vals_data: Vec<f64> = tape.value(s_vals).data().to_vec();
                    // Take the transpose from `s_csr` (the Rc instance the
                    // tape ops hold), not `plan.csr`: transpose_struct warms
                    // the lazy transpose cache, and warming the shared
                    // instance lets every spmm_t in this level's backward
                    // pass reuse it.
                    let (st_csr, perm) = s_csr.transpose_struct();
                    let st_vals: Vec<f64> = perm.iter().map(|&p| s_vals_data[p]).collect();
                    let (tmp_csr, tmp_vals) = st_csr.spgemm(&st_vals, &weighted.0, &weighted.1);
                    let (ak_csr, ak_vals) = tmp_csr.spgemm(&tmp_vals, &plan.csr, &s_vals_data);
                    let next_topo = Rc::new(topology_of(&ak_csr));
                    let norm = gcn_norm_weighted(&ak_csr, &ak_vals);
                    let (next_w_csr, next_w_vals) = add_unit_diag(&ak_csr, &ak_vals);
                    weighted = (Rc::new(next_w_csr), next_w_vals);
                    (norm, next_topo)
                }
            };

            // GCN on the hyper-graph
            let adj_vals =
                tape.constant(Matrix::from_vec(1, norm.values.len(), norm.values.clone()));
            let h_k = level_gcn.forward_adj(tape, bind, norm.csr.clone(), adj_vals, x_next);

            // unpool Ĥ_k = S_1 (S_2 (… S_k H_k)) (Section 3.3)
            s_chain.push((s_csr.clone(), s_vals));
            let mut up = h_k;
            for (csr, vals) in s_chain.iter().rev() {
                up = tape.spmm(csr.clone(), *vals, up);
            }
            if let Some(scope) = pool_scope {
                tape.end_checkpoint(scope, &[s_vals, h_k, up]);
            }
            unpooled.push(up);

            levels.push(LevelState {
                s_csr,
                s_vals,
                egos: egos.clone(),
                size: plan.m(),
                col_base: plan.col_base.clone(),
            });
            recorded.levels.push(FrozenLevel {
                egos,
                norm,
                next_topo: next_topo.clone(),
            });

            // advance to the next granularity level
            topo = next_topo;
            h_prev = h_k;
            let _ = plan;
        }

        // ---- flyback aggregation (Eq. 4) ----
        let (h, beta) = if self.cfg.flyback && !unpooled.is_empty() {
            let fly_scope = ckpt.then(|| tape.begin_checkpoint());
            let h0w = tape.leaky_relu(tape.matmul(h0, bind.var(self.fly.w)), ATT_SLOPE);
            let _ = h0w; // note: W applies to the *message* side per Eq. 4
            let rhs = tape.matmul(tape.leaky_relu(h0, ATT_SLOPE), bind.var(self.fly.a_rhs));
            let mut scores = Vec::with_capacity(unpooled.len());
            for &up in &unpooled {
                let lhs = tape.leaky_relu(tape.matmul(up, bind.var(self.fly.w)), ATT_SLOPE);
                let e = tape.add(tape.matmul(lhs, bind.var(self.fly.a_lhs)), rhs);
                scores.push(e);
            }
            let stacked = tape.concat_cols(&scores); // n x K
            let beta = tape.softmax_rows(stacked);
            let mut h = h0;
            for (k, &up) in unpooled.iter().enumerate() {
                let b_k = tape.slice_cols(beta, k, k + 1);
                h = tape.add(h, tape.mul_col(up, b_k));
            }
            if let Some(scope) = fly_scope {
                tape.end_checkpoint(scope, &[h, beta]);
            }
            (h, Some(beta))
        } else {
            (h0, None)
        };

        (
            AdamGnnOutput {
                h,
                h0,
                unpooled,
                beta,
                egos_l1,
                levels,
            },
            recorded,
        )
    }

    /// Hyper-node feature initialisation (Eq. 3): ego representation plus
    /// the attention-weighted members' representations.
    fn hyper_features(
        &self,
        tape: &Tape,
        bind: &Binding,
        plan: &SPlan,
        phi: Var,
        h_prev: Var,
    ) -> Var {
        let m = plan.m();
        let base = tape.gather_rows(h_prev, Rc::new(plan.col_base.clone()));
        if plan.member_pairs.is_empty() {
            return base;
        }
        let members: Rc<Vec<usize>> =
            Rc::new(plan.member_pairs.iter().map(|&(j, _, _)| j).collect());
        let ego_cols: Rc<Vec<usize>> =
            Rc::new(plan.member_pairs.iter().map(|&(_, c, _)| c).collect());
        let pair_ks: Rc<Vec<usize>> =
            Rc::new(plan.member_pairs.iter().map(|&(_, _, k)| k).collect());
        let ego_nodes: Rc<Vec<usize>> = Rc::new(
            plan.member_pairs
                .iter()
                .map(|&(_, c, _)| plan.col_base[c])
                .collect(),
        );

        let h_mem = tape.gather_rows(h_prev, members);
        let phi_sel = tape.gather_rows(phi, pair_ks);
        // score = a₁ᵀ σ(W (φ_ij h_j)) + a₂ᵀ σ(h_i)
        let scaled = tape.mul_col(h_mem, phi_sel);
        let u = tape.leaky_relu(tape.matmul(scaled, bind.var(self.init_att.w)), ATT_SLOPE);
        let s_lhs = tape.matmul(u, bind.var(self.init_att.a_lhs));
        let rhs_nodes = tape.matmul(
            tape.leaky_relu(h_prev, ATT_SLOPE),
            bind.var(self.init_att.a_rhs),
        );
        let s_rhs = tape.gather_rows(rhs_nodes, ego_nodes);
        let e = tape.add(s_lhs, s_rhs);
        let alpha = tape.segment_softmax(e, ego_cols.clone(), m);
        let weighted = tape.mul_col(h_mem, alpha);
        let contrib = tape.segment_sum(weighted, ego_cols, m);
        tape.add(base, contrib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_nn::testkit::{seeds, two_community_ctx};
    use rand::SeedableRng;

    fn small_model(levels: usize, flyback: bool) -> (ParamStore, AdamGnn) {
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(8, 12, levels);
        cfg.flyback = flyback;
        cfg.dropout = 0.0;
        let model = AdamGnn::new(&mut store, cfg, &mut seeds::model_init_alt());
        (store, model)
    }

    #[test]
    fn forward_shapes_and_levels() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        assert_eq!(tape.shape(out.h), (8, 12));
        assert_eq!(tape.shape(out.h0), (8, 12));
        assert!(!out.unpooled.is_empty(), "at least one level must pool");
        for &up in &out.unpooled {
            assert_eq!(
                tape.shape(up),
                (8, 12),
                "unpooled must be original-graph sized"
            );
        }
        assert!(!out.egos_l1.is_empty());
    }

    #[test]
    fn pooling_shrinks_each_level() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(3, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        let mut prev = ctx.n();
        for level in &out.levels {
            assert!(level.size <= prev, "levels must not grow");
            prev = level.size;
        }
    }

    #[test]
    fn beta_rows_are_distributions() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        let beta = out.beta.expect("flyback enabled");
        let bv = tape.value(beta);
        assert_eq!(bv.rows(), 8);
        assert_eq!(bv.cols(), out.unpooled.len());
        for i in 0..bv.rows() {
            let sum: f64 = bv.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn no_flyback_returns_h0() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, false);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        assert!(out.beta.is_none());
        assert_eq!(out.h, out.h0);
        // multi-grained structure is still built (used by GC readouts)
        assert!(!out.unpooled.is_empty());
    }

    #[test]
    fn gradients_reach_all_attention_params() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, true, &mut seeds::forward_rng());
        let loss = tape.mean_all(tape.mul_elem(out.h, out.h));
        let grads = tape.backward(loss);
        for p in [
            model.fit.w,
            model.fit.a_lhs,
            model.fit.a_rhs,
            model.init_att.w,
            model.fly.w,
            model.fly.a_lhs,
            model.fly.a_rhs,
        ] {
            assert!(
                grads.get(bind.var(p)).is_some(),
                "no gradient for {}",
                store.name(p)
            );
        }
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let run = |seed: u64| {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let out = model.forward(&tape, &bind, &ctx, false, &mut StdRng::seed_from_u64(seed));
            tape.value_cloned(out.h)
        };
        assert_eq!(run(1), run(99));
    }

    #[test]
    fn checkpointed_forward_backward_is_bitwise_identical() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let run = |on: bool| {
            crate::ckpt::with_ckpt_tape(on, || {
                let tape = Tape::new();
                let bind = store.bind(&tape);
                let out = model.forward(&tape, &bind, &ctx, true, &mut seeds::forward_rng());
                let loss = tape.mean_all(tape.mul_elem(out.h, out.h));
                let grads = tape.backward(loss);
                let gbits: Vec<Matrix> = store
                    .param_ids()
                    .into_iter()
                    .filter_map(|p| grads.get(bind.var(p)).cloned())
                    .collect();
                (
                    tape.value_cloned(loss),
                    tape.value_cloned(out.h),
                    gbits,
                    tape.peak_tape_bytes(),
                )
            })
        };
        let (loss_r, h_r, grads_r, peak_r) = run(false);
        let (loss_c, h_c, grads_c, peak_c) = run(true);
        assert_eq!(loss_r, loss_c, "loss must be bitwise identical");
        assert_eq!(h_r, h_c, "representations must be bitwise identical");
        assert_eq!(grads_r.len(), grads_c.len());
        for (gr, gc) in grads_r.iter().zip(&grads_c) {
            assert_eq!(gr, gc, "gradients must be bitwise identical");
        }
        assert!(
            peak_c < peak_r,
            "checkpointing must lower the tape high-water mark ({peak_c} >= {peak_r})"
        );
    }

    #[test]
    fn s_values_receive_gradients() {
        // gradients must reach φ through the unpooling chain (S values)
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(1, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        let loss = tape.mean_all(tape.mul_elem(out.h, out.h));
        let grads = tape.backward(loss);
        // the fitness attention params feed φ feed S feed Ĥ feed loss
        let g = grads.get(bind.var(model.fit.a_lhs)).expect("fitness grad");
        assert!(g.max_abs() > 0.0, "fitness gradient must be non-zero");
    }
}

//! The AdamGNN model: primary GCN, adaptive multi-grained pooling,
//! unpooling chains and flyback aggregation (paper Sections 3.1-3.4,
//! Algorithm 1).

use crate::fitness::{AttentionParams, ATT_SLOPE};
use crate::pooling::{PoolState, PoolingKind, PoolingOp};
use crate::structure::add_unit_diag;
use mg_graph::{NormAdj, Topology};
use mg_nn::{Activation, GcnLayer, GraphCtx};
use mg_tensor::{Binding, Csr, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Hyper-parameters of AdamGNN.
#[derive(Clone, Copy, Debug)]
pub struct AdamGnnConfig {
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden width (embedding width of every level).
    pub hidden: usize,
    /// Number of granularity levels `K`.
    pub levels: usize,
    /// Ego-network radius `λ`.
    pub lambda: usize,
    /// Enable the flyback aggregator (Table 5 ablates this).
    pub flyback: bool,
    /// Dropout on the primary node representation during training.
    pub dropout: f64,
    /// Include Eq. 2's linearity term `f^c = sigmoid(h_jᵀ h_i)` in the
    /// fitness (ablation knob; the paper always keeps it on).
    pub linearity: bool,
    /// Run the forward blocks through tape checkpoint scopes
    /// (recompute-on-backward; see `crate::overrides`). Bitwise-invisible
    /// to gradients and traces — it only changes peak tape memory.
    /// Defaults from `MG_CKPT_TAPE`;
    /// [`crate::overrides::with_ckpt_tape`] overrides it.
    pub checkpoint: bool,
    /// Which pooling operator coarsens each level (see
    /// [`crate::pooling`]). Defaults from `MG_POOLING`;
    /// [`crate::overrides::with_pooling`] overrides it at model
    /// construction.
    pub pooling: PoolingKind,
}

impl AdamGnnConfig {
    /// Paper-style defaults for a given input width.
    pub fn new(in_dim: usize, hidden: usize, levels: usize) -> Self {
        AdamGnnConfig {
            in_dim,
            hidden,
            levels,
            lambda: 1,
            flyback: true,
            dropout: 0.5,
            linearity: true,
            checkpoint: crate::overrides::ckpt_env_default(),
            pooling: crate::overrides::pooling_env_default(),
        }
    }
}

/// One pooled level retained for inspection and unpooling.
pub struct LevelState {
    /// Hyper-node formation structure.
    pub s_csr: Rc<Csr>,
    /// Tape variable holding `S_k`'s values (gradients reach φ).
    pub s_vals: Var,
    /// Selected egos, in the previous level's node indexing.
    pub egos: Vec<usize>,
    /// Hyper-graph size after this level.
    pub size: usize,
    /// Anchor of each coarse column in the previous level's indexing:
    /// the ego for ego columns, the node itself for retained columns.
    pub col_base: Vec<usize>,
}

/// The discrete and detached pieces of one pooling level, captured on a
/// reference forward so a verification re-run can hold them fixed.
///
/// Ego selection is piecewise-constant in the parameters and the
/// hyper-adjacency normalisation `Â_k` is deliberately detached from the
/// tape, so the gradient the optimiser uses is the gradient *at fixed
/// structure*. Central-difference gradient checking must difference that
/// same fixed-structure function — re-selecting egos or re-normalising
/// `Â_k` under a perturbed parameter would measure paths the backward
/// pass (correctly) never propagates through.
#[derive(Clone)]
pub struct FrozenLevel {
    /// Selected egos, in the previous level's node indexing.
    pub egos: Vec<usize>,
    /// Normalised hyper-graph adjacency fed to the level GCN.
    pub norm: NormAdj,
    /// Topology the next level pools.
    pub next_topo: Rc<Topology>,
}

/// Per-level [`FrozenLevel`]s from one reference forward pass.
#[derive(Clone, Default)]
pub struct FrozenStructure {
    pub levels: Vec<FrozenLevel>,
}

/// Everything a task head needs from one AdamGNN forward pass.
pub struct AdamGnnOutput {
    /// Final node representations `H = H_0 + Σ β_k Ĥ_k` (n x hidden).
    pub h: Var,
    /// Primary representations `H_0`.
    pub h0: Var,
    /// Unpooled per-level messages `Ĥ_k`, original-graph indexing.
    pub unpooled: Vec<Var>,
    /// Flyback attention `β` per node per level (n x K), when flyback ran.
    pub beta: Option<Var>,
    /// Level-1 egos (original node ids) — the cluster centres of the KL
    /// self-optimisation loss (Eq. 5).
    pub egos_l1: Rc<Vec<usize>>,
    /// Per-level metadata.
    pub levels: Vec<LevelState>,
    /// Operator-specific auxiliary loss (summed over levels), e.g.
    /// SpaPool's assignment entropy. `None` for the default operator, so
    /// the pre-trait loss compositions are unchanged.
    pub aux: Option<Var>,
}

/// Adaptive Multi-grained Graph Neural Network.
pub struct AdamGnn {
    cfg: AdamGnnConfig,
    /// Primary GCN layer (Eq. 1) — one layer, as in the paper.
    gcn0: GcnLayer,
    /// One GCN per granularity level, run on the coarsened graph.
    level_gcns: Vec<GcnLayer>,
    /// The pooling operator coarsening each level (see
    /// [`crate::pooling`]); AdamGNN's fitness/ego-network pooling by
    /// default.
    pool: PoolingOp,
    /// Flyback attention (Eq. 4).
    fly: AttentionParams,
}

impl AdamGnn {
    /// Create the model, registering all parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: AdamGnnConfig, rng: &mut StdRng) -> Self {
        assert!(cfg.levels >= 1, "AdamGNN needs at least one level");
        assert!(cfg.lambda >= 1, "lambda must be >= 1");
        // The operator owns parameters, so the runtime override must
        // apply here, not per forward pass.
        let mut cfg = cfg;
        cfg.pooling = crate::overrides::resolve_pooling(cfg.pooling);
        let gcn0 = GcnLayer::new(
            store,
            "adam.gcn0",
            cfg.in_dim,
            cfg.hidden,
            Activation::Relu,
            rng,
        );
        let level_gcns = (0..cfg.levels)
            .map(|k| {
                GcnLayer::new(
                    store,
                    &format!("adam.gcn{}", k + 1),
                    cfg.hidden,
                    cfg.hidden,
                    Activation::Relu,
                    rng,
                )
            })
            .collect();
        // Registration order matters for seeded init: the operator's
        // parameters (for the default operator: adam.fit then adam.init)
        // come between the level GCNs and adam.fly, exactly as the
        // pre-trait constructor registered them.
        let pool = PoolingOp::build(store, &cfg, rng);
        AdamGnn {
            cfg,
            gcn0,
            level_gcns,
            pool,
            fly: AttentionParams::new(store, "adam.fly", cfg.hidden, rng),
        }
    }

    /// Model configuration (with the pooling override already resolved).
    pub fn cfg(&self) -> &AdamGnnConfig {
        &self.cfg
    }

    /// The live pooling operator.
    pub fn pooling(&self) -> &PoolingOp {
        &self.pool
    }

    /// Full forward pass over one graph.
    pub fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> AdamGnnOutput {
        self.forward_inner(tape, bind, ctx, train, rng, None).0
    }

    /// Forward pass that also captures the discrete/detached structure
    /// for later frozen replays (see [`FrozenStructure`]).
    pub fn forward_recorded(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> (AdamGnnOutput, FrozenStructure) {
        self.forward_inner(tape, bind, ctx, train, rng, None)
    }

    /// Eval-mode forward with the pooling structure pinned to a prior
    /// recording: egos are not re-selected and `Â_k` is not re-normalised,
    /// so the scalar losses built on top are exactly the fixed-structure
    /// function whose gradient the backward pass computes.
    pub fn forward_frozen(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        frozen: &FrozenStructure,
    ) -> AdamGnnOutput {
        // Eval mode draws nothing; the stream only satisfies signatures.
        let mut rng = StdRng::seed_from_u64(0);
        self.forward_inner(tape, bind, ctx, false, &mut rng, Some(frozen))
            .0
    }

    fn forward_inner(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
        frozen: Option<&FrozenStructure>,
    ) -> (AdamGnnOutput, FrozenStructure) {
        // Recompute-on-backward for the big forward blocks. Every scope
        // closes before any early stop, so no abort paths are needed;
        // checkpointing never changes the values or gradients, only when
        // interior buffers are resident (see crate::overrides).
        let ckpt = crate::overrides::resolve_ckpt(self.cfg.checkpoint);
        // ---- primary node representation (Eq. 1) ----
        let x = ctx.x_var(tape);
        let mut h0 = self.gcn0.forward(tape, bind, ctx, x);
        if train && self.cfg.dropout > 0.0 {
            h0 = tape.dropout(h0, self.cfg.dropout, rng);
        }

        // ---- multi-grained structure construction, one trait call per
        // level (see crate::pooling for the operator contract) ----
        let mut state = PoolState {
            topo: ctx.graph.clone(),
            weighted: {
                let (csr, vals) = add_unit_diag(ctx.unit.csr.as_ref(), &ctx.unit.values);
                (Rc::new(csr), vals)
            },
            h_prev: h0,
            s_chain: Vec::new(),
        };
        let mut unpooled: Vec<Var> = Vec::new();
        let mut levels: Vec<LevelState> = Vec::new();
        let mut egos_l1: Rc<Vec<usize>> = Rc::new(Vec::new());
        let mut aux: Option<Var> = None;
        let mut recorded = FrozenStructure::default();
        let op = self.pool.as_dyn();

        for (k, level_gcn) in self.level_gcns.iter().enumerate() {
            if let Some(fs) = frozen {
                if k >= fs.levels.len() {
                    break; // the reference run stopped pooling here
                }
            }
            if state.topo.num_edges() == 0 {
                break; // nothing left to pool
            }
            let frozen_level = frozen.map(|fs| &fs.levels[k]);
            let Some(out) = op.pool_level(tape, bind, k, level_gcn, &mut state, ckpt, frozen_level)
            else {
                break; // the operator could not pool this level
            };
            if k == 0 {
                egos_l1 = Rc::new(out.level.egos.clone());
            }
            if let Some(a) = out.aux {
                aux = Some(match aux {
                    Some(acc) => tape.add(acc, a),
                    None => a,
                });
            }
            unpooled.push(out.unpooled);
            levels.push(out.level);
            recorded.levels.push(out.frozen);
        }

        // ---- flyback aggregation (Eq. 4) ----
        let (h, beta) = if self.cfg.flyback && !unpooled.is_empty() {
            let fly_scope = ckpt.then(|| tape.begin_checkpoint());
            let h0w = tape.leaky_relu(tape.matmul(h0, bind.var(self.fly.w)), ATT_SLOPE);
            let _ = h0w; // note: W applies to the *message* side per Eq. 4
            let rhs = tape.matmul(tape.leaky_relu(h0, ATT_SLOPE), bind.var(self.fly.a_rhs));
            let mut scores = Vec::with_capacity(unpooled.len());
            for &up in &unpooled {
                let lhs = tape.leaky_relu(tape.matmul(up, bind.var(self.fly.w)), ATT_SLOPE);
                let e = tape.add(tape.matmul(lhs, bind.var(self.fly.a_lhs)), rhs);
                scores.push(e);
            }
            let stacked = tape.concat_cols(&scores); // n x K
            let beta = tape.softmax_rows(stacked);
            let mut h = h0;
            for (k, &up) in unpooled.iter().enumerate() {
                let b_k = tape.slice_cols(beta, k, k + 1);
                h = tape.add(h, tape.mul_col(up, b_k));
            }
            if let Some(scope) = fly_scope {
                tape.end_checkpoint(scope, &[h, beta]);
            }
            (h, Some(beta))
        } else {
            (h0, None)
        };

        (
            AdamGnnOutput {
                h,
                h0,
                unpooled,
                beta,
                egos_l1,
                levels,
                aux,
            },
            recorded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_nn::testkit::{seeds, two_community_ctx};
    use mg_tensor::Matrix;
    use rand::SeedableRng;

    /// The default operator's concrete parameters (fitness + init
    /// attention), for gradient-reachability assertions.
    fn adam_pooling(model: &AdamGnn) -> &crate::pooling::AdamGnnPooling {
        match model.pooling() {
            PoolingOp::AdamGnn(p) => p,
            _ => panic!("default operator expected"),
        }
    }

    fn small_model(levels: usize, flyback: bool) -> (ParamStore, AdamGnn) {
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(8, 12, levels);
        cfg.flyback = flyback;
        cfg.dropout = 0.0;
        let model = AdamGnn::new(&mut store, cfg, &mut seeds::model_init_alt());
        (store, model)
    }

    #[test]
    fn forward_shapes_and_levels() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        assert_eq!(tape.shape(out.h), (8, 12));
        assert_eq!(tape.shape(out.h0), (8, 12));
        assert!(!out.unpooled.is_empty(), "at least one level must pool");
        for &up in &out.unpooled {
            assert_eq!(
                tape.shape(up),
                (8, 12),
                "unpooled must be original-graph sized"
            );
        }
        assert!(!out.egos_l1.is_empty());
    }

    #[test]
    fn pooling_shrinks_each_level() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(3, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        let mut prev = ctx.n();
        for level in &out.levels {
            assert!(level.size <= prev, "levels must not grow");
            prev = level.size;
        }
    }

    #[test]
    fn beta_rows_are_distributions() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        let beta = out.beta.expect("flyback enabled");
        let bv = tape.value(beta);
        assert_eq!(bv.rows(), 8);
        assert_eq!(bv.cols(), out.unpooled.len());
        for i in 0..bv.rows() {
            let sum: f64 = bv.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn no_flyback_returns_h0() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, false);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        assert!(out.beta.is_none());
        assert_eq!(out.h, out.h0);
        // multi-grained structure is still built (used by GC readouts)
        assert!(!out.unpooled.is_empty());
    }

    #[test]
    fn gradients_reach_all_attention_params() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, true, &mut seeds::forward_rng());
        let loss = tape.mean_all(tape.mul_elem(out.h, out.h));
        let grads = tape.backward(loss);
        let pool = adam_pooling(&model);
        for p in [
            pool.fit.w,
            pool.fit.a_lhs,
            pool.fit.a_rhs,
            pool.init_att.w,
            model.fly.w,
            model.fly.a_lhs,
            model.fly.a_rhs,
        ] {
            assert!(
                grads.get(bind.var(p)).is_some(),
                "no gradient for {}",
                store.name(p)
            );
        }
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let run = |seed: u64| {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let out = model.forward(&tape, &bind, &ctx, false, &mut StdRng::seed_from_u64(seed));
            tape.value_cloned(out.h)
        };
        assert_eq!(run(1), run(99));
    }

    #[test]
    fn checkpointed_forward_backward_is_bitwise_identical() {
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(2, true);
        let run = |on: bool| {
            crate::overrides::with_ckpt_tape(on, || {
                let tape = Tape::new();
                let bind = store.bind(&tape);
                let out = model.forward(&tape, &bind, &ctx, true, &mut seeds::forward_rng());
                let loss = tape.mean_all(tape.mul_elem(out.h, out.h));
                let grads = tape.backward(loss);
                let gbits: Vec<Matrix> = store
                    .param_ids()
                    .into_iter()
                    .filter_map(|p| grads.get(bind.var(p)).cloned())
                    .collect();
                (
                    tape.value_cloned(loss),
                    tape.value_cloned(out.h),
                    gbits,
                    tape.peak_tape_bytes(),
                )
            })
        };
        let (loss_r, h_r, grads_r, peak_r) = run(false);
        let (loss_c, h_c, grads_c, peak_c) = run(true);
        assert_eq!(loss_r, loss_c, "loss must be bitwise identical");
        assert_eq!(h_r, h_c, "representations must be bitwise identical");
        assert_eq!(grads_r.len(), grads_c.len());
        for (gr, gc) in grads_r.iter().zip(&grads_c) {
            assert_eq!(gr, gc, "gradients must be bitwise identical");
        }
        assert!(
            peak_c < peak_r,
            "checkpointing must lower the tape high-water mark ({peak_c} >= {peak_r})"
        );
    }

    fn rival_model(kind: PoolingKind, levels: usize) -> (ParamStore, AdamGnn) {
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(8, 12, levels);
        cfg.dropout = 0.0;
        cfg.pooling = kind;
        let model = AdamGnn::new(&mut store, cfg, &mut seeds::model_init_alt());
        (store, model)
    }

    #[test]
    fn rival_operators_forward_and_backward() {
        let (ctx, _) = two_community_ctx();
        for kind in [PoolingKind::Asap, PoolingKind::SpaPool] {
            let (store, model) = rival_model(kind, 2);
            assert_eq!(model.pooling().kind(), kind);
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
            assert_eq!(tape.shape(out.h), (8, 12), "{kind:?}");
            assert!(!out.unpooled.is_empty(), "{kind:?} must pool");
            for &up in &out.unpooled {
                assert_eq!(tape.shape(up), (8, 12), "{kind:?} unpooled shape");
            }
            let mut prev = ctx.n();
            for level in &out.levels {
                assert!(level.size <= prev, "{kind:?} levels must not grow");
                assert_eq!(level.egos.len(), level.col_base.len().min(level.egos.len()));
                prev = level.size;
            }
            match kind {
                PoolingKind::SpaPool => assert!(out.aux.is_some(), "SpaPool has entropy aux"),
                _ => assert!(out.aux.is_none(), "{kind:?} has no aux"),
            }
            let mut loss = tape.mean_all(tape.mul_elem(out.h, out.h));
            if let Some(aux) = out.aux {
                loss = tape.add(loss, aux);
            }
            assert!(
                tape.value(loss).scalar().is_finite(),
                "{kind:?} loss finite"
            );
            let grads = tape.backward(loss);
            for p in store.param_ids() {
                assert!(
                    grads.get(bind.var(p)).is_some(),
                    "{kind:?}: no gradient for {}",
                    store.name(p)
                );
            }
        }
    }

    #[test]
    fn every_operator_frozen_replay_is_bitwise_identical() {
        let (ctx, _) = two_community_ctx();
        for kind in PoolingKind::ALL {
            let (store, model) = rival_model(kind, 2);
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (out, fs) =
                model.forward_recorded(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
            assert_eq!(fs.levels.len(), out.levels.len());
            let tape2 = Tape::new();
            let bind2 = store.bind(&tape2);
            let out2 = model.forward_frozen(&tape2, &bind2, &ctx, &fs);
            assert_eq!(
                tape.value_cloned(out.h),
                tape2.value_cloned(out2.h),
                "{kind:?}: frozen replay must reproduce the recording"
            );
            assert_eq!(out2.levels.len(), out.levels.len(), "{kind:?}");
            for (a, b) in out.levels.iter().zip(&out2.levels) {
                assert_eq!(a.egos, b.egos, "{kind:?}: frozen egos pinned");
            }
        }
    }

    #[test]
    fn rival_operators_respect_checkpoint_scopes() {
        let (ctx, _) = two_community_ctx();
        for kind in [PoolingKind::Asap, PoolingKind::SpaPool] {
            let (store, model) = rival_model(kind, 2);
            let run = |on: bool| {
                crate::overrides::with_ckpt_tape(on, || {
                    let tape = Tape::new();
                    let bind = store.bind(&tape);
                    let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
                    let mut loss = tape.mean_all(tape.mul_elem(out.h, out.h));
                    if let Some(aux) = out.aux {
                        loss = tape.add(loss, aux);
                    }
                    let grads = tape.backward(loss);
                    let gbits: Vec<Matrix> = store
                        .param_ids()
                        .into_iter()
                        .filter_map(|p| grads.get(bind.var(p)).cloned())
                        .collect();
                    (tape.value_cloned(loss), gbits, tape.peak_tape_bytes())
                })
            };
            let (loss_r, grads_r, peak_r) = run(false);
            let (loss_c, grads_c, peak_c) = run(true);
            assert_eq!(loss_r, loss_c, "{kind:?}: loss bitwise identical");
            assert_eq!(grads_r, grads_c, "{kind:?}: gradients bitwise identical");
            assert!(
                peak_c < peak_r,
                "{kind:?}: checkpointing must lower the high-water mark ({peak_c} >= {peak_r})"
            );
        }
    }

    #[test]
    fn s_values_receive_gradients() {
        // gradients must reach φ through the unpooling chain (S values)
        let (ctx, _) = two_community_ctx();
        let (store, model) = small_model(1, true);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        let loss = tape.mean_all(tape.mul_elem(out.h, out.h));
        let grads = tape.backward(loss);
        // the fitness attention params feed φ feed S feed Ĥ feed loss
        let g = grads
            .get(bind.var(adam_pooling(&model).fit.a_lhs))
            .expect("fitness grad");
        assert!(g.max_abs() > 0.0, "fitness gradient must be non-zero");
    }
}

//! # adamgnn-core
//!
//! AdamGNN — Adaptive Multi-grained Graph Neural Networks (Zhong, Li,
//! Pang; the system behind the ICDE'24 extended abstract "Multi-Grained
//! Semantics-Aware Graph Neural Networks").
//!
//! The model unifies node-level and graph-level representation learning:
//!
//! 1. a primary GCN produces node representations (Eq. 1);
//! 2. **adaptive graph pooling** scores every (member, ego) pair with a
//!    fitness `φ` (Eq. 2), selects ego-networks whose mean fitness is a
//!    strict local maximum (no top-k ratio hyper-parameter), and builds a
//!    weighted hyper-node formation matrix `S_k`;
//! 3. hyper-node features are initialised by self-attention (Eq. 3) and a
//!    GCN runs on the coarsened graph `A_k = S_kᵀ Â S_k`;
//! 4. **graph unpooling** restores each level's semantics to the original
//!    nodes through the `S` chain;
//! 5. the **flyback aggregator** (Eq. 4) attends over levels to produce
//!    the final multi-grained node representations;
//! 6. training adds a DEC-style KL self-optimisation loss (Eq. 5) and a
//!    reconstruction loss (Eq. 6): `L = L_task + γ L_KL + δ L_R`.
//!
//! See `DESIGN.md` at the repository root for the substrate inventory and
//! `EXPERIMENTS.md` for the reproduced evaluation.

pub mod decompose;
pub mod explain;
pub mod faults;
pub mod fitness;
pub mod gc;
pub mod loss;
pub mod model;
pub mod overrides;
pub mod pooling;
pub mod structure;

pub use decompose::{
    decomposed_loss, decomposed_loss_frozen, record_loss_freeze, LossBreakdown, LossFreeze,
};
pub use explain::{LevelExplanation, NodeExplanation};
pub use fitness::{pair_fitness, pair_fitness_with, AttentionParams, EgoPairs};
pub use gc::{AdamGnnGc, AdamGnnNode};
pub use loss::{
    kl_loss, kl_loss_with_target, reconstruction_loss, reconstruction_loss_planned, total_loss,
    LossWeights, ReconPlan,
};
pub use model::{AdamGnn, AdamGnnConfig, AdamGnnOutput, FrozenLevel, FrozenStructure, LevelState};
pub use overrides::{pooling_env_default, with_ckpt_tape, with_pooling, RuntimeOverrides};
pub use pooling::{
    coarsen_adjacency, AdamGnnPooling, AsapPooling, PoolLevelOutput, PoolState, Pooling,
    PoolingKind, PoolingOp, SpaPoolPooling,
};
pub use structure::{build_s_plan, ego_fitness, select_egos, SPlan, ValueSource};

//! AdamGNN as a graph classifier (Table 1) and as a node encoder
//! (Table 2), adapting the core model to the two task interfaces used by
//! the baselines.

use crate::loss::{kl_loss, reconstruction_loss, LossWeights};
use crate::model::{AdamGnn, AdamGnnConfig};
use mg_nn::gc::{GcOutput, GraphClassifier};
use mg_nn::{GraphCtx, Mlp, NodeEncoder, Readout};
use mg_tensor::{Binding, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// AdamGNN graph classifier: readouts of the flyback representation and
/// every unpooled level (`READOUT({H, Ĥ_1..Ĥ_K})`, Algorithm 1 line 25),
/// summed and fed to an MLP. Its auxiliary loss is `γ L_KL + δ L_R`.
pub struct AdamGnnGc {
    core: AdamGnn,
    head: Mlp,
    weights: LossWeights,
}

impl AdamGnnGc {
    /// Build for graphs with `in_dim` features and `classes` classes,
    /// with the paper's default loss weights.
    pub fn new(
        store: &mut ParamStore,
        cfg: AdamGnnConfig,
        classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self::with_weights(store, cfg, classes, LossWeights::default(), rng)
    }

    /// Build with explicit loss weights (ablation Table 3 sets γ and/or δ
    /// to zero).
    pub fn with_weights(
        store: &mut ParamStore,
        cfg: AdamGnnConfig,
        classes: usize,
        weights: LossWeights,
        rng: &mut StdRng,
    ) -> Self {
        let head = Mlp::new(
            store,
            "adam.gc_head",
            &[2 * cfg.hidden, cfg.hidden, classes],
            rng,
        );
        AdamGnnGc {
            core: AdamGnn::new(store, cfg, rng),
            head,
            weights,
        }
    }

    /// Access the underlying model (for ablations).
    pub fn core(&self) -> &AdamGnn {
        &self.core
    }
}

impl GraphClassifier for AdamGnnGc {
    fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> GcOutput {
        let out = self.core.forward(tape, bind, ctx, train, rng);
        let mut rep = Readout::MeanMax.apply(tape, out.h);
        for &up in &out.unpooled {
            rep = tape.add(rep, Readout::MeanMax.apply(tape, up));
        }
        let logits = self.head.forward(tape, bind, rep);
        let mut aux = if self.weights.gamma == 0.0 && self.weights.delta == 0.0 {
            None
        } else {
            let kl = kl_loss(tape, out.h, &out.egos_l1);
            let recon = reconstruction_loss(tape, out.h, &ctx.graph, rng);
            let kl_term = tape.scale(kl, self.weights.gamma);
            let recon_term = tape.scale(recon, self.weights.delta);
            Some(tape.add(kl_term, recon_term))
        };
        // operator-specific auxiliary term (None for the default
        // operator, keeping the pre-trait composition unchanged)
        if let Some(op_aux) = out.aux {
            aux = Some(match aux {
                Some(a) => tape.add(a, op_aux),
                None => op_aux,
            });
        }
        GcOutput {
            logits,
            aux_loss: aux,
        }
    }

    fn name(&self) -> &'static str {
        "AdamGNN"
    }
}

/// AdamGNN as a node encoder: the flyback representation followed by a
/// linear head sized for the task (classes for NC, embedding width for
/// LP). The composite loss is assembled by the evaluation harness via
/// [`crate::loss`].
pub struct AdamGnnNode {
    core: AdamGnn,
    head: Mlp,
}

impl AdamGnnNode {
    /// Build with output width `out_dim`.
    pub fn new(
        store: &mut ParamStore,
        cfg: AdamGnnConfig,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let head = Mlp::new(store, "adam.node_head", &[cfg.hidden, out_dim], rng);
        AdamGnnNode {
            core: AdamGnn::new(store, cfg, rng),
            head,
        }
    }

    /// Access the underlying model.
    pub fn core(&self) -> &AdamGnn {
        &self.core
    }

    /// Forward returning both the task output and the internals the
    /// composite loss and Figure-2 inspection need.
    pub fn forward_full(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> (Var, crate::model::AdamGnnOutput) {
        let out = self.core.forward(tape, bind, ctx, train, rng);
        let logits = self.head.forward(tape, bind, out.h);
        (logits, out)
    }

    /// Eval-mode forward that also captures the discrete/detached pooling
    /// structure (see [`crate::model::FrozenStructure`]) for later frozen
    /// replays.
    pub fn forward_full_recorded(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
    ) -> (
        Var,
        crate::model::AdamGnnOutput,
        crate::model::FrozenStructure,
    ) {
        use rand::SeedableRng;
        // eval-mode forward draws nothing from the stream
        let mut rng = StdRng::seed_from_u64(0);
        let (out, fs) = self.core.forward_recorded(tape, bind, ctx, false, &mut rng);
        let logits = self.head.forward(tape, bind, out.h);
        (logits, out, fs)
    }

    /// Eval-mode forward with the pooling structure pinned to a prior
    /// recording — the fixed-structure function whose gradient the
    /// backward pass computes (used by the mg-verify gradient audit).
    pub fn forward_full_frozen(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        frozen: &crate::model::FrozenStructure,
    ) -> (Var, crate::model::AdamGnnOutput) {
        let out = self.core.forward_frozen(tape, bind, ctx, frozen);
        let logits = self.head.forward(tape, bind, out.h);
        (logits, out)
    }
}

impl NodeEncoder for AdamGnnNode {
    fn encode(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        self.forward_full(tape, bind, ctx, train, rng).0
    }

    fn name(&self) -> &'static str {
        "AdamGNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_nn::testkit::{
        graph_classifier_accuracy, ring_vs_star_samples, seeds, train_graph_classifier,
        two_community_ctx,
    };
    use mg_tensor::AdamConfig;
    use std::rc::Rc;

    #[test]
    fn adamgnn_gc_trains_on_ring_vs_star() {
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(3, 16, 2);
        cfg.dropout = 0.0;
        let model = AdamGnnGc::new(&mut store, cfg, 2, &mut seeds::model_init());
        let samples = ring_vs_star_samples();
        let loss = train_graph_classifier(&model, &mut store, &samples, 250, 0.02);
        assert!(loss < 0.4, "final loss = {loss}");
        let acc = graph_classifier_accuracy(&model, &store, &samples);
        assert!(acc >= 5.0 / 6.0, "train accuracy = {acc}");
    }

    #[test]
    fn adamgnn_node_learns_communities() {
        let (ctx, labels) = two_community_ctx();
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(8, 16, 2);
        cfg.dropout = 0.0;
        let model = AdamGnnNode::new(&mut store, cfg, 2, &mut seeds::model_init());
        let targets = Rc::new(labels);
        let nodes = Rc::new((0..8).collect::<Vec<_>>());
        let adam = AdamConfig::with_lr(0.03);
        let mut rng = seeds::forward_rng();
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (logits, out) = model.forward_full(&tape, &bind, &ctx, false, &mut rng);
            let task = tape.cross_entropy(logits, targets.clone(), nodes.clone());
            let kl = kl_loss(&tape, out.h, &out.egos_l1);
            let recon = reconstruction_loss(&tape, out.h, &ctx.graph, &mut rng);
            let loss = crate::loss::total_loss(&tape, task, kl, recon, &LossWeights::default());
            last = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &adam);
        }
        assert!(last < 0.5, "final total loss = {last}");
    }
}

//! Differentiable fitness scoring (paper Eq. 2) and the attention used for
//! hyper-node feature initialisation (Eq. 3) and flyback aggregation
//! (Eq. 4).
//!
//! All three attentions share the same algebraic shape
//! `aᵀ σ(W u ‖ v)`; because `σ` is elementwise, the dot product splits as
//! `a₁ᵀ σ(W u) + a₂ᵀ σ(v)`, which lets per-node terms be computed once and
//! gathered per pair — the same decomposition GAT implementations use.

use mg_tensor::{Binding, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::rc::Rc;

/// Negative slope of the LeakyReLU in every attention (paper uses
/// LeakyReLU for σ).
pub const ATT_SLOPE: f64 = 0.2;

/// Parameters of one `aᵀ σ(W · ‖ ·)` attention.
pub struct AttentionParams {
    pub w: ParamId,
    /// First half of `a` (applied to the transformed side).
    pub a_lhs: ParamId,
    /// Second half of `a` (applied to the raw side).
    pub a_rhs: ParamId,
}

impl AttentionParams {
    /// Create with Glorot initialisation. `dim` is the node-embedding
    /// width on both sides.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, rng: &mut StdRng) -> Self {
        AttentionParams {
            w: store.add(format!("{name}.w"), Matrix::glorot(dim, dim, rng)),
            a_lhs: store.add(format!("{name}.a_lhs"), Matrix::glorot(dim, 1, rng)),
            a_rhs: store.add(format!("{name}.a_rhs"), Matrix::glorot(dim, 1, rng)),
        }
    }
}

/// Ordered λ-hop pairs `(member j, candidate ego i)` used by both the
/// fitness score and the hyper-node formation matrix.
#[derive(Clone)]
pub struct EgoPairs {
    /// Member node `j` of each pair.
    pub src: Rc<Vec<usize>>,
    /// Candidate ego `i` of each pair.
    pub dst: Rc<Vec<usize>>,
}

impl EgoPairs {
    /// Build all ordered pairs within distance `lambda` (excluding
    /// self-pairs) of a topology.
    pub fn build(topo: &mg_graph::Topology, lambda: usize) -> EgoPairs {
        let n = topo.n();
        let mut src = Vec::new();
        let mut dst = Vec::new();
        if lambda == 1 {
            for i in 0..n {
                for j in topo.neighbors(i) {
                    src.push(j);
                    dst.push(i);
                }
            }
        } else {
            // one scratch across all n BFS traversals — khop() would
            // allocate an O(n) dist array per ego, O(n²) total
            let mut scratch = mg_graph::BfsScratch::with_capacity(n);
            for i in 0..n {
                for j in topo.khop_with(&mut scratch, i, lambda) {
                    if j != i {
                        src.push(j);
                        dst.push(i);
                    }
                }
            }
        }
        EgoPairs {
            src: Rc::new(src),
            dst: Rc::new(dst),
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when the graph has no pairs (no edges).
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// Per-pair fitness `φ_ij = f^s × f^c` (Eq. 2), a `P x 1` tape variable.
///
/// * `f^s` — attention `aᵀ LeakyReLU(W h_j ‖ W h_i)` softmax-normalised
///   over each member `j`'s candidate egos (the `Σ_{r ∈ N_j^λ}`
///   denominator of the paper).
/// * `f^c` — the linearity term `sigmoid(h_jᵀ h_i)`.
pub fn pair_fitness(
    tape: &Tape,
    bind: &Binding,
    params: &AttentionParams,
    pairs: &EgoPairs,
    h: Var,
    n: usize,
) -> Var {
    pair_fitness_with(tape, bind, params, pairs, h, n, true)
}

/// As [`pair_fitness`] with the linearity term `f^c` optional — the
/// ablation knob for Eq. 2's second component.
pub fn pair_fitness_with(
    tape: &Tape,
    bind: &Binding,
    params: &AttentionParams,
    pairs: &EgoPairs,
    h: Var,
    n: usize,
    linearity: bool,
) -> Var {
    let hw = tape.matmul(h, bind.var(params.w));
    let act = tape.leaky_relu(hw, ATT_SLOPE);
    let lhs = tape.matmul(act, bind.var(params.a_lhs)); // n x 1 (member side)
    let rhs = tape.matmul(act, bind.var(params.a_rhs)); // n x 1 (ego side)
    let e_src = tape.gather_rows(lhs, pairs.src.clone());
    let e_dst = tape.gather_rows(rhs, pairs.dst.clone());
    let e = tape.add(e_src, e_dst);
    // softmax over each member's candidate egos
    let f_s = tape.segment_softmax(e, pairs.src.clone(), n);
    if !linearity {
        return f_s;
    }
    // linearity component
    let h_src = tape.gather_rows(h, pairs.src.clone());
    let h_dst = tape.gather_rows(h, pairs.dst.clone());
    let f_c = tape.sigmoid(tape.row_dot(h_src, h_dst));
    tape.mul_elem(f_s, f_c)
}

/// Append a constant `1.0` row to a `P x 1` column so index `P` can be
/// gathered as the constant for retained-node entries of `S_k`.
pub fn with_unit_row(tape: &Tape, col: Var) -> Var {
    let p = tape.shape(col).0;
    let flat = tape.reshape(col, 1, p);
    let one = tape.constant(Matrix::full(1, 1, 1.0));
    let cat = tape.concat_cols(&[flat, one]);
    tape.reshape(cat, p + 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::Topology;
    use rand::SeedableRng;

    fn setup() -> (Topology, Matrix) {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let h = Matrix::from_fn(5, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 / 5.0 - 0.4);
        (topo, h)
    }

    #[test]
    fn pairs_lambda1_are_directed_edges() {
        let (topo, _) = setup();
        let pairs = EgoPairs::build(&topo, 1);
        assert_eq!(pairs.len(), 2 * topo.num_edges());
    }

    #[test]
    fn pairs_lambda2_superset_of_lambda1() {
        let (topo, _) = setup();
        let p1 = EgoPairs::build(&topo, 1);
        let p2 = EgoPairs::build(&topo, 2);
        assert!(p2.len() >= p1.len());
        // no self pairs
        assert!(p2.src.iter().zip(p2.dst.iter()).all(|(a, b)| a != b));
    }

    #[test]
    fn fitness_values_in_unit_interval() {
        let (topo, h) = setup();
        let pairs = EgoPairs::build(&topo, 1);
        let mut store = ParamStore::new();
        let params = AttentionParams::new(&mut store, "fit", 4, &mut StdRng::seed_from_u64(0));
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let hv = tape.constant(h);
        let phi = pair_fitness(&tape, &bind, &params, &pairs, hv, 5);
        let v = tape.value(phi);
        assert_eq!(v.shape(), (pairs.len(), 1));
        assert!(v.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn fitness_softmax_component_normalises_per_member() {
        // with f^c forced to 1 (h = 0 gives sigmoid(0) = 0.5, so instead
        // verify that summing phi/f_c over each member's candidates = 1)
        let (topo, h) = setup();
        let pairs = EgoPairs::build(&topo, 1);
        let mut store = ParamStore::new();
        let params = AttentionParams::new(&mut store, "fit", 4, &mut StdRng::seed_from_u64(0));
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let hv = tape.constant(h.clone());
        let phi = pair_fitness(&tape, &bind, &params, &pairs, hv, 5);
        let v = tape.value(phi);
        // divide out f_c and check per-member sums
        let mut sums = vec![0.0f64; 5];
        for (k, (&j, &i)) in pairs.src.iter().zip(pairs.dst.iter()).enumerate() {
            let dot = h.row_dot(j, &h, i);
            let f_c = mg_tensor::sigmoid(dot);
            sums[j] += v[(k, 0)] / f_c;
        }
        for s in sums {
            assert!((s - 1.0).abs() < 1e-9, "sum = {s}");
        }
    }

    #[test]
    fn fitness_is_differentiable_wrt_h() {
        let (topo, h) = setup();
        let pairs = EgoPairs::build(&topo, 1);
        let mut store = ParamStore::new();
        let params = AttentionParams::new(&mut store, "fit", 4, &mut StdRng::seed_from_u64(0));
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let hv = tape.leaf(h, true);
        let phi = pair_fitness(&tape, &bind, &params, &pairs, hv, 5);
        let loss = tape.sum_all(phi);
        let grads = tape.backward(loss);
        assert!(grads.get(hv).is_some());
        assert!(grads.get(bind.var(params.w)).is_some());
    }

    #[test]
    fn with_unit_row_appends_one() {
        let tape = Tape::new();
        let col = tape.constant(Matrix::from_vec(3, 1, vec![0.1, 0.2, 0.3]));
        let ext = with_unit_row(&tape, col);
        assert_eq!(tape.shape(ext), (4, 1));
        assert_eq!(tape.value(ext)[(3, 0)], 1.0);
        assert_eq!(tape.value(ext)[(1, 0)], 0.2);
    }
}

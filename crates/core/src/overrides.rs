//! Runtime override resolution — the one place the thread-local / env /
//! config precedence rules live.
//!
//! Two knobs are resolvable at runtime:
//!
//! * **Checkpointed tapes** (recompute-on-backward), resolved per
//!   forward pass: [`with_ckpt_tape`] > `AdamGnnConfig::checkpoint` >
//!   `MG_CKPT_TAPE` (`1`/`true`/`on`). Checkpointing changes *when*
//!   forward values are resident, never what they are: gradients are
//!   bitwise identical either way (enforced by the replay fingerprint
//!   check in mg-tensor and the differential suites).
//! * **Pooling operator**, resolved once at *model construction* (the
//!   operator owns parameters, so it cannot change per forward):
//!   [`with_pooling`] > `AdamGnnConfig::pooling` > `MG_POOLING`
//!   (`adamgnn`/`asap`/`spapool`). The typed [`PoolingKind`] in configs
//!   and checkpoints is the source of truth; the env var is only a
//!   construction-time default, parsed here exactly once.
//!
//! The env defaults feed config *construction* (`AdamGnnConfig::new`,
//! `TrainConfig::default`); the thread-local overrides beat whatever the
//! config carries. Tests and the memory-report bench use the closures to
//! compare modes in one process without touching the environment (env
//! mutation is racy under the parallel test runner).

use crate::pooling::PoolingKind;
use std::cell::Cell;

thread_local! {
    static CKPT_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
    static POOLING_OVERRIDE: Cell<Option<PoolingKind>> = const { Cell::new(None) };
}

/// RAII guard restoring a thread-local override slot on drop (also on
/// panic).
struct Restore<T: Copy + 'static>(&'static std::thread::LocalKey<Cell<Option<T>>>, Option<T>);
impl<T: Copy + 'static> Drop for Restore<T> {
    fn drop(&mut self) {
        let prev = self.1;
        self.0.with(|c| c.set(prev));
    }
}

/// Run `f` with tape checkpointing forced on or off for this thread,
/// overriding both the config field and `MG_CKPT_TAPE`. Restores the
/// previous override on exit (also on panic).
pub fn with_ckpt_tape<R>(on: bool, f: impl FnOnce() -> R) -> R {
    let _restore = Restore(&CKPT_OVERRIDE, CKPT_OVERRIDE.with(|c| c.replace(Some(on))));
    f()
}

/// Run `f` with the pooling operator forced for this thread, overriding
/// both the config field and `MG_POOLING`. Only models *constructed*
/// inside `f` are affected — the operator owns parameters, so it is
/// fixed at construction. Restores the previous override on exit (also
/// on panic).
pub fn with_pooling<R>(kind: PoolingKind, f: impl FnOnce() -> R) -> R {
    let _restore = Restore(
        &POOLING_OVERRIDE,
        POOLING_OVERRIDE.with(|c| c.replace(Some(kind))),
    );
    f()
}

/// The fully-resolved runtime knobs for one model, combining the
/// thread-local overrides with the config's values (which themselves
/// defaulted from the environment at construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeOverrides {
    /// Effective checkpointed-tape toggle.
    pub checkpoint: bool,
    /// Effective pooling operator.
    pub pooling: PoolingKind,
}

impl RuntimeOverrides {
    /// Resolve against a config's defaults. `AdamGnn::new` applies
    /// `pooling` once; `forward_inner` re-reads `checkpoint` every pass
    /// (it owns no state, so it may change between passes).
    pub fn resolve(cfg_checkpoint: bool, cfg_pooling: PoolingKind) -> Self {
        RuntimeOverrides {
            checkpoint: CKPT_OVERRIDE.with(|c| c.get()).unwrap_or(cfg_checkpoint),
            pooling: POOLING_OVERRIDE.with(|c| c.get()).unwrap_or(cfg_pooling),
        }
    }
}

/// The config-construction default for checkpointed tapes: true when
/// `MG_CKPT_TAPE` is `1`, `true` or `on`.
pub(crate) fn ckpt_env_default() -> bool {
    std::env::var("MG_CKPT_TAPE").is_ok_and(|v| matches!(v.as_str(), "1" | "true" | "on"))
}

/// The config-construction default for the pooling operator: the
/// `MG_POOLING` name when set and valid, else AdamGNN. Public because
/// mg-eval's `TrainConfig::default` seeds its own `pooling` field from
/// the same source (the env var must be parsed in exactly one place).
pub fn pooling_env_default() -> PoolingKind {
    std::env::var("MG_POOLING")
        .ok()
        .and_then(|v| PoolingKind::from_name(&v))
        .unwrap_or_default()
}

/// Effective checkpointed-tape toggle for a forward pass with the given
/// config default.
pub(crate) fn resolve_ckpt(cfg_default: bool) -> bool {
    RuntimeOverrides::resolve(cfg_default, PoolingKind::AdamGnn).checkpoint
}

/// Effective pooling operator at model construction with the given
/// config default.
pub(crate) fn resolve_pooling(cfg_default: PoolingKind) -> PoolingKind {
    RuntimeOverrides::resolve(false, cfg_default).pooling
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckpt_override_wins_and_restores() {
        assert!(!resolve_ckpt(false));
        assert!(resolve_ckpt(true));
        with_ckpt_tape(true, || {
            assert!(resolve_ckpt(false), "override beats config default");
            assert!(resolve_ckpt(true));
        });
        with_ckpt_tape(false, || {
            assert!(!resolve_ckpt(true), "override beats config default");
        });
        assert!(!resolve_ckpt(false), "override restored on exit");
    }

    #[test]
    fn nested_ckpt_overrides_unwind() {
        with_ckpt_tape(true, || {
            with_ckpt_tape(false, || assert!(!resolve_ckpt(true)));
            assert!(resolve_ckpt(false), "outer override restored");
        });
    }

    #[test]
    fn pooling_override_wins_and_restores() {
        assert_eq!(resolve_pooling(PoolingKind::Asap), PoolingKind::Asap);
        with_pooling(PoolingKind::SpaPool, || {
            assert_eq!(
                resolve_pooling(PoolingKind::AdamGnn),
                PoolingKind::SpaPool,
                "override beats config default"
            );
        });
        assert_eq!(
            resolve_pooling(PoolingKind::AdamGnn),
            PoolingKind::AdamGnn,
            "override restored on exit"
        );
    }

    #[test]
    fn nested_pooling_overrides_unwind() {
        with_pooling(PoolingKind::Asap, || {
            with_pooling(PoolingKind::SpaPool, || {
                assert_eq!(resolve_pooling(PoolingKind::AdamGnn), PoolingKind::SpaPool);
            });
            assert_eq!(
                resolve_pooling(PoolingKind::AdamGnn),
                PoolingKind::Asap,
                "outer override restored"
            );
        });
    }

    #[test]
    fn resolve_combines_both_knobs() {
        let r = RuntimeOverrides::resolve(true, PoolingKind::Asap);
        assert_eq!(
            r,
            RuntimeOverrides {
                checkpoint: true,
                pooling: PoolingKind::Asap
            }
        );
        with_ckpt_tape(false, || {
            with_pooling(PoolingKind::SpaPool, || {
                let r = RuntimeOverrides::resolve(true, PoolingKind::Asap);
                assert!(!r.checkpoint);
                assert_eq!(r.pooling, PoolingKind::SpaPool);
            });
        });
    }
}

//! The pooling-operator seam: everything one coarsening level does —
//! score, select, assemble `S_k`, pool features, coarsen the topology,
//! run the level GCN and unpool — behind one [`Pooling`] trait.
//!
//! The paper's Table 4 compares AdamGNN against rival hierarchical
//! pooling methods; reproducing that comparison needs a seam between
//! "the AdamGNN model" (primary GCN, flyback, losses) and "a pooling
//! operator" (how one level coarsens). [`AdamGnnPooling`] is the
//! fitness→ego-select→pool path moved verbatim out of
//! `AdamGnn::forward_inner` — the default operator's tape-op sequence is
//! unchanged, which is what keeps the checked-in golden traces
//! byte-identical. [`AsapPooling`] and [`SpaPoolPooling`] are the two
//! rivals whose mechanics map onto the existing tape ops.
//!
//! Every implementor honours the frozen-structure contract of
//! [`FrozenLevel`]: discrete selections (egos / anchors) and the
//! detached coarsened adjacency are pinned on frozen replays, while the
//! differentiable pieces (attention weights, soft assignments, gates)
//! recompute — so the frozen objective is exactly the fixed-structure
//! function whose gradient the backward pass computes, and
//! central-difference gradient checking stays valid for every operator.

use crate::fitness::{pair_fitness_with, with_unit_row, AttentionParams, EgoPairs, ATT_SLOPE};
use crate::model::{AdamGnnConfig, FrozenLevel, LevelState};
use crate::structure::{
    add_unit_diag, build_s_plan, ego_fitness, select_egos, topology_of, ValueSource,
};
use mg_graph::{gcn_norm_weighted, NormAdj, Topology};
use mg_nn::GcnLayer;
use mg_tensor::{Binding, Csr, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::rc::Rc;

/// Weight of SpaPool's assignment-entropy auxiliary loss.
const SPAPOOL_ENTROPY_WEIGHT: f64 = 0.01;

/// Which pooling operator coarsens each level. Typed — wired through
/// `AdamGnnConfig`, `TrainConfig` and the checkpoint config section, not
/// a stringly env var (the `MG_POOLING` default is parsed once into this
/// enum at config construction; see `crate::overrides`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolingKind {
    /// AdamGNN's adaptive fitness/ego-network pooling (Eqs. 2-3).
    #[default]
    AdamGnn,
    /// ASAP: intra-cluster attention + LEConv-scored cluster selection.
    Asap,
    /// SpaPool: differentiable soft partition assignment onto anchors.
    SpaPool,
}

impl PoolingKind {
    /// Every operator, in discriminant order (benchmark matrix order).
    pub const ALL: [PoolingKind; 3] = [
        PoolingKind::AdamGnn,
        PoolingKind::Asap,
        PoolingKind::SpaPool,
    ];

    /// Stable lowercase name (trace tag, bench rows, `MG_POOLING`).
    pub fn name(self) -> &'static str {
        match self {
            PoolingKind::AdamGnn => "adamgnn",
            PoolingKind::Asap => "asap",
            PoolingKind::SpaPool => "spapool",
        }
    }

    /// Inverse of [`PoolingKind::name`].
    pub fn from_name(s: &str) -> Option<PoolingKind> {
        match s {
            "adamgnn" => Some(PoolingKind::AdamGnn),
            "asap" => Some(PoolingKind::Asap),
            "spapool" => Some(PoolingKind::SpaPool),
            _ => None,
        }
    }

    /// Stable wire discriminant for the checkpoint config section.
    pub fn discriminant(self) -> u8 {
        match self {
            PoolingKind::AdamGnn => 0,
            PoolingKind::Asap => 1,
            PoolingKind::SpaPool => 2,
        }
    }

    /// Inverse of [`PoolingKind::discriminant`].
    pub fn from_discriminant(d: u8) -> Option<PoolingKind> {
        match d {
            0 => Some(PoolingKind::AdamGnn),
            1 => Some(PoolingKind::Asap),
            2 => Some(PoolingKind::SpaPool),
            _ => None,
        }
    }
}

/// Mutable per-forward state threaded through the pooling loop. The
/// operator advances `topo`/`h_prev` (and, off the frozen path,
/// `weighted`) when a level succeeds; `s_chain` accumulates the `S`
/// factors the unpool chain multiplies through.
pub struct PoolState {
    /// Topology the current level pools.
    pub topo: Rc<Topology>,
    /// Weighted `Â` of the current level (values detached from the tape).
    /// Frozen replays never touch it: the coarsened adjacency they need
    /// is pinned in [`FrozenLevel`].
    pub weighted: (Rc<Csr>, Vec<f64>),
    /// Node embeddings entering the level.
    pub h_prev: Var,
    /// `S_1 .. S_k` so far, for the unpool chain (Section 3.3).
    pub s_chain: Vec<(Rc<Csr>, Var)>,
}

/// Everything one successful pooling level hands back to the model.
pub struct PoolLevelOutput {
    /// Per-level metadata (exposed via `AdamGnnOutput::levels`).
    pub level: LevelState,
    /// The discrete/detached pieces to pin for frozen replays.
    pub frozen: FrozenLevel,
    /// `Ĥ_k` unpooled to the original graph's indexing.
    pub unpooled: Var,
    /// Operator-specific auxiliary loss term (e.g. SpaPool's assignment
    /// entropy); `None` for operators without one.
    pub aux: Option<Var>,
}

/// One hierarchical pooling operator: everything between "embeddings and
/// topology in" and "pooled level out".
///
/// Contract:
/// * Return `None` (before recording any tape op that later levels might
///   observe gradients through) when the level cannot pool — the model
///   stops pooling there, exactly like the inline `break`s did.
/// * On success, advance `state` (`topo`, `h_prev`, push onto `s_chain`;
///   `weighted` only off the frozen path) and return the level.
/// * When `frozen` is `Some`, pin every discrete/detached piece to it:
///   reuse its egos instead of re-selecting, its `norm`/`next_topo`
///   instead of re-coarsening. Differentiable pieces must recompute.
/// * When `ckpt` is true, wrap the big forward blocks in tape checkpoint
///   scopes; any value read across a scope boundary must be in the keep
///   list, and host-side reads of detached scores must happen before the
///   scope ends.
pub trait Pooling {
    /// Which [`PoolingKind`] this operator implements.
    fn kind(&self) -> PoolingKind;

    /// Run one coarsening level. See the trait docs for the contract.
    #[allow(clippy::too_many_arguments)]
    fn pool_level(
        &self,
        tape: &Tape,
        bind: &Binding,
        k: usize,
        level_gcn: &GcnLayer,
        state: &mut PoolState,
        ckpt: bool,
        frozen: Option<&FrozenLevel>,
    ) -> Option<PoolLevelOutput>;
}

/// The detached coarsening every operator shares:
/// `A_k = S_kᵀ Â_{k-1} S_k` via two spgemms, then the next level's
/// normalisation, topology and weighted `Â_k` (all off-tape — the
/// gradient the optimiser uses is the gradient at fixed structure).
pub fn coarsen_adjacency(
    tape: &Tape,
    s_csr: &Rc<Csr>,
    s_vals: Var,
    weighted: &mut (Rc<Csr>, Vec<f64>),
) -> (NormAdj, Rc<Topology>) {
    let s_vals_data: Vec<f64> = tape.value(s_vals).data().to_vec();
    // Take the transpose from `s_csr` (the Rc instance the tape ops
    // hold): transpose_struct warms the lazy transpose cache, and
    // warming the shared instance lets every spmm_t in this level's
    // backward pass reuse it.
    let (st_csr, perm) = s_csr.transpose_struct();
    let st_vals: Vec<f64> = perm.iter().map(|&p| s_vals_data[p]).collect();
    let (tmp_csr, tmp_vals) = st_csr.spgemm(&st_vals, &weighted.0, &weighted.1);
    let (ak_csr, ak_vals) = tmp_csr.spgemm(&tmp_vals, s_csr.as_ref(), &s_vals_data);
    let next_topo = Rc::new(topology_of(&ak_csr));
    let norm = gcn_norm_weighted(&ak_csr, &ak_vals);
    let (next_w_csr, next_w_vals) = add_unit_diag(&ak_csr, &ak_vals);
    *weighted = (Rc::new(next_w_csr), next_w_vals);
    (norm, next_topo)
}

/// The shared tail of every operator's level: GCN on the coarsened
/// graph, extend the unpool chain, and multiply `Ĥ_k` back to the
/// original indexing.
fn level_gcn_and_unpool(
    tape: &Tape,
    bind: &Binding,
    level_gcn: &GcnLayer,
    norm: &NormAdj,
    x_next: Var,
    (s_csr, s_vals): (&Rc<Csr>, Var),
    state: &mut PoolState,
) -> (Var, Var) {
    let adj_vals = tape.constant(Matrix::from_vec(1, norm.values.len(), norm.values.clone()));
    let h_k = level_gcn.forward_adj(tape, bind, norm.csr.clone(), adj_vals, x_next);
    state.s_chain.push((s_csr.clone(), s_vals));
    let mut up = h_k;
    for (csr, vals) in state.s_chain.iter().rev() {
        up = tape.spmm(csr.clone(), *vals, up);
    }
    (h_k, up)
}

/// Dispatch enum over the shipped operators. An enum (not `Box<dyn>`)
/// keeps `AdamGnn` free of heap indirection and lets tests and ablations
/// reach the concrete operator's parameters.
pub enum PoolingOp {
    AdamGnn(AdamGnnPooling),
    Asap(AsapPooling),
    SpaPool(SpaPoolPooling),
}

impl PoolingOp {
    /// Build the operator `cfg.pooling` selects, registering its
    /// parameters in `store`.
    pub fn build(store: &mut ParamStore, cfg: &AdamGnnConfig, rng: &mut StdRng) -> PoolingOp {
        match cfg.pooling {
            PoolingKind::AdamGnn => PoolingOp::AdamGnn(AdamGnnPooling::new(store, *cfg, rng)),
            PoolingKind::Asap => PoolingOp::Asap(AsapPooling::new(store, cfg.hidden, rng)),
            PoolingKind::SpaPool => PoolingOp::SpaPool(SpaPoolPooling::new(store, cfg.hidden, rng)),
        }
    }

    /// The operator as its trait object.
    pub fn as_dyn(&self) -> &dyn Pooling {
        match self {
            PoolingOp::AdamGnn(p) => p,
            PoolingOp::Asap(p) => p,
            PoolingOp::SpaPool(p) => p,
        }
    }

    /// Which [`PoolingKind`] is live.
    pub fn kind(&self) -> PoolingKind {
        self.as_dyn().kind()
    }
}

// ---------------------------------------------------------------------
// AdamGNN (the paper's operator, extracted verbatim from forward_inner)
// ---------------------------------------------------------------------

/// AdamGNN's adaptive pooling: per-pair fitness φ (Eq. 2), strict-local-
/// maximum ego selection, weighted hyper-node formation matrix `S_k`,
/// and attention-initialised hyper-node features (Eq. 3).
pub struct AdamGnnPooling {
    cfg: AdamGnnConfig,
    /// Fitness attention (Eq. 2).
    pub fit: AttentionParams,
    /// Hyper-node feature-initialisation attention (Eq. 3).
    pub init_att: AttentionParams,
}

impl AdamGnnPooling {
    /// Registers `adam.fit` then `adam.init` — the same order (and so
    /// the same RNG draws) as the pre-trait model constructor.
    pub fn new(store: &mut ParamStore, cfg: AdamGnnConfig, rng: &mut StdRng) -> Self {
        AdamGnnPooling {
            cfg,
            fit: AttentionParams::new(store, "adam.fit", cfg.hidden, rng),
            init_att: AttentionParams::new(store, "adam.init", cfg.hidden, rng),
        }
    }

    /// Hyper-node feature initialisation (Eq. 3): ego representation plus
    /// the attention-weighted members' representations.
    fn hyper_features(
        &self,
        tape: &Tape,
        bind: &Binding,
        plan: &crate::structure::SPlan,
        phi: Var,
        h_prev: Var,
    ) -> Var {
        let m = plan.m();
        let base = tape.gather_rows(h_prev, Rc::new(plan.col_base.clone()));
        if plan.member_pairs.is_empty() {
            return base;
        }
        let members: Rc<Vec<usize>> =
            Rc::new(plan.member_pairs.iter().map(|&(j, _, _)| j).collect());
        let ego_cols: Rc<Vec<usize>> =
            Rc::new(plan.member_pairs.iter().map(|&(_, c, _)| c).collect());
        let pair_ks: Rc<Vec<usize>> =
            Rc::new(plan.member_pairs.iter().map(|&(_, _, k)| k).collect());
        let ego_nodes: Rc<Vec<usize>> = Rc::new(
            plan.member_pairs
                .iter()
                .map(|&(_, c, _)| plan.col_base[c])
                .collect(),
        );

        let h_mem = tape.gather_rows(h_prev, members);
        let phi_sel = tape.gather_rows(phi, pair_ks);
        // score = a₁ᵀ σ(W (φ_ij h_j)) + a₂ᵀ σ(h_i)
        let scaled = tape.mul_col(h_mem, phi_sel);
        let u = tape.leaky_relu(tape.matmul(scaled, bind.var(self.init_att.w)), ATT_SLOPE);
        let s_lhs = tape.matmul(u, bind.var(self.init_att.a_lhs));
        let rhs_nodes = tape.matmul(
            tape.leaky_relu(h_prev, ATT_SLOPE),
            bind.var(self.init_att.a_rhs),
        );
        let s_rhs = tape.gather_rows(rhs_nodes, ego_nodes);
        let e = tape.add(s_lhs, s_rhs);
        let alpha = tape.segment_softmax(e, ego_cols.clone(), m);
        let weighted = tape.mul_col(h_mem, alpha);
        let contrib = tape.segment_sum(weighted, ego_cols, m);
        tape.add(base, contrib)
    }
}

impl Pooling for AdamGnnPooling {
    fn kind(&self) -> PoolingKind {
        PoolingKind::AdamGnn
    }

    fn pool_level(
        &self,
        tape: &Tape,
        bind: &Binding,
        _k: usize,
        level_gcn: &GcnLayer,
        state: &mut PoolState,
        ckpt: bool,
        frozen: Option<&FrozenLevel>,
    ) -> Option<PoolLevelOutput> {
        let topo = state.topo.clone();
        let n_prev = topo.n();
        let pairs = EgoPairs::build(&topo, self.cfg.lambda);
        if pairs.is_empty() {
            return None;
        }
        // per-pair fitness φ (differentiable); its attention
        // intermediates (per-pair gathers of h) dominate the level's
        // tape footprint, so they recompute on backward.
        let fit_scope = ckpt.then(|| tape.begin_checkpoint());
        let phi = pair_fitness_with(
            tape,
            bind,
            &self.fit,
            &pairs,
            state.h_prev,
            n_prev,
            self.cfg.linearity,
        );
        if let Some(scope) = fit_scope {
            tape.end_checkpoint(scope, &[phi]);
        }
        let phi_data: Vec<f64> = tape.value(phi).data().to_vec();
        // adaptive ego selection (discrete; pinned on frozen replays)
        let egos = match frozen {
            Some(fl) => fl.egos.clone(),
            None => {
                let ego_phi = ego_fitness(&pairs, &phi_data, n_prev);
                select_egos(&topo, &ego_phi)
            }
        };
        if egos.is_empty() {
            return None; // all-tied fitness: no strict local maximum
        }
        let plan = build_s_plan(&topo, &pairs, &phi_data, self.cfg.lambda, &egos);
        // pooling block: S_k assembly, hyper features, the level GCN
        // and the unpool chain. Only its three outputs stay resident.
        let pool_scope = ckpt.then(|| tape.begin_checkpoint());
        // S_k values on the tape: φ entries + constant ones
        let phi_ext = with_unit_row(tape, phi);
        let gather_idx: Vec<usize> = plan
            .sources
            .iter()
            .map(|s| match s {
                ValueSource::Pair(p) => *p,
                ValueSource::One => pairs.len(),
            })
            .collect();
        let s_col = tape.gather_rows(phi_ext, Rc::new(gather_idx));
        let s_vals = tape.reshape(s_col, 1, plan.csr.nnz());
        let s_csr = Rc::new(plan.csr.clone());

        // hyper-node features (Eq. 3)
        let x_next = self.hyper_features(tape, bind, &plan, phi, state.h_prev);

        // hyper-graph connectivity A_k = S_kᵀ Â_{k-1} S_k (detached;
        // pinned on frozen replays)
        let (norm, next_topo) = match frozen {
            Some(fl) => (fl.norm.clone(), fl.next_topo.clone()),
            None => coarsen_adjacency(tape, &s_csr, s_vals, &mut state.weighted),
        };

        // GCN on the hyper-graph, then unpool (Section 3.3)
        let (h_k, up) = level_gcn_and_unpool(
            tape,
            bind,
            level_gcn,
            &norm,
            x_next,
            (&s_csr, s_vals),
            state,
        );
        if let Some(scope) = pool_scope {
            tape.end_checkpoint(scope, &[s_vals, h_k, up]);
        }

        let level = LevelState {
            s_csr,
            s_vals,
            egos: egos.clone(),
            size: plan.m(),
            col_base: plan.col_base.clone(),
        };
        let frozen_level = FrozenLevel {
            egos,
            norm,
            next_topo: next_topo.clone(),
        };
        state.topo = next_topo;
        state.h_prev = h_k;
        Some(PoolLevelOutput {
            level,
            frozen: frozen_level,
            unpooled: up,
            aux: None,
        })
    }
}

// ---------------------------------------------------------------------
// ASAP (Ranjan et al., AAAI'20)
// ---------------------------------------------------------------------

/// ASAP: every node centres a 1-hop cluster whose representation is an
/// intra-cluster attention over the members (Master2Token); clusters are
/// scored by LEConv and the top half survive. Cluster membership weights
/// times the survivor's gate become `S_k`'s entries.
///
/// Frozen-structure obligations: the top-half selection is discrete and
/// pinned via [`FrozenLevel::egos`]; LEConv runs on `A + I` with unit
/// weights derived from the (pinned) topology, so a frozen replay
/// rebuilds exactly the adjacency the recording used while the attention
/// and gates recompute differentiably.
pub struct AsapPooling {
    /// Intra-cluster attention (Master2Token-style).
    pub att: AttentionParams,
    /// LEConv weights: `score = deg ⊙ (xW₁) − Â(xW₂) + xW₃`.
    pub le1: ParamId,
    pub le2: ParamId,
    pub le3: ParamId,
}

impl AsapPooling {
    /// Registers `asap.att.{w,a_lhs,a_rhs}` then `asap.le{1,2,3}`.
    pub fn new(store: &mut ParamStore, hidden: usize, rng: &mut StdRng) -> Self {
        AsapPooling {
            att: AttentionParams::new(store, "asap.att", hidden, rng),
            le1: store.add("asap.le1", Matrix::glorot(hidden, 1, rng)),
            le2: store.add("asap.le2", Matrix::glorot(hidden, 1, rng)),
            le3: store.add("asap.le3", Matrix::glorot(hidden, 1, rng)),
        }
    }
}

impl Pooling for AsapPooling {
    fn kind(&self) -> PoolingKind {
        PoolingKind::Asap
    }

    fn pool_level(
        &self,
        tape: &Tape,
        bind: &Binding,
        _k: usize,
        level_gcn: &GcnLayer,
        state: &mut PoolState,
        ckpt: bool,
        frozen: Option<&FrozenLevel>,
    ) -> Option<PoolLevelOutput> {
        let topo = state.topo.clone();
        let n_prev = topo.n();
        // cluster membership: node i's cluster is {i} ∪ N(i); pairs are
        // (member, centre), grouped contiguously per centre.
        let mut members_raw: Vec<usize> = Vec::new();
        let mut centers_raw: Vec<usize> = Vec::new();
        let mut first_pair: Vec<usize> = Vec::with_capacity(n_prev + 1);
        for i in 0..n_prev {
            first_pair.push(members_raw.len());
            members_raw.push(i);
            centers_raw.push(i);
            for j in topo.neighbors(i) {
                members_raw.push(j);
                centers_raw.push(i);
            }
        }
        first_pair.push(members_raw.len());
        if members_raw.is_empty() {
            return None;
        }
        let members = Rc::new(members_raw);
        let centers = Rc::new(centers_raw);

        // intra-cluster attention → cluster representations x_all
        let att_scope = ckpt.then(|| tape.begin_checkpoint());
        let h_mem = tape.gather_rows(state.h_prev, members.clone());
        let u = tape.leaky_relu(tape.matmul(h_mem, bind.var(self.att.w)), ATT_SLOPE);
        let e_lhs = tape.matmul(u, bind.var(self.att.a_lhs));
        let rhs_nodes = tape.matmul(
            tape.leaky_relu(state.h_prev, ATT_SLOPE),
            bind.var(self.att.a_rhs),
        );
        let e_rhs = tape.gather_rows(rhs_nodes, centers.clone());
        let e = tape.add(e_lhs, e_rhs);
        let alpha = tape.segment_softmax(e, centers.clone(), n_prev);
        let x_all = tape.segment_sum(tape.mul_col(h_mem, alpha), centers.clone(), n_prev);

        // LEConv cluster fitness on A + I with unit weights — derived
        // from the pinned topology so frozen replays rebuild it exactly.
        let unit = vec![1.0; topo.adj().nnz()];
        let (a_csr, a_vals) = add_unit_diag(topo.adj(), &unit);
        let a_csr = Rc::new(a_csr);
        let a_const = tape.constant(Matrix::from_vec(1, a_vals.len(), a_vals));
        let deg = tape.constant(Matrix::from_vec(
            n_prev,
            1,
            (0..n_prev).map(|i| (topo.degree(i) + 1) as f64).collect(),
        ));
        let t1 = tape.mul_col(tape.matmul(x_all, bind.var(self.le1)), deg);
        let t2 = tape.spmm(a_csr, a_const, tape.matmul(x_all, bind.var(self.le2)));
        let t3 = tape.matmul(x_all, bind.var(self.le3));
        let score = tape.add(tape.sub(t1, t2), t3);
        let gate = tape.sigmoid(score);
        // host read before the scope closes (detached: selection only)
        let score_data: Vec<f64> = tape.value(score).data().to_vec();
        if let Some(scope) = att_scope {
            tape.end_checkpoint(scope, &[alpha, x_all, gate]);
        }

        // top-⌈n/2⌉ clusters by score (discrete; pinned on frozen replays)
        let egos: Vec<usize> = match frozen {
            Some(fl) => fl.egos.clone(),
            None => {
                let keep = n_prev.div_ceil(2);
                let mut idx: Vec<usize> = (0..n_prev).collect();
                idx.sort_by(|&a, &b| score_data[b].total_cmp(&score_data[a]).then(a.cmp(&b)));
                let mut sel: Vec<usize> = idx.into_iter().take(keep).collect();
                sel.sort_unstable();
                sel
            }
        };
        if egos.is_empty() {
            return None;
        }
        let m = egos.len();

        // S_k: column c holds cluster egos[c]'s membership weights
        // α_(j,ego) · gate_ego
        let mut entries: Vec<(u32, u32)> = Vec::new();
        let mut pair_of: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        for (c, &ego) in egos.iter().enumerate() {
            for p in first_pair[ego]..first_pair[ego + 1] {
                let r = members[p];
                entries.push((r as u32, c as u32));
                pair_of.insert((r as u32, c as u32), p);
            }
        }
        let s_csr = Rc::new(Csr::from_coo(n_prev, m, &entries));

        let pool_scope = ckpt.then(|| tape.begin_checkpoint());
        let order: Vec<usize> = s_csr
            .iter()
            .map(|(r, c, _)| pair_of[&(r as u32, c as u32)])
            .collect();
        let gate_idx: Vec<usize> = s_csr.iter().map(|(_, c, _)| egos[c]).collect();
        let a_sel = tape.gather_rows(alpha, Rc::new(order));
        let g_sel = tape.gather_rows(gate, Rc::new(gate_idx));
        let s_col = tape.mul_elem(a_sel, g_sel);
        let s_vals = tape.reshape(s_col, 1, s_csr.nnz());

        // surviving clusters' representations, gated
        let egos_rc = Rc::new(egos.clone());
        let x_next = tape.mul_col(
            tape.gather_rows(x_all, egos_rc.clone()),
            tape.gather_rows(gate, egos_rc),
        );

        let (norm, next_topo) = match frozen {
            Some(fl) => (fl.norm.clone(), fl.next_topo.clone()),
            None => coarsen_adjacency(tape, &s_csr, s_vals, &mut state.weighted),
        };
        let (h_k, up) = level_gcn_and_unpool(
            tape,
            bind,
            level_gcn,
            &norm,
            x_next,
            (&s_csr, s_vals),
            state,
        );
        if let Some(scope) = pool_scope {
            tape.end_checkpoint(scope, &[s_vals, h_k, up]);
        }

        let level = LevelState {
            s_csr,
            s_vals,
            egos: egos.clone(),
            size: m,
            col_base: egos.clone(),
        };
        let frozen_level = FrozenLevel {
            egos,
            norm,
            next_topo: next_topo.clone(),
        };
        state.topo = next_topo;
        state.h_prev = h_k;
        Some(PoolLevelOutput {
            level,
            frozen: frozen_level,
            unpooled: up,
            aux: None,
        })
    }
}

// ---------------------------------------------------------------------
// SpaPool (soft partition assignment onto anchor nodes)
// ---------------------------------------------------------------------

/// SpaPool: score-selected anchor nodes become the coarse vertices and
/// every node is softly assigned to all anchors through a scaled
/// query/key softmax — a dense differentiable `S_k` (DiffPool-style but
/// with data-dependent anchors instead of a fixed cluster count).
///
/// Frozen-structure obligations: the anchor set is discrete and pinned
/// via [`FrozenLevel::egos`]; the soft assignment, anchor gates and the
/// assignment-entropy auxiliary loss recompute differentiably.
pub struct SpaPoolPooling {
    /// Query projection.
    pub wq: ParamId,
    /// Key projection.
    pub wk: ParamId,
    /// Anchor score vector.
    pub score: ParamId,
    hidden: usize,
}

impl SpaPoolPooling {
    /// Registers `spapool.wq`, `spapool.wk`, `spapool.score`.
    pub fn new(store: &mut ParamStore, hidden: usize, rng: &mut StdRng) -> Self {
        SpaPoolPooling {
            wq: store.add("spapool.wq", Matrix::glorot(hidden, hidden, rng)),
            wk: store.add("spapool.wk", Matrix::glorot(hidden, hidden, rng)),
            score: store.add("spapool.score", Matrix::glorot(hidden, 1, rng)),
            hidden,
        }
    }
}

impl Pooling for SpaPoolPooling {
    fn kind(&self) -> PoolingKind {
        PoolingKind::SpaPool
    }

    fn pool_level(
        &self,
        tape: &Tape,
        bind: &Binding,
        _k: usize,
        level_gcn: &GcnLayer,
        state: &mut PoolState,
        ckpt: bool,
        frozen: Option<&FrozenLevel>,
    ) -> Option<PoolLevelOutput> {
        let n_prev = state.topo.n();
        if n_prev == 0 {
            return None;
        }
        let scope = ckpt.then(|| tape.begin_checkpoint());
        let score = tape.matmul(state.h_prev, bind.var(self.score)); // n x 1
                                                                     // host read before the scope closes (detached: selection only)
        let score_data: Vec<f64> = tape.value(score).data().to_vec();
        // top-⌈n/2⌉ anchors (discrete; pinned on frozen replays)
        let egos: Vec<usize> = match frozen {
            Some(fl) => fl.egos.clone(),
            None => {
                let keep = n_prev.div_ceil(2);
                let mut idx: Vec<usize> = (0..n_prev).collect();
                idx.sort_by(|&a, &b| score_data[b].total_cmp(&score_data[a]).then(a.cmp(&b)));
                let mut sel: Vec<usize> = idx.into_iter().take(keep).collect();
                sel.sort_unstable();
                sel
            }
        };
        if egos.is_empty() {
            return None;
        }
        let m = egos.len();
        let egos_rc = Rc::new(egos.clone());

        // soft assignment S = softmax(Q K_anchorᵀ / √d)  (n x m)
        let q = tape.matmul(state.h_prev, bind.var(self.wq));
        let k_all = tape.matmul(state.h_prev, bind.var(self.wk));
        let k_sel = tape.gather_rows(k_all, egos_rc.clone());
        let logits = tape.matmul(q, tape.transpose(k_sel));
        let scaled = tape.scale(logits, 1.0 / (self.hidden as f64).sqrt());
        let s_soft = tape.softmax_rows(scaled);
        // assignment-entropy auxiliary loss: mean(p ln p) is ≤ 0, so the
        // negative scale adds +H(S)·w to the objective, sharpening the
        // partition; ε guards ln(0).
        let plogp = tape.mul_elem(s_soft, tape.ln(tape.add_scalar(s_soft, 1e-12)));
        let aux = tape.scale(tape.mean_all(plogp), -SPAPOOL_ENTROPY_WEIGHT);

        // dense-pattern CSR: values are s_soft row-major, which is
        // exactly the CSR storage order of the full n x m pattern.
        let mut entries: Vec<(u32, u32)> = Vec::with_capacity(n_prev * m);
        for r in 0..n_prev {
            for c in 0..m {
                entries.push((r as u32, c as u32));
            }
        }
        let s_csr = Rc::new(Csr::from_coo(n_prev, m, &entries));
        let s_vals = tape.reshape(s_soft, 1, n_prev * m);

        // pooled features: SᵀH, gated by the anchors' scores
        let gates = tape.sigmoid(tape.gather_rows(score, egos_rc));
        let x_next = tape.mul_col(tape.spmm_t(s_csr.clone(), s_vals, state.h_prev), gates);

        let (norm, next_topo) = match frozen {
            Some(fl) => (fl.norm.clone(), fl.next_topo.clone()),
            None => coarsen_adjacency(tape, &s_csr, s_vals, &mut state.weighted),
        };
        let (h_k, up) = level_gcn_and_unpool(
            tape,
            bind,
            level_gcn,
            &norm,
            x_next,
            (&s_csr, s_vals),
            state,
        );
        if let Some(scope) = scope {
            tape.end_checkpoint(scope, &[s_vals, h_k, up, aux]);
        }

        let level = LevelState {
            s_csr,
            s_vals,
            egos: egos.clone(),
            size: m,
            col_base: egos.clone(),
        };
        let frozen_level = FrozenLevel {
            egos,
            norm,
            next_topo: next_topo.clone(),
        };
        state.topo = next_topo;
        state.h_prev = h_k;
        Some(PoolLevelOutput {
            level,
            frozen: frozen_level,
            unpooled: up,
            aux: Some(aux),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for kind in PoolingKind::ALL {
            assert_eq!(PoolingKind::from_name(kind.name()), Some(kind));
            assert_eq!(
                PoolingKind::from_discriminant(kind.discriminant()),
                Some(kind)
            );
        }
        assert_eq!(PoolingKind::from_name("nope"), None);
        assert_eq!(PoolingKind::from_discriminant(250), None);
        assert_eq!(PoolingKind::default(), PoolingKind::AdamGnn);
    }

    #[test]
    fn build_selects_the_configured_operator() {
        use rand::SeedableRng;
        for kind in PoolingKind::ALL {
            let mut store = ParamStore::new();
            let mut cfg = AdamGnnConfig::new(4, 8, 1);
            cfg.pooling = kind;
            let op = PoolingOp::build(&mut store, &cfg, &mut StdRng::seed_from_u64(7));
            assert_eq!(op.kind(), kind);
        }
    }

    #[test]
    fn operator_parameters_are_namespaced() {
        use rand::SeedableRng;
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(4, 8, 1);
        cfg.pooling = PoolingKind::Asap;
        let _ = PoolingOp::build(&mut store, &cfg, &mut StdRng::seed_from_u64(7));
        let names: Vec<String> = store
            .param_ids()
            .into_iter()
            .map(|p| store.name(p).to_string())
            .collect();
        assert!(names.iter().all(|n| n.starts_with("asap.")), "{names:?}");
    }
}

//! AdamGNN's training strategy (Section 3.5):
//! `L = L_task + γ L_KL + δ L_R`.
//!
//! * `L_KL` — DEC-style Student-t KL self-optimisation that sharpens
//!   ego-network membership (Eq. 5).
//! * `L_R` — adjacency reconstruction against over-smoothing (Eq. 6),
//!   realised as negative-sampled BCE over inner-product edge scores
//!   (identical in expectation to the full `σ(HHᵀ)` objective; see
//!   DESIGN.md).

use mg_graph::Topology;
use mg_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;
use rand::RngExt;
use std::rc::Rc;

/// Loss weights; the paper fixes `γ = 0.1`, `δ = 0.01` everywhere.
#[derive(Clone, Copy, Debug)]
pub struct LossWeights {
    pub gamma: f64,
    pub delta: f64,
}

impl Default for LossWeights {
    fn default() -> Self {
        LossWeights {
            gamma: 0.1,
            delta: 0.01,
        }
    }
}

/// `L_KL` (Eq. 5) on the final representations with the level-1 egos as
/// cluster centres. Returns a zero constant when no egos were selected.
pub fn kl_loss(tape: &Tape, h: Var, egos: &Rc<Vec<usize>>) -> Var {
    if egos.is_empty() {
        return tape.constant(Matrix::zeros(1, 1));
    }
    tape.student_t_kl(h, egos.clone())
}

/// `L_R` (Eq. 6): BCE over all observed edges plus an equal number of
/// freshly sampled non-edges.
pub fn reconstruction_loss(tape: &Tape, h: Var, graph: &Topology, rng: &mut StdRng) -> Var {
    let mut pairs: Vec<(usize, usize)> = graph
        .edges()
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let pos = pairs.len();
    if pos == 0 {
        return tape.constant(Matrix::zeros(1, 1));
    }
    let n = graph.n();
    let mut guard = 0;
    let mut neg = 0;
    while neg < pos && guard < 100 * pos {
        guard += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && !graph.has_edge(u, v) {
            pairs.push((u, v));
            neg += 1;
        }
    }
    let mut labels = vec![1.0; pos];
    labels.extend(std::iter::repeat_n(0.0, pairs.len() - pos));
    tape.bce_pairs(h, Rc::new(pairs), Rc::new(labels))
}

/// Compose `L = L_task + γ L_KL + δ L_R`.
pub fn total_loss(tape: &Tape, task: Var, kl: Var, recon: Var, weights: &LossWeights) -> Var {
    let with_kl = tape.add(task, tape.scale(kl, weights.gamma));
    tape.add(with_kl, tape.scale(recon, weights.delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ring(n: usize) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn kl_loss_zero_without_egos() {
        let tape = Tape::new();
        let h = tape.constant(Matrix::eye(4));
        let loss = kl_loss(&tape, h, &Rc::new(vec![]));
        assert_eq!(tape.value(loss).scalar(), 0.0);
    }

    #[test]
    fn kl_loss_nonnegative_with_egos() {
        let tape = Tape::new();
        let h = tape.constant(Matrix::from_fn(6, 3, |i, j| ((i + j) % 3) as f64));
        let loss = kl_loss(&tape, h, &Rc::new(vec![0, 3]));
        assert!(tape.value(loss).scalar() >= 0.0);
    }

    #[test]
    fn reconstruction_loss_prefers_structured_embeddings() {
        let g = ring(12);
        // embeddings where adjacent nodes have high inner product
        let good = Matrix::from_fn(12, 4, |i, j| {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / 12.0;
            match j {
                0 => 3.0 * angle.cos(),
                1 => 3.0 * angle.sin(),
                _ => 0.0,
            }
        });
        let bad = Matrix::from_fn(12, 4, |i, j| {
            // random-ish, structure-free
            (((i * 31 + j * 17) % 7) as f64 - 3.0) / 3.0
        });
        let eval = |m: &Matrix| {
            let tape = Tape::new();
            let h = tape.constant(m.clone());
            let mut rng = StdRng::seed_from_u64(3);
            let loss = reconstruction_loss(&tape, h, &g, &mut rng);
            let v = tape.value(loss).scalar();
            v
        };
        assert!(
            eval(&good) < eval(&bad),
            "structured embedding must reconstruct better"
        );
    }

    #[test]
    fn total_loss_weighted_sum() {
        let tape = Tape::new();
        let task = tape.constant(Matrix::full(1, 1, 2.0));
        let kl = tape.constant(Matrix::full(1, 1, 10.0));
        let recon = tape.constant(Matrix::full(1, 1, 100.0));
        let total = total_loss(&tape, task, kl, recon, &LossWeights::default());
        assert!((tape.value(total).scalar() - (2.0 + 1.0 + 1.0)).abs() < 1e-12);
    }
}

//! AdamGNN's training strategy (Section 3.5):
//! `L = L_task + γ L_KL + δ L_R`.
//!
//! * `L_KL` — DEC-style Student-t KL self-optimisation that sharpens
//!   ego-network membership (Eq. 5).
//! * `L_R` — adjacency reconstruction against over-smoothing (Eq. 6),
//!   realised as negative-sampled BCE over inner-product edge scores
//!   (identical in expectation to the full `σ(HHᵀ)` objective; see
//!   DESIGN.md).

use crate::faults;
use mg_graph::Topology;
use mg_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// Loss weights; the paper fixes `γ = 0.1`, `δ = 0.01` everywhere.
#[derive(Clone, Copy, Debug)]
pub struct LossWeights {
    pub gamma: f64,
    pub delta: f64,
}

impl Default for LossWeights {
    fn default() -> Self {
        LossWeights {
            gamma: 0.1,
            delta: 0.01,
        }
    }
}

/// `L_KL` (Eq. 5) on the final representations with the level-1 egos as
/// cluster centres. Returns a zero constant when no egos were selected.
pub fn kl_loss(tape: &Tape, h: Var, egos: &Rc<Vec<usize>>) -> Var {
    if egos.is_empty() {
        return tape.constant(Matrix::zeros(1, 1));
    }
    tape.student_t_kl(h, egos.clone())
}

/// [`kl_loss`] with the DEC target `P` pinned to a reference recording
/// instead of re-derived from the current embedding.
///
/// The production op detaches `P` in backward (standard DEC), so its
/// analytic gradient belongs to the P-frozen objective — this variant
/// *is* that objective, which is what the mg-verify gradient audit must
/// central-difference.
pub fn kl_loss_with_target(tape: &Tape, h: Var, egos: &Rc<Vec<usize>>, target: Rc<Matrix>) -> Var {
    if egos.is_empty() {
        return tape.constant(Matrix::zeros(1, 1));
    }
    tape.student_t_kl_with_target(h, egos.clone(), target)
}

/// A pre-sampled set of (pair, label) supervision for `L_R` (Eq. 6):
/// every observed edge as a positive plus an equal number of sampled
/// non-edges as negatives.
///
/// Lifting the negative sampling out of [`reconstruction_loss`] gives
/// verification code a reconstruction term that is a *pure function* of
/// the embedding — central-difference gradient checking re-evaluates the
/// loss many times and every evaluation must see the same negatives.
#[derive(Clone, Debug)]
pub struct ReconPlan {
    pairs: Rc<Vec<(usize, usize)>>,
    labels: Rc<Vec<f64>>,
}

impl ReconPlan {
    /// Sample a plan from a dedicated seed (the deterministic entry point
    /// used by mg-verify).
    pub fn sample(graph: &Topology, seed: u64) -> Self {
        Self::from_rng(graph, &mut StdRng::seed_from_u64(seed))
    }

    /// Sample a plan by drawing negatives from an existing stream, with
    /// exactly the draw order the pre-plan `reconstruction_loss` used.
    pub fn from_rng(graph: &Topology, rng: &mut StdRng) -> Self {
        let mut pairs: Vec<(usize, usize)> = graph
            .edges()
            .iter()
            .map(|&(u, v)| (u as usize, v as usize))
            .collect();
        let pos = pairs.len();
        if pos > 0 {
            let n = graph.n();
            let mut guard = 0;
            let mut neg = 0;
            while neg < pos && guard < 100 * pos {
                guard += 1;
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v && !graph.has_edge(u, v) {
                    pairs.push((u, v));
                    neg += 1;
                }
            }
        }
        let mut labels = vec![1.0; pos];
        labels.extend(std::iter::repeat_n(0.0, pairs.len() - pos));
        ReconPlan {
            pairs: Rc::new(pairs),
            labels: Rc::new(labels),
        }
    }

    /// Number of supervised pairs (positives + negatives).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the graph had no edges (the loss degenerates to zero).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The supervised (i, j) pairs, positives first.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Map the plan through a node relabelling (metamorphic testing:
    /// `L_R` on a permuted graph must equal `L_R` on the original when
    /// the plan is permuted the same way).
    pub fn relabel(&self, perm: &[usize]) -> Self {
        ReconPlan {
            pairs: Rc::new(
                self.pairs
                    .iter()
                    .map(|&(u, v)| (perm[u], perm[v]))
                    .collect(),
            ),
            labels: self.labels.clone(),
        }
    }
}

/// `L_R` (Eq. 6): BCE over all observed edges plus an equal number of
/// freshly sampled non-edges.
pub fn reconstruction_loss(tape: &Tape, h: Var, graph: &Topology, rng: &mut StdRng) -> Var {
    reconstruction_loss_planned(tape, h, &ReconPlan::from_rng(graph, rng))
}

/// `L_R` over a pre-sampled [`ReconPlan`] — deterministic given the plan.
pub fn reconstruction_loss_planned(tape: &Tape, h: Var, plan: &ReconPlan) -> Var {
    if plan.is_empty() {
        return tape.constant(Matrix::zeros(1, 1));
    }
    tape.bce_pairs(h, plan.pairs.clone(), plan.labels.clone())
}

/// Compose `L = L_task + γ L_KL + δ L_R`.
pub fn total_loss(tape: &Tape, task: Var, kl: Var, recon: Var, weights: &LossWeights) -> Var {
    let with_kl = tape.add(task, tape.scale(kl, weights.gamma));
    // recon_sign() is +1 except under the verification fault hook, which
    // flips L_R's contribution to prove the audit catches composition bugs.
    tape.add(
        with_kl,
        tape.scale(recon, weights.delta * faults::recon_sign()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ring(n: usize) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn kl_loss_zero_without_egos() {
        let tape = Tape::new();
        let h = tape.constant(Matrix::eye(4));
        let loss = kl_loss(&tape, h, &Rc::new(vec![]));
        assert_eq!(tape.value(loss).scalar(), 0.0);
    }

    #[test]
    fn kl_loss_nonnegative_with_egos() {
        let tape = Tape::new();
        let h = tape.constant(Matrix::from_fn(6, 3, |i, j| ((i + j) % 3) as f64));
        let loss = kl_loss(&tape, h, &Rc::new(vec![0, 3]));
        assert!(tape.value(loss).scalar() >= 0.0);
    }

    #[test]
    fn reconstruction_loss_prefers_structured_embeddings() {
        let g = ring(12);
        // embeddings where adjacent nodes have high inner product
        let good = Matrix::from_fn(12, 4, |i, j| {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / 12.0;
            match j {
                0 => 3.0 * angle.cos(),
                1 => 3.0 * angle.sin(),
                _ => 0.0,
            }
        });
        let bad = Matrix::from_fn(12, 4, |i, j| {
            // random-ish, structure-free
            (((i * 31 + j * 17) % 7) as f64 - 3.0) / 3.0
        });
        let eval = |m: &Matrix| {
            let tape = Tape::new();
            let h = tape.constant(m.clone());
            let mut rng = StdRng::seed_from_u64(3);
            let loss = reconstruction_loss(&tape, h, &g, &mut rng);
            let v = tape.value(loss).scalar();
            v
        };
        assert!(
            eval(&good) < eval(&bad),
            "structured embedding must reconstruct better"
        );
    }

    #[test]
    fn total_loss_weighted_sum() {
        let tape = Tape::new();
        let task = tape.constant(Matrix::full(1, 1, 2.0));
        let kl = tape.constant(Matrix::full(1, 1, 10.0));
        let recon = tape.constant(Matrix::full(1, 1, 100.0));
        let total = total_loss(&tape, task, kl, recon, &LossWeights::default());
        assert!((tape.value(total).scalar() - (2.0 + 1.0 + 1.0)).abs() < 1e-12);
    }
}

//! Seeded, deterministic loss decomposition — the mg-verify entry point.
//!
//! The training loops assemble `L = L_task + γ L_KL + δ L_R` inline and
//! only ever look at the composed scalar. Verification needs more: each
//! term as its own tape variable (so their values can be compared against
//! an independently composed total) with **no hidden randomness** (so the
//! whole loss is a pure function of the parameters, as central-difference
//! gradient checking requires). Eval-mode forward draws nothing from the
//! RNG and negative sampling is lifted into a pre-sampled
//! [`ReconPlan`], which together make that hold.

use crate::gc::AdamGnnNode;
use crate::loss::{
    kl_loss, kl_loss_with_target, reconstruction_loss_planned, total_loss, LossWeights, ReconPlan,
};
use crate::model::{AdamGnnOutput, FrozenStructure};
use mg_nn::GraphCtx;
use mg_tensor::{student_t_target, Binding, Matrix, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Every term of the composite objective as a live tape variable.
pub struct LossBreakdown {
    /// `L_task` — masked cross-entropy over the supervised nodes.
    pub task: Var,
    /// `L_KL` (Eq. 5) — unweighted.
    pub kl: Var,
    /// `L_R` (Eq. 6) over the pre-sampled plan — unweighted.
    pub recon: Var,
    /// Operator-specific auxiliary term, already at its final weight
    /// (e.g. SpaPool's assignment entropy); `None` for operators
    /// without one.
    pub aux: Option<Var>,
    /// The objective as the production code composes it:
    /// `total_loss(task, kl, recon)` plus `aux` when present.
    pub total: Var,
}

/// Run a deterministic eval-mode forward of `model` and build the full
/// three-term objective with every term exposed.
///
/// Deterministic: the forward runs in eval mode (dropout disabled, no RNG
/// draws) and the reconstruction negatives come from `plan`, so repeated
/// calls with the same parameter binding produce identical values — and a
/// gradcheck driver may call it once per perturbed parameter entry.
#[allow(clippy::too_many_arguments)]
pub fn decomposed_loss(
    tape: &Tape,
    bind: &Binding,
    model: &AdamGnnNode,
    ctx: &GraphCtx,
    targets: &Rc<Vec<usize>>,
    nodes: &Rc<Vec<usize>>,
    plan: &ReconPlan,
    weights: &LossWeights,
) -> (LossBreakdown, AdamGnnOutput) {
    // Eval-mode forward performs no RNG draws; the stream is only here to
    // satisfy the signature.
    let mut rng = StdRng::seed_from_u64(0);
    let (logits, out) = model.forward_full(tape, bind, ctx, false, &mut rng);
    assemble(tape, logits, out, targets, nodes, plan, weights, None)
}

/// Everything that must be pinned so the composite objective becomes the
/// exact fixed-structure function the backward pass differentiates:
/// the discrete/detached pooling structure, plus the DEC target `P`
/// (detached inside `student_t_kl`, standard DEC).
pub struct LossFreeze {
    pub structure: FrozenStructure,
    /// Frozen target `P` at the reference parameters; `None` when no
    /// level pooled (the KL term is a constant zero).
    pub kl_target: Option<Rc<Matrix>>,
}

/// Record a [`LossFreeze`] at the current parameters via one eval-mode
/// reference forward.
pub fn record_loss_freeze(
    tape: &Tape,
    bind: &Binding,
    model: &AdamGnnNode,
    ctx: &GraphCtx,
) -> LossFreeze {
    let (_, out, structure) = model.forward_full_recorded(tape, bind, ctx);
    let kl_target = if out.egos_l1.is_empty() {
        None
    } else {
        Some(Rc::new(student_t_target(&tape.value(out.h), &out.egos_l1)))
    };
    LossFreeze {
        structure,
        kl_target,
    }
}

/// [`decomposed_loss`] with the pooling structure and the DEC target `P`
/// pinned to a prior recording (see [`LossFreeze`]).
///
/// This is what the mg-verify gradient audit differences: ego selection
/// is piecewise-constant, `Â_k` is detached from the tape and `P` is
/// detached inside the KL op, so the frozen objective is the function
/// whose gradient the backward pass actually computes. Re-deriving any
/// of them under every ±ε perturbation would measure paths autograd
/// (correctly) ignores.
#[allow(clippy::too_many_arguments)]
pub fn decomposed_loss_frozen(
    tape: &Tape,
    bind: &Binding,
    model: &AdamGnnNode,
    ctx: &GraphCtx,
    targets: &Rc<Vec<usize>>,
    nodes: &Rc<Vec<usize>>,
    plan: &ReconPlan,
    weights: &LossWeights,
    freeze: &LossFreeze,
) -> (LossBreakdown, AdamGnnOutput) {
    let (logits, out) = model.forward_full_frozen(tape, bind, ctx, &freeze.structure);
    assemble(
        tape,
        logits,
        out,
        targets,
        nodes,
        plan,
        weights,
        freeze.kl_target.as_ref(),
    )
}

#[allow(clippy::too_many_arguments)]
fn assemble(
    tape: &Tape,
    logits: Var,
    out: AdamGnnOutput,
    targets: &Rc<Vec<usize>>,
    nodes: &Rc<Vec<usize>>,
    plan: &ReconPlan,
    weights: &LossWeights,
    kl_target: Option<&Rc<Matrix>>,
) -> (LossBreakdown, AdamGnnOutput) {
    let task = tape.cross_entropy(logits, targets.clone(), nodes.clone());
    let kl = match kl_target {
        Some(p) => kl_loss_with_target(tape, out.h, &out.egos_l1, p.clone()),
        None => kl_loss(tape, out.h, &out.egos_l1),
    };
    let recon = reconstruction_loss_planned(tape, out.h, plan);
    let mut total = total_loss(tape, task, kl, recon, weights);
    // operator-specific auxiliary term (None for the default operator,
    // keeping the pre-trait composition — and the goldens — unchanged)
    let aux = out.aux;
    if let Some(aux) = aux {
        total = tape.add(total, aux);
    }
    (
        LossBreakdown {
            task,
            kl,
            recon,
            aux,
            total,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AdamGnnConfig;
    use mg_nn::testkit::{seeds, two_community_ctx};
    use mg_tensor::ParamStore;

    fn fixture() -> (ParamStore, AdamGnnNode, GraphCtx, Vec<usize>) {
        let (ctx, labels) = two_community_ctx();
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(8, 12, 2);
        cfg.dropout = 0.0;
        let model = AdamGnnNode::new(&mut store, cfg, 2, &mut seeds::model_init());
        (store, model, ctx, labels)
    }

    #[test]
    fn decomposition_is_deterministic_and_consistent() {
        let (store, model, ctx, labels) = fixture();
        let targets = Rc::new(labels);
        let nodes = Rc::new((0..8).collect::<Vec<_>>());
        let plan = ReconPlan::sample(&ctx.graph, 11);
        let weights = LossWeights::default();
        let eval = || {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (b, _) = decomposed_loss(
                &tape, &bind, &model, &ctx, &targets, &nodes, &plan, &weights,
            );
            let vals = (
                tape.value(b.task).scalar(),
                tape.value(b.kl).scalar(),
                tape.value(b.recon).scalar(),
                tape.value(b.total).scalar(),
            );
            vals
        };
        let (t1, k1, r1, tot1) = eval();
        let (t2, k2, r2, tot2) = eval();
        // bitwise repeatable
        assert_eq!((t1, k1, r1, tot1), (t2, k2, r2, tot2));
        // and the total is exactly the production composition of the terms
        let expect = t1 + weights.gamma * k1 + weights.delta * r1;
        assert!(
            (tot1 - expect).abs() < 1e-12,
            "total {tot1} vs recomposed {expect}"
        );
    }

    #[test]
    fn recon_plan_is_seed_deterministic() {
        let (ctx, _) = two_community_ctx();
        let a = ReconPlan::sample(&ctx.graph, 11);
        let b = ReconPlan::sample(&ctx.graph, 11);
        assert_eq!(a.pairs(), b.pairs());
        let c = ReconPlan::sample(&ctx.graph, 12);
        // a different seed draws different negatives (positives identical)
        assert_eq!(
            a.pairs()[..ctx.graph.edges().len()],
            c.pairs()[..ctx.graph.edges().len()]
        );
    }
}

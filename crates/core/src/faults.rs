//! Deliberate fault injection for the verification harness.
//!
//! mg-verify has to demonstrate that its model-level audit catches real
//! composition bugs, not just crashes. The only way to prove that is to
//! *inject* one: this module lets a test flip the sign of `L_R`'s
//! contribution inside [`crate::loss::total_loss`] and assert the audit
//! reports the inconsistency. The hook is thread-local so concurrently
//! running tests cannot poison each other, and it costs one TLS read per
//! loss composition when disarmed.

use std::cell::Cell;

thread_local! {
    static FLIP_RECON_SIGN: Cell<bool> = const { Cell::new(false) };
}

/// Arm or disarm the `L_R` sign-flip fault for the current thread.
///
/// Prefer [`with_flipped_recon_sign`], which disarms on unwind.
pub fn set_flip_recon_sign(on: bool) {
    FLIP_RECON_SIGN.with(|f| f.set(on));
}

/// The sign applied to `δ · L_R` in `total_loss`: `-1.0` while the fault
/// is armed, `+1.0` otherwise.
pub fn recon_sign() -> f64 {
    if FLIP_RECON_SIGN.with(|f| f.get()) {
        -1.0
    } else {
        1.0
    }
}

/// Run `body` with the sign-flip fault armed, disarming it afterwards
/// even if `body` panics.
pub fn with_flipped_recon_sign<T>(body: impl FnOnce() -> T) -> T {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            set_flip_recon_sign(false);
        }
    }
    let _guard = Disarm;
    set_flip_recon_sign(true);
    body()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_defaults_to_positive_and_restores_after_scope() {
        assert_eq!(recon_sign(), 1.0);
        let inside = with_flipped_recon_sign(recon_sign);
        assert_eq!(inside, -1.0);
        assert_eq!(recon_sign(), 1.0);
    }

    #[test]
    fn sign_restores_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_flipped_recon_sign(|| panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(recon_sign(), 1.0);
    }
}

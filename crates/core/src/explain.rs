//! Explainability: AdamGNN's third contribution is explanations "in terms
//! of the scope of the graph" — for each node, which granularity level it
//! draws on (flyback attention β) and which region of the original graph
//! each of its hyper-nodes covers.

use crate::model::AdamGnnOutput;
use mg_tensor::{Csr, Tape};

/// Explanation of one node's multi-grained representation.
#[derive(Clone, Debug)]
pub struct NodeExplanation {
    /// The node being explained.
    pub node: usize,
    /// One entry per pooled level.
    pub levels: Vec<LevelExplanation>,
}

/// One granularity level's contribution to a node.
#[derive(Clone, Debug)]
pub struct LevelExplanation {
    /// Granularity level (1-based, as in the paper's figures).
    pub level: usize,
    /// Flyback attention weight β_k(v) — how much the node relies on this
    /// level's message (None when flyback is disabled).
    pub beta: f64,
    /// The hyper-node of this level the node belongs to most strongly.
    pub hyper_node: usize,
    /// Membership strength of that hyper-node (product of fitness scores
    /// along the S chain).
    pub membership: f64,
    /// The *scope*: original-graph nodes sharing that hyper-node — the
    /// region of the graph whose semantics the message summarises.
    pub scope: Vec<usize>,
}

impl AdamGnnOutput {
    /// Explain `node`'s representation: per level, its flyback attention,
    /// its strongest hyper-node and that hyper-node's scope in the
    /// original graph.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn explain(&self, tape: &Tape, node: usize) -> NodeExplanation {
        let beta = self.beta.map(|b| tape.value_cloned(b));
        if let Some(b) = &beta {
            assert!(node < b.rows(), "explain: node {node} out of range");
        }
        let mut levels = Vec::with_capacity(self.levels.len());
        // cumulative membership: original nodes x level-k hyper-nodes
        let mut cum: Option<(Csr, Vec<f64>)> = None;
        for (k, level) in self.levels.iter().enumerate() {
            let s_vals: Vec<f64> = tape.value(level.s_vals).data().to_vec();
            cum = Some(match cum {
                None => ((*level.s_csr).clone(), s_vals),
                Some((prev_csr, prev_vals)) => prev_csr.spgemm(&prev_vals, &level.s_csr, &s_vals),
            });
            let (csr, vals) = cum.as_ref().expect("just set");
            // strongest hyper-node of `node` at this level
            let range = csr.row_range(node);
            let (hyper_node, membership) = csr
                .row_indices(node)
                .iter()
                .zip(&vals[range])
                .map(|(&c, &v)| (c as usize, v))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .unwrap_or((usize::MAX, 0.0));
            // scope: all original nodes with membership in that hyper-node
            let scope: Vec<usize> = if hyper_node == usize::MAX {
                Vec::new()
            } else {
                (0..csr.rows())
                    .filter(|&r| {
                        csr.row_indices(r)
                            .binary_search(&(hyper_node as u32))
                            .is_ok()
                    })
                    .collect()
            };
            levels.push(LevelExplanation {
                level: k + 1,
                beta: beta.as_ref().map_or(0.0, |b| b[(node, k)]),
                hyper_node,
                membership,
                scope,
            });
        }
        NodeExplanation { node, levels }
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{AdamGnn, AdamGnnConfig};
    use mg_graph::Topology;
    use mg_nn::testkit::seeds;
    use mg_nn::GraphCtx;
    use mg_tensor::{Matrix, ParamStore, Tape};

    fn run() -> (Tape, ParamStore, AdamGnn, GraphCtx) {
        // two triangles bridged by a path node
        let g = Topology::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
            ],
        );
        let ctx = GraphCtx::new(g, Matrix::eye(7));
        let mut store = ParamStore::new();
        let mut cfg = AdamGnnConfig::new(7, 8, 2);
        cfg.dropout = 0.0;
        let model = AdamGnn::new(&mut store, cfg, &mut seeds::model_init_stable());
        (Tape::new(), store, model, ctx)
    }

    #[test]
    fn explanation_scopes_are_connected_regions() {
        let (tape, store, model, ctx) = run();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng_alt());
        assert!(!out.levels.is_empty());
        for node in 0..7 {
            let exp = out.explain(&tape, node);
            assert_eq!(exp.node, node);
            for le in &exp.levels {
                // the node itself is always inside its own scope
                assert!(le.scope.contains(&node), "node {node} outside its scope");
                assert!(le.membership > 0.0);
            }
        }
    }

    #[test]
    fn beta_in_explanation_matches_output() {
        let (tape, store, model, ctx) = run();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng_alt());
        let beta = out.beta.expect("flyback on");
        let bv = tape.value_cloned(beta);
        let exp = out.explain(&tape, 3);
        for le in &exp.levels {
            assert_eq!(le.beta, bv[(3, le.level - 1)]);
        }
    }

    #[test]
    fn level_scopes_grow_with_depth() {
        let (tape, store, model, ctx) = run();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng_alt());
        if out.levels.len() >= 2 {
            let exp = out.explain(&tape, 0);
            // deeper levels summarise at least as wide a region
            assert!(exp.levels[1].scope.len() >= exp.levels[0].scope.len());
        }
    }
}

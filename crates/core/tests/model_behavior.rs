//! Behavioural tests of the AdamGNN model: unpooling semantics, λ-radius
//! ego-networks, multi-level coarsening, and attention introspection.

use adamgnn_core::{AdamGnn, AdamGnnConfig};
use mg_graph::Topology;
use mg_nn::testkit::seeds;
use mg_nn::GraphCtx;
use mg_tensor::{Matrix, ParamStore, Tape};

/// A barbell: two 5-cliques joined by a path — strong two-community
/// structure with an obvious meso level.
fn barbell() -> GraphCtx {
    let mut edges = Vec::new();
    for base in [0u32, 6] {
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((4, 5));
    edges.push((5, 6));
    let n = 11;
    GraphCtx::new(Topology::from_edges(n, &edges), Matrix::eye(n))
}

fn model(levels: usize, lambda: usize) -> (ParamStore, AdamGnn) {
    let mut store = ParamStore::new();
    let mut cfg = AdamGnnConfig::new(11, 8, levels);
    cfg.lambda = lambda;
    cfg.dropout = 0.0;
    let m = AdamGnn::new(&mut store, cfg, &mut seeds::model_init_stable());
    (store, m)
}

#[test]
fn lambda2_ego_networks_pool_more_aggressively() {
    let ctx = barbell();
    let sizes = |lambda: usize| {
        let (store, m) = model(1, lambda);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = m.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
        out.levels.first().map(|l| l.size)
    };
    let s1 = sizes(1).expect("lambda=1 must pool");
    let s2 = sizes(2).expect("lambda=2 must pool");
    assert!(
        s2 <= s1,
        "wider ego radius must not coarsen less: {s2} vs {s1}"
    );
}

#[test]
fn multi_level_hierarchy_terminates_gracefully() {
    // asking for far more levels than the graph supports must not panic
    let ctx = barbell();
    let (store, m) = model(6, 1);
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let out = m.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
    assert!(out.levels.len() <= 6);
    assert_eq!(out.unpooled.len(), out.levels.len());
    // whatever was pooled still unpools to the original node count
    for &up in &out.unpooled {
        assert_eq!(tape.shape(up).0, 11);
    }
}

#[test]
fn edgeless_graph_skips_pooling() {
    let ctx = GraphCtx::new(Topology::from_edges(5, &[]), Matrix::eye(5));
    let mut store = ParamStore::new();
    let mut cfg = AdamGnnConfig::new(5, 8, 3);
    cfg.dropout = 0.0;
    let m = AdamGnn::new(&mut store, cfg, &mut seeds::model_init_stable());
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let out = m.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
    assert!(out.levels.is_empty());
    assert!(out.beta.is_none());
    assert_eq!(out.h, out.h0);
}

#[test]
fn s_matrix_values_match_fitness_entries() {
    // every stored S value is either a φ score in (0, 1) or exactly 1.0
    let ctx = barbell();
    let (store, m) = model(1, 1);
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let out = m.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
    let level = &out.levels[0];
    let vals = tape.value(level.s_vals);
    for &v in vals.data() {
        assert!(
            (0.0 < v && v < 1.0) || v == 1.0,
            "S value {v} outside fitness range"
        );
    }
    // ego diagonals: one exact 1.0 per ego column at minimum
    let ones = vals.data().iter().filter(|&&v| v == 1.0).count();
    assert!(ones >= level.egos.len());
}

#[test]
fn unpooled_messages_are_local_to_ego_networks() {
    // level-1 messages reach exactly the nodes covered by some selected
    // ego-network plus retained nodes (which receive their own message)
    let ctx = barbell();
    let (store, m) = model(1, 1);
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let out = m.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
    let up = tape.value_cloned(out.unpooled[0]);
    // every node participates in S (no information loss), so every row of
    // the unpooled message should generally be non-zero
    let nonzero_rows = (0..up.rows())
        .filter(|&i| up.row(i).iter().any(|&x| x != 0.0))
        .count();
    assert_eq!(nonzero_rows, 11, "all nodes must receive a message");
}

#[test]
fn beta_reflects_number_of_levels() {
    let ctx = barbell();
    let (store, m) = model(3, 1);
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let out = m.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
    if let Some(beta) = out.beta {
        assert_eq!(tape.shape(beta), (11, out.unpooled.len()));
    }
}

#[test]
fn hidden_width_is_respected_everywhere() {
    let ctx = barbell();
    let (store, m) = model(2, 1);
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let out = m.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
    assert_eq!(tape.shape(out.h), (11, 8));
    for &up in &out.unpooled {
        assert_eq!(tape.shape(up).1, 8);
    }
}

#[test]
fn disconnected_graph_pools_each_component() {
    // two disjoint triangles: selection happens independently per component
    let g = Topology::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
    let ctx = GraphCtx::new(g, Matrix::eye(6));
    let mut store = ParamStore::new();
    let mut cfg = AdamGnnConfig::new(6, 8, 1);
    cfg.dropout = 0.0;
    let m = AdamGnn::new(&mut store, cfg, &mut seeds::model_init_stable());
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let out = m.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
    if let Some(level) = out.levels.first() {
        // with distinct fitness, each triangle contributes >= 1 ego
        assert!(!level.egos.is_empty());
        assert!(level.size < 6, "pooling must coarsen");
    }
}

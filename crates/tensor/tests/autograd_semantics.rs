//! Semantic tests of the autograd engine beyond per-op gradchecks:
//! gradient accumulation through shared subexpressions, diamond graphs,
//! multiple backward passes, and failure modes.

use mg_tensor::{AdamConfig, Matrix, ParamStore, Tape};
use std::rc::Rc;

#[test]
fn shared_subexpression_accumulates_gradient() {
    // loss = sum(x + x) -> dloss/dx = 2
    let tape = Tape::new();
    let x = tape.leaf(Matrix::full(2, 2, 3.0), true);
    let y = tape.add(x, x);
    let loss = tape.sum_all(y);
    let grads = tape.backward(loss);
    assert!(grads.get(x).unwrap().data().iter().all(|&g| g == 2.0));
}

#[test]
fn diamond_graph_gradient() {
    // a = x*x ; b = 2x ; loss = sum(a + b) -> d/dx = 2x + 2
    let tape = Tape::new();
    let x = tape.leaf(Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]), true);
    let a = tape.mul_elem(x, x);
    let b = tape.scale(x, 2.0);
    let loss = tape.sum_all(tape.add(a, b));
    let grads = tape.backward(loss);
    let g = grads.get(x).unwrap();
    assert_eq!(g.data(), &[4.0, -2.0, 3.0]);
}

#[test]
fn two_backward_passes_on_one_tape() {
    let tape = Tape::new();
    let x = tape.leaf(Matrix::full(1, 2, 2.0), true);
    let l1 = tape.sum_all(x);
    let sq = tape.mul_elem(x, x);
    let l2 = tape.sum_all(sq);
    let g1 = tape.backward(l1);
    let g2 = tape.backward(l2);
    assert_eq!(g1.get(x).unwrap().data(), &[1.0, 1.0]);
    assert_eq!(g2.get(x).unwrap().data(), &[4.0, 4.0]);
}

#[test]
fn constants_block_gradient_flow() {
    let tape = Tape::new();
    let x = tape.leaf(Matrix::full(1, 2, 1.0), true);
    let c = tape.constant(Matrix::full(1, 2, 5.0));
    let y = tape.mul_elem(x, c);
    let loss = tape.sum_all(y);
    let grads = tape.backward(loss);
    assert_eq!(grads.get(x).unwrap().data(), &[5.0, 5.0]);
    assert!(
        grads.get(c).is_none(),
        "constants must not receive gradients"
    );
}

#[test]
#[should_panic(expected = "loss must be a 1x1 scalar")]
fn backward_rejects_non_scalar() {
    let tape = Tape::new();
    let x = tape.leaf(Matrix::full(2, 2, 1.0), true);
    let _ = tape.backward(x);
}

#[test]
#[should_panic(expected = "matmul")]
fn matmul_shape_mismatch_panics() {
    let tape = Tape::new();
    let a = tape.constant(Matrix::zeros(2, 3));
    let b = tape.constant(Matrix::zeros(2, 3));
    let _ = tape.matmul(a, b);
}

#[test]
fn deep_chain_gradient_is_stable() {
    // 40 chained tanh ops: gradients must stay finite and non-zero
    let tape = Tape::new();
    let x = tape.leaf(Matrix::full(1, 4, 0.5), true);
    let mut h = x;
    for _ in 0..40 {
        h = tape.tanh(h);
    }
    let loss = tape.sum_all(h);
    let grads = tape.backward(loss);
    let g = grads.get(x).unwrap();
    assert!(g.all_finite());
}

#[test]
fn weight_decay_shrinks_parameters() {
    let mut store = ParamStore::new();
    let w = store.add("w", Matrix::full(1, 1, 10.0));
    let cfg = AdamConfig {
        lr: 0.1,
        weight_decay: 0.1,
        ..Default::default()
    };
    for _ in 0..50 {
        let tape = Tape::new();
        let bind = store.bind(&tape);
        // loss independent of w except through decay
        let loss = tape.scale(tape.sum_all(bind.var(w)), 0.0);
        let mut grads = tape.backward(loss);
        store.step(&mut grads, &bind, &cfg);
    }
    assert!(
        store.value(w).scalar() < 10.0,
        "decay must shrink the weight"
    );
}

#[test]
fn gather_then_segment_sum_roundtrip() {
    // scatter-gather consistency: segment_sum(gather(x, idx), idx) applied
    // to one-hot segments reconstructs multiplicity-weighted rows
    let tape = Tape::new();
    let x = tape.leaf(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]), true);
    let idx = Rc::new(vec![0usize, 1, 1, 2]);
    let gathered = tape.gather_rows(x, idx.clone());
    let back = tape.segment_sum(gathered, idx, 3);
    let v = tape.value_cloned(back);
    assert_eq!(v.row(0), &[1., 2.]);
    assert_eq!(v.row(1), &[6., 8.]); // doubled
    assert_eq!(v.row(2), &[5., 6.]);
    // and gradients flow back with matching multiplicity
    let loss = tape.sum_all(back);
    let grads = tape.backward(loss);
    assert_eq!(grads.get(x).unwrap().data(), &[1., 1., 2., 2., 1., 1.]);
}

#[test]
fn bce_pairs_gradient_direction() {
    // positive pair with negative logit: gradient must push the dot up
    let tape = Tape::new();
    let h = tape.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]), true);
    let loss = tape.bce_pairs(h, Rc::new(vec![(0, 1)]), Rc::new(vec![1.0]));
    let grads = tape.backward(loss);
    let g = grads.get(h).unwrap();
    // dL/dh0 = (sigma(z)-1) * h1 with z = -1: (0.269-1)*(-1) > 0... the
    // loss decreases by moving h0 towards -? Check by descent:
    let step = |h0: f64, h1: f64| {
        let t = Tape::new();
        let hv = t.leaf(Matrix::from_vec(2, 1, vec![h0, h1]), true);
        let l = t.bce_pairs(hv, Rc::new(vec![(0, 1)]), Rc::new(vec![1.0]));
        let v = t.value(l).scalar();
        v
    };
    let before = step(1.0, -1.0);
    let after = step(1.0 - 0.1 * g[(0, 0)], -1.0 - 0.1 * g[(1, 0)]);
    assert!(after < before, "gradient step must reduce the loss");
}

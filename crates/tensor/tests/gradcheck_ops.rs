//! Central-difference gradient checks for every differentiable op.
//!
//! These tests are what make the autograd engine trustworthy: each op's
//! hand-written backward is validated against a numeric gradient on
//! random inputs.

use std::rc::Rc;

use mg_tensor::{check_gradients, Csr, Matrix, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 1e-5;
const TOL: f64 = 1e-6;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rand_m(r: usize, c: usize, seed: u64) -> Matrix {
    Matrix::uniform(r, c, -1.0, 1.0, &mut rng(seed))
}

/// Reduce any matrix-valued var to a scalar with a fixed random projection
/// so the gradient exercises every output entry with distinct weights.
fn project(tape: &Tape, v: Var, seed: u64) -> Var {
    let (r, c) = tape.shape(v);
    let w = tape.constant(Matrix::uniform(r, c, -1.0, 1.0, &mut rng(seed ^ 0xabcd)));
    let prod = tape.mul_elem(v, w);
    tape.sum_all(prod)
}

#[test]
fn grad_add() {
    let rep = check_gradients(&[rand_m(3, 4, 1), rand_m(3, 4, 2)], EPS, |t, v| {
        let y = t.add(v[0], v[1]);
        project(t, y, 3)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_sub() {
    let rep = check_gradients(&[rand_m(3, 4, 4), rand_m(3, 4, 5)], EPS, |t, v| {
        let y = t.sub(v[0], v[1]);
        project(t, y, 6)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_mul_elem() {
    let rep = check_gradients(&[rand_m(3, 4, 7), rand_m(3, 4, 8)], EPS, |t, v| {
        let y = t.mul_elem(v[0], v[1]);
        project(t, y, 9)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_scale_and_add_scalar() {
    let rep = check_gradients(&[rand_m(2, 3, 10)], EPS, |t, v| {
        let y = t.scale(v[0], -2.5);
        let z = t.add_scalar(y, 0.7);
        project(t, z, 11)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_add_bias() {
    let rep = check_gradients(&[rand_m(4, 3, 12), rand_m(1, 3, 13)], EPS, |t, v| {
        let y = t.add_bias(v[0], v[1]);
        project(t, y, 14)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_matmul_both_sides() {
    let rep = check_gradients(&[rand_m(3, 4, 15), rand_m(4, 2, 16)], EPS, |t, v| {
        let y = t.matmul(v[0], v[1]);
        project(t, y, 17)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_transpose() {
    let rep = check_gradients(&[rand_m(3, 5, 18)], EPS, |t, v| {
        let y = t.transpose(v[0]);
        project(t, y, 19)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_relu() {
    // shift inputs away from the kink at 0
    let mut x = rand_m(3, 4, 20);
    for v in x.data_mut() {
        if v.abs() < 0.05 {
            *v += 0.1;
        }
    }
    let rep = check_gradients(&[x], EPS, |t, v| {
        let y = t.relu(v[0]);
        project(t, y, 21)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_leaky_relu() {
    let mut x = rand_m(3, 4, 22);
    for v in x.data_mut() {
        if v.abs() < 0.05 {
            *v += 0.1;
        }
    }
    let rep = check_gradients(&[x], EPS, |t, v| {
        let y = t.leaky_relu(v[0], 0.2);
        project(t, y, 23)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_sigmoid() {
    let rep = check_gradients(&[rand_m(3, 4, 24)], EPS, |t, v| {
        let y = t.sigmoid(v[0]);
        project(t, y, 25)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_tanh() {
    let rep = check_gradients(&[rand_m(3, 4, 26)], EPS, |t, v| {
        let y = t.tanh(v[0]);
        project(t, y, 27)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_softmax_rows() {
    let rep = check_gradients(&[rand_m(3, 5, 28)], EPS, |t, v| {
        let y = t.softmax_rows(v[0]);
        project(t, y, 29)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_log_softmax_rows() {
    let rep = check_gradients(&[rand_m(3, 5, 30)], EPS, |t, v| {
        let y = t.log_softmax_rows(v[0]);
        project(t, y, 31)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

fn sample_csr() -> Rc<Csr> {
    // 4x3 sparse pattern with an empty row
    Rc::new(Csr::from_coo(
        4,
        3,
        &[(0, 0), (0, 2), (1, 1), (3, 0), (3, 1), (3, 2)],
    ))
}

#[test]
fn grad_spmm_values_and_dense() {
    let csr = sample_csr();
    let vals = rand_m(1, csr.nnz(), 32);
    let dense = rand_m(3, 4, 33);
    let rep = check_gradients(&[vals, dense], EPS, |t, v| {
        let y = t.spmm(csr.clone(), v[0], v[1]);
        project(t, y, 34)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_spmm_t_values_and_dense() {
    let csr = sample_csr();
    let vals = rand_m(1, csr.nnz(), 35);
    let dense = rand_m(4, 4, 36);
    let rep = check_gradients(&[vals, dense], EPS, |t, v| {
        let y = t.spmm_t(csr.clone(), v[0], v[1]);
        project(t, y, 37)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

/// Fused `relu(csr(values) * dense + bias)` — all three inputs get
/// gradients through the single fused node.
#[test]
fn grad_spmm_bias_relu_values_dense_and_bias() {
    let csr = sample_csr();
    let vals = rand_m(1, csr.nnz(), 96);
    let dense = rand_m(3, 4, 97);
    let bias = rand_m(1, 4, 98);

    // Guard against the ReLU kink: central differences are only valid when
    // no pre-activation sits near zero. The seeds above were chosen so this
    // holds; the assert turns a silently flaky test into a loud one.
    let pre = {
        let agg = csr.spmm_serial(vals.data(), &dense);
        Matrix::from_fn(agg.rows(), agg.cols(), |i, j| agg[(i, j)] + bias[(0, j)])
    };
    assert!(
        pre.data().iter().all(|v| v.abs() > 100.0 * EPS),
        "pre-activation too close to ReLU kink for a reliable gradcheck"
    );

    let rep = check_gradients(&[vals, dense, bias], EPS, |t, v| {
        let y = t.spmm_bias_relu(csr.clone(), v[0], v[1], v[2]);
        project(t, y, 99)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_gather_rows_with_repeats() {
    let idx = Rc::new(vec![2usize, 0, 2, 1]);
    let rep = check_gradients(&[rand_m(3, 4, 38)], EPS, move |t, v| {
        let y = t.gather_rows(v[0], idx.clone());
        project(t, y, 39)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_segment_sum() {
    let seg = Rc::new(vec![1usize, 0, 1, 2, 0]);
    let rep = check_gradients(&[rand_m(5, 3, 40)], EPS, move |t, v| {
        let y = t.segment_sum(v[0], seg.clone(), 3);
        project(t, y, 41)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_segment_softmax() {
    let seg = Rc::new(vec![0usize, 0, 1, 1, 1, 2]);
    let rep = check_gradients(&[rand_m(6, 1, 42)], EPS, move |t, v| {
        let y = t.segment_softmax(v[0], seg.clone(), 3);
        project(t, y, 43)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_row_dot() {
    let rep = check_gradients(&[rand_m(4, 3, 44), rand_m(4, 3, 45)], EPS, |t, v| {
        let y = t.row_dot(v[0], v[1]);
        project(t, y, 46)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_mul_col() {
    let rep = check_gradients(&[rand_m(4, 3, 47), rand_m(4, 1, 48)], EPS, |t, v| {
        let y = t.mul_col(v[0], v[1]);
        project(t, y, 49)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_concat_and_slice() {
    let rep = check_gradients(&[rand_m(3, 2, 50), rand_m(3, 3, 51)], EPS, |t, v| {
        let y = t.concat_cols(&[v[0], v[1]]);
        let s = t.slice_cols(y, 1, 4);
        project(t, s, 52)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_reductions() {
    let rep = check_gradients(&[rand_m(4, 3, 53)], EPS, |t, v| {
        let a = t.sum_all(v[0]);
        let b = t.mean_all(v[0]);
        let c = project(t, t.mean_rows(v[0]), 54);
        let d = project(t, t.sum_rows(v[0]), 55);
        let ab = t.add(a, b);
        let cd = t.add(c, d);
        t.add(ab, cd)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_max_rows() {
    // well-separated values so the argmax is stable under perturbation
    let x = Matrix::from_vec(3, 2, vec![0.1, 5.0, 3.0, 0.2, 1.0, 1.5]);
    let rep = check_gradients(&[x], EPS, |t, v| {
        let y = t.max_rows(v[0]);
        project(t, y, 56)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_nll_loss_masked() {
    let rep = check_gradients(&[rand_m(5, 3, 57)], EPS, |t, v| {
        let logp = t.log_softmax_rows(v[0]);
        t.nll_loss(logp, Rc::new(vec![0, 2, 1, 0, 2]), Rc::new(vec![0, 2, 4]))
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_bce_pairs() {
    let pairs = Rc::new(vec![(0usize, 1usize), (1, 2), (0, 3), (3, 3)]);
    let labels = Rc::new(vec![1.0, 0.0, 1.0, 0.0]);
    let rep = check_gradients(&[rand_m(4, 3, 58)], EPS, move |t, v| {
        t.bce_pairs(v[0], pairs.clone(), labels.clone())
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_dropout_fixed_mask() {
    // dropout draws its mask from an rng at op-construction time; use a
    // deterministic seed so analytic and numeric passes share the mask.
    let rep = check_gradients(&[rand_m(3, 4, 59)], EPS, |t, v| {
        let mut r = rng(1234);
        let y = t.dropout(v[0], 0.5, &mut r);
        project(t, y, 60)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

/// The Student-t KL loss detaches the target distribution P (standard
/// DEC), so we check the analytic gradient against a numeric gradient of
/// the *P-frozen* objective, computed by hand here.
#[test]
fn grad_student_t_kl_with_frozen_target() {
    let h0 = rand_m(6, 3, 61);
    let egos = vec![0usize, 3];

    // frozen P from the unperturbed embedding
    let frozen_p = {
        let tape = Tape::new();
        let h = tape.leaf(h0.clone(), false);
        // recompute q/p exactly as the op does, via a probe: run the op and
        // recover p from its definition
        let _ = h;
        student_t_p(&h0, &egos)
    };
    let loss_frozen = |h: &Matrix| -> f64 {
        let q = student_t_q(h, &egos);
        let n = h.rows() as f64;
        let mut l = 0.0;
        for j in 0..h.rows() {
            for c in 0..egos.len() {
                let p = frozen_p[(j, c)];
                if p > 0.0 {
                    l += p * (p / q[(j, c)]).ln();
                }
            }
        }
        l / n
    };

    // analytic gradient from the op
    let tape = Tape::new();
    let h = tape.leaf(h0.clone(), true);
    let loss = tape.student_t_kl(h, Rc::new(egos.clone()));
    let grads = tape.backward(loss);
    let analytic = grads.get(h).expect("gradient must exist");

    // numeric gradient of the P-frozen objective
    let mut max_err = 0.0f64;
    for idx in 0..h0.len() {
        let mut plus = h0.clone();
        plus.data_mut()[idx] += EPS;
        let mut minus = h0.clone();
        minus.data_mut()[idx] -= EPS;
        let numeric = (loss_frozen(&plus) - loss_frozen(&minus)) / (2.0 * EPS);
        max_err = max_err.max((numeric - analytic.data()[idx]).abs());
    }
    assert!(max_err < 1e-6, "max_err = {max_err}");
}

fn student_t_q(h: &Matrix, egos: &[usize]) -> Matrix {
    let n = h.rows();
    let mut q = Matrix::zeros(n, egos.len());
    for j in 0..n {
        let mut sum = 0.0;
        for (c, &e) in egos.iter().enumerate() {
            let mut d2 = 0.0;
            for (a, b) in h.row(j).iter().zip(h.row(e)) {
                d2 += (a - b) * (a - b);
            }
            q[(j, c)] = 1.0 / (1.0 + d2);
            sum += q[(j, c)];
        }
        for c in 0..egos.len() {
            q[(j, c)] /= sum;
        }
    }
    q
}

fn student_t_p(h: &Matrix, egos: &[usize]) -> Matrix {
    let q = student_t_q(h, egos);
    let (n, m) = q.shape();
    let mut g = vec![0.0f64; m];
    for j in 0..n {
        for c in 0..m {
            g[c] += q[(j, c)];
        }
    }
    let mut p = Matrix::zeros(n, m);
    for j in 0..n {
        let mut denom = 0.0;
        for c in 0..m {
            denom += q[(j, c)] * q[(j, c)] / g[c];
        }
        for c in 0..m {
            p[(j, c)] = (q[(j, c)] * q[(j, c)] / g[c]) / denom;
        }
    }
    p
}

/// Composite end-to-end check: a two-layer GCN-like computation mixing
/// spmm, matmul, bias, relu and cross-entropy.
#[test]
fn grad_composite_gcn_stack() {
    let csr = sample_csr();
    // adjacency values as constants, weights as checked inputs
    let adj_vals = Matrix::uniform(1, csr.nnz(), 0.1, 1.0, &mut rng(62));
    let x = rand_m(3, 4, 63);
    let w1 = rand_m(4, 5, 64);
    let b1 = rand_m(1, 5, 65);
    let w2 = rand_m(5, 2, 66);
    let csr_t = Rc::new(
        // reuse structure transposed so shapes line up for a second hop
        {
            let (t, _) = csr.transpose_struct();
            t
        },
    );
    let adj_vals_t = Matrix::uniform(1, csr_t.nnz(), 0.1, 1.0, &mut rng(67));
    let rep = check_gradients(&[x, w1, b1, w2], EPS, move |t, v| {
        let av = t.constant(adj_vals.clone());
        let avt = t.constant(adj_vals_t.clone());
        let xw = t.matmul(v[0], v[1]); // 3x5
        let agg = t.spmm(csr.clone(), av, xw); // 4x5
        let h = t.relu(t.add_bias(agg, v[2]));
        let hw = t.matmul(h, v[3]); // 4x2
        let out = t.spmm(csr_t.clone(), avt, hw); // 3x2
        t.cross_entropy(out, Rc::new(vec![0, 1, 0]), Rc::new(vec![0, 1, 2]))
    });
    assert!(rep.ok(1e-5), "{rep:?}");
}

#[test]
fn grad_col_normalize() {
    let rep = check_gradients(&[rand_m(5, 3, 70)], EPS, |t, v| {
        let y = t.col_normalize(v[0]);
        project(t, y, 71)
    });
    assert!(rep.ok(1e-5), "{rep:?}");
}

#[test]
fn grad_reshape() {
    let rep = check_gradients(&[rand_m(3, 4, 72)], EPS, |t, v| {
        let y = t.reshape(v[0], 2, 6);
        project(t, y, 73)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

/// The model's `S_k` assembly idiom: sparse values are not a free leaf but
/// a gather_rows + reshape view of learned fitness scores, so the
/// `spmm_grad_values` kernel output must flow back through a scatter-add.
#[test]
fn grad_spmm_values_via_gather_reshape_chain() {
    let csr = sample_csr();
    let gather_idx = Rc::new(vec![0usize, 2, 1, 0, 3, 2]); // repeats, like shared φ
    let phi = rand_m(4, 1, 90);
    let dense = rand_m(3, 3, 91);
    let rep = check_gradients(&[phi, dense], EPS, move |t, v| {
        let picked = t.gather_rows(v[0], gather_idx.clone()); // nnz x 1
        let vals = t.reshape(picked, 1, 6); // 1 x nnz
        let y = t.spmm(csr.clone(), vals, v[1]);
        project(t, y, 92)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

/// One values leaf feeding both `spmm` and `spmm_t` (the unpooling chain
/// uses the same `S_k` values in both directions), so the two backward
/// kernels (`spmm_grad_values` + `spmm_t_grad_values`) accumulate into one
/// gradient.
#[test]
fn grad_shared_values_through_spmm_and_spmm_t() {
    let csr = sample_csr();
    let vals = rand_m(1, csr.nnz(), 93);
    let down = rand_m(3, 3, 94); // spmm:   (4x3 pattern) * 3x3 -> 4x3
    let up = rand_m(4, 3, 95); // spmm_t: (3x4 pattern) * 4x3 -> 3x3
    let rep = check_gradients(&[vals, down, up], EPS, move |t, v| {
        let a = t.spmm(csr.clone(), v[0], v[1]);
        let b = t.spmm_t(csr.clone(), v[0], v[2]);
        let pa = project(t, a, 96);
        let pb = project(t, b, 97);
        t.add(pa, pb)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

/// The flyback aggregator's attention path (Eq. 4): per-level score
/// columns -> concat_cols -> softmax_rows -> slice_cols -> mul_col, summed
/// over levels.
#[test]
fn grad_flyback_attention_softmax_composite() {
    let s0 = rand_m(5, 1, 100);
    let s1 = rand_m(5, 1, 101);
    let h0 = rand_m(5, 3, 102);
    let h1 = rand_m(5, 3, 103);
    let rep = check_gradients(&[s0, s1, h0, h1], EPS, |t, v| {
        let scores = t.concat_cols(&[v[0], v[1]]);
        let beta = t.softmax_rows(scores);
        let b0 = t.slice_cols(beta, 0, 1);
        let b1 = t.slice_cols(beta, 1, 2);
        let w0 = t.mul_col(v[2], b0);
        let w1 = t.mul_col(v[3], b1);
        let sum = t.add(w0, w1);
        project(t, sum, 104)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

/// The hyper-node feature path (Eq. 3): member scores -> segment_softmax
/// -> mul_col -> segment_sum, i.e. attention-weighted member pooling.
#[test]
fn grad_segment_attention_composite() {
    let seg = Rc::new(vec![0usize, 0, 0, 1, 1, 2]);
    let scores = rand_m(6, 1, 105);
    let members = rand_m(6, 3, 106);
    let rep = check_gradients(&[scores, members], EPS, move |t, v| {
        let alpha = t.segment_softmax(v[0], seg.clone(), 3);
        let weighted = t.mul_col(v[1], alpha);
        let pooled = t.segment_sum(weighted, seg.clone(), 3);
        project(t, pooled, 107)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

#[test]
fn grad_exp() {
    let rep = check_gradients(&[rand_m(3, 4, 80)], EPS, |t, v| {
        let y = t.exp(v[0]);
        project(t, y, 81)
    });
    assert!(rep.ok(1e-5), "{rep:?}");
}

#[test]
fn grad_ln_positive_inputs() {
    let mut x = rand_m(3, 4, 82);
    for v in x.data_mut() {
        *v = v.abs() + 0.5; // keep strictly positive
    }
    let rep = check_gradients(&[x], EPS, |t, v| {
        let y = t.ln(v[0]);
        project(t, y, 83)
    });
    assert!(rep.ok(1e-5), "{rep:?}");
}

/// Recompute-on-backward through a checkpointed segment containing the
/// fused `spmm_bias_relu`: the numeric gradient validates the *replayed*
/// values, not just the retained ones (the interiors are dropped after
/// forward and rebuilt inside `backward` on every perturbation). The
/// ReLU kink is guarded exactly as in `grad_spmm_bias_relu_*`: central
/// differences are only valid when no pre-activation sits near zero.
#[test]
fn grad_checkpointed_segment_spmm_bias_relu() {
    let csr = sample_csr();
    let vals = rand_m(1, csr.nnz(), 96);
    let dense = rand_m(3, 4, 97);
    let bias = rand_m(1, 4, 98);

    let pre = {
        let agg = csr.spmm_serial(vals.data(), &dense);
        Matrix::from_fn(agg.rows(), agg.cols(), |i, j| agg[(i, j)] + bias[(0, j)])
    };
    assert!(
        pre.data().iter().all(|v| v.abs() > 100.0 * EPS),
        "pre-activation too close to ReLU kink for a reliable gradcheck"
    );

    let csr2 = csr.clone();
    let rep = check_gradients(&[vals, dense, bias], EPS, move |t, v| {
        let y = t.checkpoint_scope(|| {
            let fused = t.spmm_bias_relu(csr2.clone(), v[0], v[1], v[2]);
            t.mul_elem(t.tanh(fused), fused)
        });
        project(t, y, 99)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

/// Recompute-on-backward through a checkpointed attention block: the
/// Eq. 3 composite (segment_softmax -> mul_col -> segment_sum) runs
/// inside a scope, so backward must replay the softmax and its
/// intermediates bit-for-bit before the existing gradient kernels run.
#[test]
fn grad_checkpointed_segment_attention_softmax() {
    let seg = Rc::new(vec![0usize, 0, 0, 1, 1, 2]);
    let scores = rand_m(6, 1, 105);
    let members = rand_m(6, 3, 106);
    let rep = check_gradients(&[scores, members], EPS, move |t, v| {
        let pooled = t.checkpoint_scope(|| {
            let alpha = t.segment_softmax(v[0], seg.clone(), 3);
            let weighted = t.mul_col(v[1], alpha);
            t.segment_sum(weighted, seg.clone(), 3)
        });
        project(t, pooled, 107)
    });
    assert!(rep.ok(TOL), "{rep:?}");
}

//! Parity and contract tests for the matmul kernel family.
//!
//! Three concerns live here:
//!
//! 1. **Blocked-vs-scalar parity.** The blocked kernels reassociate the
//!    k-sum (8-wide unrolling, kc-panels), so against the scalar golden
//!    path they are compared under a relative tolerance — except on
//!    inputs where every intermediate is exactly representable (small
//!    integers), where any summation order gives the same bits and we
//!    demand exact equality.
//! 2. **Non-finite propagation.** All three product kernels — scalar,
//!    blocked, and the dispatched entry points — must propagate NaN/Inf
//!    from either operand, even when the matching lhs entry is `0.0`
//!    (`0.0 * NaN = NaN`, `0.0 * inf = NaN`). This pins the resolved
//!    zero-skip contract: dense kernels never skip on a zero operand.
//! 3. **Fused spmm+bias+ReLU equivalence.** The fused kernel and tape op
//!    must be *bitwise* equal to the unfused spmm → add_bias → relu
//!    chain, forward and backward — that is what keeps the golden traces
//!    byte-identical when the GCN layer takes the fused path.

use std::rc::Rc;

use mg_tensor::{Csr, Matrix, Tape};
use proptest::prelude::*;

/// Relative tolerance for blocked-vs-scalar comparisons. The kernels do
/// the same multiplies in a different association order; for the sizes
/// tested (k < 100, |entries| <= 10) the reassociation error is far
/// below this.
const REL_TOL: f64 = 1e-12;

fn assert_close(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        let scale = 1.0f64.max(g.abs()).max(w.abs());
        assert!(
            (g - w).abs() <= REL_TOL * scale,
            "{what}: entry {i} diverged: got {g}, want {w}"
        );
    }
}

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Small-integer-valued matrix: every product and partial sum in a
/// matmul over these is an exactly-representable integer, so *any*
/// summation order yields identical bits.
fn int_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-4i8..=4, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data.into_iter().map(f64::from).collect()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // -- blocked vs scalar: tolerance on general inputs ------------------

    #[test]
    fn blocked_matmul_close_to_scalar(a in matrix(1..24, 1..90), c in 1..24usize) {
        // k up to 90 crosses the KC=64 panel boundary and the 8-wide
        // unroll remainder.
        let b = Matrix::from_fn(a.cols(), c, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        assert_close(&a.matmul_blocked(&b), &a.matmul_serial(&b), "matmul");
    }

    #[test]
    fn blocked_matmul_tn_close_to_scalar(a in matrix(1..90, 1..16), q in 1..16usize) {
        // a: k x m, b: k x q -> aT b is m x q; k up to 90 crosses KC.
        let b = Matrix::from_fn(a.rows(), q, |i, j| ((i * 17 + j * 5) % 11) as f64 - 5.0);
        assert_close(&a.matmul_tn_blocked(&b), &a.matmul_tn_serial(&b), "matmul_tn");
    }

    #[test]
    fn blocked_matmul_nt_close_to_scalar(a in matrix(1..24, 1..90), q in 1..80usize) {
        // a: n x p, b: q x p -> a bT is n x q; q up to 80 crosses the
        // nt kernel's jc-tile boundary, p up to 90 crosses the unroll.
        let b = Matrix::from_fn(q, a.cols(), |i, j| ((i * 23 + j * 3) % 9) as f64 - 4.0);
        assert_close(&a.matmul_nt_blocked(&b), &a.matmul_nt_serial(&b), "matmul_nt");
    }

    // -- blocked vs scalar: bitwise on exactly-representable inputs ------

    #[test]
    fn blocked_kernels_bitwise_on_integer_inputs(a in int_matrix(1..12, 1..70), c in 1..12usize) {
        let b = Matrix::from_fn(a.cols(), c, |i, j| ((i * 7 + j * 3) % 9) as f64 - 4.0);
        prop_assert_eq!(a.matmul_blocked(&b).data(), a.matmul_serial(&b).data());
        let bt = Matrix::from_fn(c, a.cols(), |i, j| ((i * 5 + j) % 7) as f64 - 3.0);
        prop_assert_eq!(a.matmul_nt_blocked(&bt).data(), a.matmul_nt_serial(&bt).data());
        let btn = Matrix::from_fn(a.rows(), c, |i, j| ((i + j * 11) % 9) as f64 - 4.0);
        prop_assert_eq!(a.matmul_tn_blocked(&btn).data(), a.matmul_tn_serial(&btn).data());
    }
}

// -- non-finite propagation (resolved zero-skip contract) ----------------

/// Every way to run each product, including the dispatched entry points
/// (which take the blocked path under `fast-kernels` and the scalar path
/// otherwise) — the contract must hold for all of them.
type KernelFn = fn(&Matrix, &Matrix) -> Matrix;

fn mm_variants() -> [(&'static str, KernelFn); 3] {
    [
        ("matmul_serial", |a, b| a.matmul_serial(b)),
        ("matmul_blocked", |a, b| a.matmul_blocked(b)),
        ("matmul", |a, b| a.matmul(b)),
    ]
}

fn tn_variants() -> [(&'static str, KernelFn); 3] {
    [
        ("matmul_tn_serial", |a, b| a.matmul_tn_serial(b)),
        ("matmul_tn_blocked", |a, b| a.matmul_tn_blocked(b)),
        ("matmul_tn", |a, b| a.matmul_tn(b)),
    ]
}

fn nt_variants() -> [(&'static str, KernelFn); 3] {
    [
        ("matmul_nt_serial", |a, b| a.matmul_nt_serial(b)),
        ("matmul_nt_blocked", |a, b| a.matmul_nt_blocked(b)),
        ("matmul_nt", |a, b| a.matmul_nt(b)),
    ]
}

/// k values probing the unrolled body (poison inside the first 8-group),
/// the scalar remainder (poison past the last full 8-group), and a kc
/// panel crossing.
const NAN_CASES: [(usize, usize); 4] = [(5, 2), (19, 17), (19, 4), (70, 66)];

// In every case below the poison index is paired with a `0.0` lhs entry
// in the first output row/column, so a kernel that skipped zero lhs
// entries would (wrongly) produce a finite value there.

#[test]
fn nonfinite_rhs_propagates_through_all_matmul_variants() {
    for &(k, pk) in &NAN_CASES {
        for poison in [f64::NAN, f64::INFINITY] {
            // a: 2 x k, row 0 has 0.0 exactly at the poison index.
            let mut a = Matrix::from_fn(2, k, |i, j| (i * k + j) as f64 * 0.25 + 1.0);
            a.data_mut()[pk] = 0.0;
            // b: k x 3, poison at (pk, 1).
            let mut b = Matrix::from_fn(k, 3, |i, j| (i + j) as f64 * 0.5 + 1.0);
            b.data_mut()[pk * 3 + 1] = poison;
            for (name, f) in mm_variants() {
                let out = f(&a, &b);
                // 0.0 * NaN and 0.0 * inf are both NaN: row 0 must not
                // be rescued by a zero-skip.
                assert!(
                    out[(0, 1)].is_nan(),
                    "{name} k={k} pk={pk} poison={poison}: row0"
                );
                // Row 1 multiplies the poison by a finite nonzero value.
                assert!(!out[(1, 1)].is_finite(), "{name}: row1");
                // Unrelated columns stay finite.
                assert!(
                    out[(0, 0)].is_finite() && out[(0, 2)].is_finite(),
                    "{name}: spill"
                );
            }
        }
    }
}

#[test]
fn nonfinite_rhs_propagates_through_all_matmul_tn_variants() {
    for &(k, pk) in &NAN_CASES {
        for poison in [f64::NAN, f64::INFINITY] {
            // a: k x 2 (lhs is transposed), column 0 has 0.0 at row pk.
            let mut a = Matrix::from_fn(k, 2, |i, j| (i * 2 + j) as f64 * 0.25 + 1.0);
            a.data_mut()[pk * 2] = 0.0;
            let mut b = Matrix::from_fn(k, 3, |i, j| (i + j) as f64 * 0.5 + 1.0);
            b.data_mut()[pk * 3 + 1] = poison;
            for (name, f) in tn_variants() {
                let out = f(&a, &b); // 2 x 3
                assert!(
                    out[(0, 1)].is_nan(),
                    "{name} k={k} pk={pk} poison={poison}: col0"
                );
                assert!(!out[(1, 1)].is_finite(), "{name}: col1");
                assert!(
                    out[(0, 0)].is_finite() && out[(0, 2)].is_finite(),
                    "{name}: spill"
                );
            }
        }
    }
}

#[test]
fn nonfinite_rhs_propagates_through_all_matmul_nt_variants() {
    for &(k, pk) in &NAN_CASES {
        for poison in [f64::NAN, f64::INFINITY] {
            // a: 2 x k, row 0 has 0.0 at the poison index.
            let mut a = Matrix::from_fn(2, k, |i, j| (i * k + j) as f64 * 0.25 + 1.0);
            a.data_mut()[pk] = 0.0;
            // b: 3 x k (rhs is transposed), poison at (1, pk).
            let mut b = Matrix::from_fn(3, k, |i, j| (i + j) as f64 * 0.5 + 1.0);
            b.data_mut()[k + pk] = poison;
            for (name, f) in nt_variants() {
                let out = f(&a, &b); // 2 x 3
                assert!(
                    out[(0, 1)].is_nan(),
                    "{name} k={k} pk={pk} poison={poison}: row0"
                );
                assert!(!out[(1, 1)].is_finite(), "{name}: row1");
                assert!(
                    out[(0, 0)].is_finite() && out[(0, 2)].is_finite(),
                    "{name}: spill"
                );
            }
        }
    }
}

// -- fused spmm + bias + relu: bitwise equivalence -----------------------

fn fused_fixture() -> (Rc<Csr>, Vec<f64>, Matrix, Vec<f64>) {
    let mut coo = Vec::new();
    for i in 0..40u32 {
        for j in 0..12u32 {
            if (i * 7 + j * 3) % 5 == 0 {
                coo.push((i, j));
            }
        }
    }
    let csr = Rc::new(Csr::from_coo(40, 12, &coo));
    let vals: Vec<f64> = (0..csr.nnz())
        .map(|e| ((e * 13) % 17) as f64 * 0.3 - 2.4)
        .collect();
    let x = Matrix::from_fn(12, 6, |i, j| ((i * 5 + j * 11) % 19) as f64 * 0.25 - 2.0);
    let bias: Vec<f64> = (0..6).map(|j| (j as f64) * 0.4 - 1.0).collect();
    (csr, vals, x, bias)
}

#[test]
fn fused_kernel_bitwise_matches_unfused_chain() {
    let (csr, vals, x, bias) = fused_fixture();
    let agg = csr.spmm_serial(&vals, &x);
    let unfused = Matrix::from_fn(agg.rows(), agg.cols(), |i, j| {
        (agg[(i, j)] + bias[j]).max(0.0)
    });
    let fused = csr.spmm_bias_relu_serial(&vals, &x, &bias);
    assert_eq!(
        fused.data(),
        unfused.data(),
        "fused forward must be bitwise"
    );
    // Mixed signs on both sides of the ReLU, or the test proves nothing.
    assert!(fused.data().contains(&0.0));
    assert!(fused.data().iter().any(|&v| v > 0.0));
}

/// The fused tape op must be indistinguishable — to the bit — from the
/// chain it replaces, in value *and* in every gradient. This is the
/// property that lets the GCN layer switch to the fused node without
/// perturbing golden traces.
#[test]
fn fused_tape_op_bitwise_matches_unfused_tape_chain() {
    let (csr, vals, x, bias) = fused_fixture();
    let run = |fused: bool| {
        let t = Tape::new();
        let v = t.leaf(Matrix::from_vec(1, vals.len(), vals.clone()), true);
        let d = t.leaf(x.clone(), true);
        let b = t.leaf(Matrix::from_vec(1, bias.len(), bias.clone()), true);
        let y = if fused {
            t.spmm_bias_relu(csr.clone(), v, d, b)
        } else {
            let h = t.spmm(csr.clone(), v, d);
            let hb = t.add_bias(h, b);
            t.relu(hb)
        };
        let out = t.value_cloned(y);
        let loss = t.sum_all(y);
        let g = t.backward(loss);
        (
            out,
            g.get(v).unwrap().clone(),
            g.get(d).unwrap().clone(),
            g.get(b).unwrap().clone(),
        )
    };
    let (fo, fgv, fgd, fgb) = run(true);
    let (uo, ugv, ugd, ugb) = run(false);
    assert_eq!(fo.data(), uo.data(), "forward value");
    assert_eq!(fgv.data(), ugv.data(), "grad wrt sparse values");
    assert_eq!(fgd.data(), ugd.data(), "grad wrt dense input");
    assert_eq!(fgb.data(), ugb.data(), "grad wrt bias");
}

// -- dispatch parity across pool widths ----------------------------------

/// The dispatched entry points must be bitwise-stable across pool widths
/// 1..=4 and equal to the same build's serial reference (scalar by
/// default, blocked under `fast-kernels`). The scalar-vs-blocked pairing
/// is the *tolerance* comparison above; this one is exact.
#[cfg(feature = "parallel")]
mod pool_dispatch {
    use super::*;
    use mg_runtime::{with_pool, Pool};
    use std::sync::Arc;

    #[test]
    fn dispatched_kernels_bitwise_across_pools() {
        let a = Matrix::from_fn(96, 70, |i, j| ((i * 3 + j * 13) % 23) as f64 * 0.25 - 2.5);
        let b = Matrix::from_fn(70, 50, |i, j| ((i * 5 + j * 7) % 17) as f64 * 0.5 - 4.0);
        let bt = Matrix::from_fn(50, 70, |i, j| ((i * 11 + j) % 13) as f64 * 0.75 - 4.5);
        let (mm_ref, tn_ref, nt_ref) = if cfg!(feature = "fast-kernels") {
            (
                a.matmul_blocked(&b),
                a.matmul_tn_blocked(&a),
                a.matmul_nt_blocked(&bt),
            )
        } else {
            (
                a.matmul_serial(&b),
                a.matmul_tn_serial(&a),
                a.matmul_nt_serial(&bt),
            )
        };
        for threads in 1..=4 {
            let pool = Arc::new(Pool::new(threads));
            let (mm, tn, nt) =
                with_pool(pool, || (a.matmul(&b), a.matmul_tn(&a), a.matmul_nt(&bt)));
            assert_eq!(mm.data(), mm_ref.data(), "matmul @ {threads} threads");
            assert_eq!(tn.data(), tn_ref.data(), "matmul_tn @ {threads} threads");
            assert_eq!(nt.data(), nt_ref.data(), "matmul_nt @ {threads} threads");
        }
    }
}

//! Differential parity: checkpointed tape vs retaining tape.
//!
//! A random op chain (matmul / spmm / fused spmm+bias+relu / map / zip)
//! with random checkpoint-segment boundaries is executed twice over the
//! same tape program — once with the scopes active (interiors dropped
//! after forward, replayed on backward) and once fully retained. The
//! contract under test is *bitwise*: loss bits, every leaf gradient's
//! bits, and a tape high-water mark that never exceeds the retained
//! run's. The same suite compiles unchanged under `--features parallel`
//! (swept across pools 1..=4 below) and `--features fast-kernels`
//! (different kernels, same within-build bitwise promise).
//!
//! Also here: the fault-injection test for the replay fingerprint check
//! — a corrupted recomputed buffer must surface as a typed
//! `MgError::Corrupt`, never as silently wrong gradients.

use std::rc::Rc;

use mg_tensor::{Csr, Matrix, MgError, Tape, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Side of every dense matrix in a generated program.
const N: usize = 6;

/// One instruction of a generated tape program. `pick` indexes into the
/// executor's list of safely-usable dense vars (leaves, kept segment
/// outputs, vars recorded outside any scope, and vars of the currently
/// open scope) — never a dropped interior, so the same instruction
/// stream is legal with scopes on or off.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    Matmul { pick: usize },
    Add { pick: usize },
    MulElem { pick: usize },
    Relu,
    Sigmoid,
    Tanh,
    Spmm,
    SpmmBiasRelu,
    ScopeBegin,
    ScopeEnd,
}

/// Generate a program of `len` ops with non-nested scope markers at
/// random positions. Scopes always close before the program ends.
fn gen_program(seed: u64, len: usize) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = Vec::new();
    let mut in_scope = false;
    let mut ops_in_scope = 0usize;
    while steps
        .iter()
        .filter(|s| !matches!(s, Step::ScopeBegin | Step::ScopeEnd))
        .count()
        < len
    {
        if in_scope && ops_in_scope >= 1 && rng.random_bool(0.25) {
            steps.push(Step::ScopeEnd);
            in_scope = false;
        } else if !in_scope && rng.random_bool(0.3) {
            steps.push(Step::ScopeBegin);
            in_scope = true;
            ops_in_scope = 0;
        }
        let pick = rng.random_range(0..64usize);
        steps.push(match rng.random_range(0..8u32) {
            0 => Step::Matmul { pick },
            1 => Step::Add { pick },
            2 => Step::MulElem { pick },
            3 => Step::Relu,
            4 => Step::Sigmoid,
            5 => Step::Tanh,
            6 => Step::Spmm,
            _ => Step::SpmmBiasRelu,
        });
        if in_scope {
            ops_in_scope += 1;
        }
    }
    if in_scope {
        steps.push(Step::ScopeEnd);
    }
    steps
}

/// Fixed inputs derived from the seed: two dense leaves, a CSR
/// structure with a learnable value row, and a learnable bias row.
struct Inputs {
    x0: Matrix,
    w: Matrix,
    csr: Rc<Csr>,
    vals: Matrix,
    bias: Matrix,
}

fn gen_inputs(seed: u64) -> Inputs {
    fn dense(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        let data: Vec<f64> = (0..r * c).map(|_| rng.random_range(-0.5..0.5)).collect();
        Matrix::from_vec(r, c, data)
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let x0 = dense(&mut rng, N, N);
    let w = dense(&mut rng, N, N);
    let bias = dense(&mut rng, 1, N);
    // an N x N sparse structure with a ring plus random extra edges
    let mut entries: Vec<(u32, u32)> = (0..N as u32).map(|i| (i, (i + 1) % N as u32)).collect();
    for _ in 0..N {
        let e = (rng.random_range(0..N as u32), rng.random_range(0..N as u32));
        if !entries.contains(&e) {
            entries.push(e);
        }
    }
    let csr = Rc::new(Csr::from_coo(N, N, &entries));
    let vals = dense(&mut rng, 1, csr.nnz());
    Inputs {
        x0,
        w,
        csr,
        vals,
        bias,
    }
}

struct RunOut {
    loss: Matrix,
    gx0: Matrix,
    gw: Option<Matrix>,
    gvals: Option<Matrix>,
    gbias: Option<Matrix>,
    peak: usize,
}

/// Execute `program` on a fresh tape. When `ckpt` is false the scope
/// markers are ignored — the instruction stream (and therefore every
/// `Var` index) is identical either way.
fn run(program: &[Step], inp: &Inputs, ckpt: bool) -> RunOut {
    let tape = Tape::new();
    let x0 = tape.leaf(inp.x0.clone(), true);
    let w = tape.leaf(inp.w.clone(), true);
    let vals = tape.leaf(inp.vals.clone(), true);
    let bias = tape.leaf(inp.bias.clone(), true);
    let mut usable = vec![x0, w];
    let mut scope_vars: Vec<Var> = Vec::new();
    let mut head = x0;
    let mut scope = None;
    let mut in_scope = false;
    for step in program {
        let arg = |pick: usize| {
            let k = usable.len() + scope_vars.len();
            let i = pick % k;
            if i < usable.len() {
                usable[i]
            } else {
                scope_vars[i - usable.len()]
            }
        };
        match *step {
            Step::ScopeBegin => {
                if ckpt {
                    scope = Some(tape.begin_checkpoint());
                }
                in_scope = true;
                continue;
            }
            Step::ScopeEnd => {
                if let Some(s) = scope.take() {
                    tape.end_checkpoint(s, &[head]);
                }
                in_scope = false;
                scope_vars.clear();
                usable.push(head);
                continue;
            }
            Step::Matmul { pick } => head = tape.matmul(head, arg(pick)),
            Step::Add { pick } => head = tape.add(head, arg(pick)),
            Step::MulElem { pick } => head = tape.mul_elem(head, arg(pick)),
            Step::Relu => head = tape.relu(head),
            Step::Sigmoid => head = tape.sigmoid(head),
            Step::Tanh => head = tape.tanh(head),
            Step::Spmm => head = tape.spmm(inp.csr.clone(), vals, head),
            Step::SpmmBiasRelu => head = tape.spmm_bias_relu(inp.csr.clone(), vals, head, bias),
        }
        if in_scope {
            scope_vars.push(head);
        } else {
            usable.push(head);
        }
    }
    let loss = tape.mean_all(tape.mul_elem(head, head));
    let grads = tape.backward(loss);
    RunOut {
        loss: tape.value_cloned(loss),
        gx0: grads.get(x0).unwrap().clone(),
        gw: grads.get(w).cloned(),
        gvals: grads.get(vals).cloned(),
        gbias: grads.get(bias).cloned(),
        peak: tape.peak_tape_bytes(),
    }
}

fn assert_parity(seed: u64, len: usize) {
    let program = gen_program(seed, len);
    let inp = gen_inputs(seed);
    let retained = run(&program, &inp, false);
    let ckpt = run(&program, &inp, true);
    assert_eq!(retained.loss, ckpt.loss, "loss bits differ (seed {seed})");
    assert_eq!(retained.gx0, ckpt.gx0, "d/dx0 bits differ (seed {seed})");
    assert_eq!(retained.gw, ckpt.gw, "d/dw bits differ (seed {seed})");
    assert_eq!(
        retained.gvals, ckpt.gvals,
        "d/dvals bits differ (seed {seed})"
    );
    assert_eq!(
        retained.gbias, ckpt.gbias,
        "d/dbias bits differ (seed {seed})"
    );
    assert!(
        ckpt.peak <= retained.peak,
        "checkpointed peak {} exceeds retained peak {} (seed {seed})",
        ckpt.peak,
        retained.peak
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random program, random scope boundaries: bitwise identical
    /// gradients and a never-worse high-water mark.
    #[test]
    fn checkpointed_gradients_match_retained(seed in 0..u64::MAX, len in 6..22usize) {
        assert_parity(seed, len);
    }
}

/// Two sequential scopes: the first scope's interiors are dropped
/// before the second scope's nodes are recorded, so the high-water mark
/// must come out *strictly* below the retained run's (a single trailing
/// scope cannot lower the peak — it is reached before the scope-end
/// drop). Interiors must be gone both after forward and after backward
/// (the sweep re-drops them as it passes below each segment).
#[test]
fn interiors_are_dropped_and_redropped() {
    let build = |ckpt: bool| {
        let tape = Tape::new();
        let x = tape.leaf(
            Matrix::from_fn(N, N, |i, j| (i + 2 * j) as f64 * 0.1 - 0.4),
            true,
        );
        let s1 = ckpt.then(|| tape.begin_checkpoint());
        let a = tape.matmul(x, x);
        let b = tape.tanh(a);
        let c = tape.matmul(b, x);
        if let Some(s) = s1 {
            tape.end_checkpoint(s, &[c]);
        }
        let s2 = ckpt.then(|| tape.begin_checkpoint());
        let d = tape.matmul(c, c);
        let e = tape.tanh(d);
        let f = tape.matmul(e, c);
        if let Some(s) = s2 {
            tape.end_checkpoint(s, &[f]);
        }
        let loss = tape.mean_all(tape.mul_elem(f, f));
        (tape, x, [a, b, d, e], [c, f], loss)
    };

    let (tape, x, interiors, kept, loss) = build(true);
    for v in interiors {
        assert!(
            !tape.is_materialized(v),
            "interior must be dropped after forward"
        );
    }
    for v in kept {
        assert!(tape.is_materialized(v), "kept output must survive");
    }
    let grads = tape.backward(loss);
    for v in interiors {
        assert!(
            !tape.is_materialized(v),
            "interior must be re-dropped after backward"
        );
    }

    // same chain fully retained: identical bits, strictly higher peak
    let (tape2, x2, _, _, loss2) = build(false);
    let grads2 = tape2.backward(loss2);
    assert_eq!(tape.value_cloned(loss), tape2.value_cloned(loss2));
    assert_eq!(grads.get(x).unwrap(), grads2.get(x2).unwrap());
    assert!(
        tape.peak_tape_bytes() < tape2.peak_tape_bytes(),
        "dropping the first scope's interiors must lower the high-water mark \
         ({} vs {})",
        tape.peak_tape_bytes(),
        tape2.peak_tape_bytes()
    );
}

/// The `checkpoint_scope` closure API keeps exactly what the closure
/// returns and matches manual begin/end bitwise.
#[test]
fn checkpoint_scope_closure_matches_manual() {
    let inp = gen_inputs(7);
    let run_closure = || {
        let tape = Tape::new();
        let x = tape.leaf(inp.x0.clone(), true);
        let w = tape.leaf(inp.w.clone(), true);
        let h = tape.checkpoint_scope(|| {
            let a = tape.matmul(x, w);
            let b = tape.sigmoid(a);
            tape.matmul(b, w)
        });
        let loss = tape.sum_all(h);
        let grads = tape.backward(loss);
        (
            tape.value_cloned(loss),
            grads.get(x).unwrap().clone(),
            grads.get(w).unwrap().clone(),
        )
    };
    let run_manual = || {
        let tape = Tape::new();
        let x = tape.leaf(inp.x0.clone(), true);
        let w = tape.leaf(inp.w.clone(), true);
        let scope = tape.begin_checkpoint();
        let a = tape.matmul(x, w);
        let b = tape.sigmoid(a);
        let h = tape.matmul(b, w);
        tape.end_checkpoint(scope, &[h]);
        let loss = tape.sum_all(h);
        let grads = tape.backward(loss);
        (
            tape.value_cloned(loss),
            grads.get(x).unwrap().clone(),
            grads.get(w).unwrap().clone(),
        )
    };
    assert_eq!(run_closure(), run_manual());
}

/// Fault injection: a recomputed buffer that does not reproduce the
/// recorded fingerprint must surface as `MgError::Corrupt` from
/// `try_backward` — never as silently wrong gradients. The hook is
/// one-shot and the error is raised before the bad value is stored, so
/// a retry on the same tape succeeds and still matches the retained
/// run bitwise.
#[test]
fn corrupted_replay_is_a_typed_error_not_wrong_gradients() {
    let inp = gen_inputs(11);
    let tape = Tape::new();
    let x = tape.leaf(inp.x0.clone(), true);
    let w = tape.leaf(inp.w.clone(), true);
    let scope = tape.begin_checkpoint();
    let a = tape.matmul(x, w);
    let b = tape.tanh(a);
    let c = tape.matmul(b, w);
    tape.end_checkpoint(scope, &[c]);
    let loss = tape.mean_all(tape.mul_elem(c, c));

    tape.corrupt_next_replay(b);
    let err = match tape.try_backward(loss) {
        Err(e) => e,
        Ok(_) => panic!("corrupted replay must fail"),
    };
    match &err {
        MgError::Corrupt { section, detail } => {
            assert_eq!(*section, "tape-replay");
            assert!(
                detail.contains("replayed to a different value"),
                "detail: {detail}"
            );
        }
        other => panic!("expected MgError::Corrupt, got {other:?}"),
    }

    // the hook is one-shot: an uncorrupted retry succeeds...
    let grads = tape.try_backward(loss).expect("clean replay must succeed");

    // ...and agrees bitwise with a fully retained run.
    let tape2 = Tape::new();
    let x2 = tape2.leaf(inp.x0.clone(), true);
    let w2 = tape2.leaf(inp.w.clone(), true);
    let a2 = tape2.matmul(x2, w2);
    let b2 = tape2.tanh(a2);
    let c2 = tape2.matmul(b2, w2);
    let loss2 = tape2.mean_all(tape2.mul_elem(c2, c2));
    let grads2 = tape2.backward(loss2);
    assert_eq!(grads.get(x).unwrap(), grads2.get(x2).unwrap());
    assert_eq!(grads.get(w).unwrap(), grads2.get(w2).unwrap());
}

/// Pool sweep: parity must hold for every thread count, and the
/// checkpointed gradients must also be bitwise stable *across* pool
/// widths (the kernels promise width-independence; replay must not
/// break it).
#[cfg(feature = "parallel")]
mod parallel {
    use super::*;
    use mg_runtime::{with_pool, Pool};
    use std::sync::Arc;

    #[test]
    fn parity_holds_across_pool_widths() {
        for seed in [3u64, 17, 4242] {
            let program = gen_program(seed, 14);
            let inp = gen_inputs(seed);
            let mut first: Option<(Matrix, Option<Matrix>)> = None;
            for threads in 1..=4 {
                let pool = Arc::new(Pool::new(threads));
                let (retained, ckpt) = with_pool(pool, || {
                    (run(&program, &inp, false), run(&program, &inp, true))
                });
                assert_eq!(retained.loss, ckpt.loss, "{threads} threads, seed {seed}");
                assert_eq!(retained.gx0, ckpt.gx0, "{threads} threads, seed {seed}");
                assert_eq!(retained.gw, ckpt.gw, "{threads} threads, seed {seed}");
                assert_eq!(retained.gvals, ckpt.gvals, "{threads} threads, seed {seed}");
                assert_eq!(retained.gbias, ckpt.gbias, "{threads} threads, seed {seed}");
                match &first {
                    None => first = Some((ckpt.gx0.clone(), ckpt.gw.clone())),
                    Some((gx0, gw)) => {
                        assert_eq!(gx0, &ckpt.gx0, "pool-width drift, seed {seed}");
                        assert_eq!(gw, &ckpt.gw, "pool-width drift, seed {seed}");
                    }
                }
            }
        }
    }
}

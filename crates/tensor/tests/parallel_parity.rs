//! Bitwise parity between serial and parallel kernel execution.
//!
//! Every kernel dispatched through `mg-runtime` promises results
//! *bitwise identical* to the serial path for any thread count. These
//! tests sweep pools of 1..=8 threads via `with_pool` (so no environment
//! variables are involved) and compare against the `*_serial` reference
//! implementations with exact `==`, both for forward kernels and for
//! full gradients through the tape.

#![cfg(feature = "parallel")]

use std::rc::Rc;
use std::sync::Arc;

use mg_runtime::{with_pool, Pool};
use mg_tensor::{Csr, Matrix, Tape};
use proptest::prelude::*;

/// Thread counts swept by every parity test. 1 exercises the serial
/// degradation path (`MG_NUM_THREADS=1` builds the same one-thread pool
/// for the global); the rest oversubscribe this machine freely.
const THREADS: std::ops::RangeInclusive<usize> = 1..=8;

fn pools() -> impl Iterator<Item = Arc<Pool>> {
    THREADS.map(|k| Arc::new(Pool::new(k)))
}

/// Bitwise references for the dispatched matmul family. The parallel
/// contract is always "bitwise equal to the same build's serial run":
/// by default that serial run is the scalar kernel, under `fast-kernels`
/// it is the blocked kernel (the scalar-vs-blocked pairing is
/// tolerance-checked in `kernel_parity.rs`, not here).
fn matmul_ref(a: &Matrix, b: &Matrix) -> Matrix {
    if cfg!(feature = "fast-kernels") {
        a.matmul_blocked(b)
    } else {
        a.matmul_serial(b)
    }
}

fn matmul_tn_ref(a: &Matrix, b: &Matrix) -> Matrix {
    if cfg!(feature = "fast-kernels") {
        a.matmul_tn_blocked(b)
    } else {
        a.matmul_tn_serial(b)
    }
}

fn matmul_nt_ref(a: &Matrix, b: &Matrix) -> Matrix {
    if cfg!(feature = "fast-kernels") {
        a.matmul_nt_blocked(b)
    } else {
        a.matmul_nt_serial(b)
    }
}

/// Strategy: a random matrix with the given shape bounds. Shapes go well
/// past the parallel thresholds so chunked paths actually run.
fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a random CSR structure with values, `rows x cols`, dense
/// enough to matter and tall enough to cross MIN_SPARSE_ROWS.
fn csr_with_values(rows: usize, cols: usize) -> impl Strategy<Value = (Csr, Vec<f64>)> {
    proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 1..rows * 4).prop_flat_map(
        move |set| {
            let entries: Vec<(u32, u32)> = set.into_iter().collect();
            let nnz = entries.len();
            proptest::collection::vec(-5.0..5.0f64, nnz)
                .prop_map(move |vals| (Csr::from_coo(rows, cols, &entries), vals))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_parity((a, b) in (1..40usize, 1..40usize, 1..40usize).prop_flat_map(|(r, k, c)| {
        (
            proptest::collection::vec(-5.0..5.0f64, r * k),
            proptest::collection::vec(-5.0..5.0f64, k * c),
        )
            .prop_map(move |(a, b)| (Matrix::from_vec(r, k, a), Matrix::from_vec(k, c, b)))
    })) {
        let reference = matmul_ref(&a, &b);
        for pool in pools() {
            let got = with_pool(pool.clone(), || a.matmul(&b));
            prop_assert_eq!(got.data(), reference.data());
        }
    }

    #[test]
    fn matmul_tn_parity(a in matrix(1..48, 1..20), q in 1..20usize) {
        // a: n x p; b must be n x q
        let b = Matrix::from_fn(a.rows(), q, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let reference = matmul_tn_ref(&a, &b);
        for pool in pools() {
            let got = with_pool(pool.clone(), || a.matmul_tn(&b));
            prop_assert_eq!(got.data(), reference.data());
        }
    }

    #[test]
    fn matmul_nt_parity(a in matrix(1..48, 1..16), rows_b in 1..37usize) {
        // a: n x p; b must be q x p
        let b = Matrix::from_fn(rows_b, a.cols(), |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        let reference = matmul_nt_ref(&a, &b);
        for pool in pools() {
            let got = with_pool(pool.clone(), || a.matmul_nt(&b));
            prop_assert_eq!(got.data(), reference.data());
        }
    }

    #[test]
    fn elementwise_parity(m in matrix(260..300, 260..300)) {
        // 260x260 = 67600+ elements: past MIN_ELEMS (32768, so two full
        // chunks) — the chunked path actually engages.
        let mapped_ref = {
            let serial: Vec<f64> = m.data().iter().map(|&x| (x * 1.5).tanh()).collect();
            serial
        };
        let zipped_ref: Vec<f64> =
            m.data().iter().map(|&x| x * x + 0.5 * x).collect();
        for pool in pools() {
            let mapped = with_pool(pool.clone(), || m.map(|x| (x * 1.5).tanh()));
            prop_assert_eq!(mapped.data(), &mapped_ref[..]);
            let zipped = with_pool(pool.clone(), || m.zip(&m, |a, b| a * b + 0.5 * a));
            prop_assert_eq!(zipped.data(), &zipped_ref[..]);
            let mut acc = Matrix::zeros(m.rows(), m.cols());
            with_pool(pool.clone(), || acc.add_scaled(&m, 0.25));
            let acc_ref: Vec<f64> = m.data().iter().map(|&x| 0.25 * x).collect();
            prop_assert_eq!(acc.data(), &acc_ref[..]);
        }
    }

    #[test]
    fn spmm_parity((csr, vals) in csr_with_values(200, 60), d in 1..24usize) {
        let x = Matrix::from_fn(60, d, |i, j| ((i * 13 + j * 5) % 17) as f64 * 0.25 - 2.0);
        let reference = csr.spmm_serial(&vals, &x);
        for pool in pools() {
            let got = with_pool(pool.clone(), || csr.spmm(&vals, &x));
            prop_assert_eq!(got.data(), reference.data());
        }
    }

    #[test]
    fn spmm_bias_relu_parity((csr, vals) in csr_with_values(200, 60), d in 1..24usize) {
        let x = Matrix::from_fn(60, d, |i, j| ((i * 13 + j * 5) % 17) as f64 * 0.25 - 2.0);
        let bias: Vec<f64> = (0..d).map(|j| (j % 5) as f64 * 0.3 - 0.6).collect();
        let reference = csr.spmm_bias_relu_serial(&vals, &x, &bias);
        for pool in pools() {
            let got = with_pool(pool.clone(), || csr.spmm_bias_relu(&vals, &x, &bias));
            prop_assert_eq!(got.data(), reference.data());
        }
    }

    #[test]
    fn spmm_t_parity((csr, vals) in csr_with_values(90, 200), d in 1..24usize) {
        let x = Matrix::from_fn(90, d, |i, j| ((i * 7 + j * 11) % 19) as f64 * 0.125 - 1.0);
        let reference = csr.spmm_t_serial(&vals, &x);
        for pool in pools() {
            let got = with_pool(pool.clone(), || csr.spmm_t(&vals, &x));
            prop_assert_eq!(got.data(), reference.data());
        }
    }

    #[test]
    fn spmm_t_transpose_cache_parity((csr, vals) in csr_with_values(90, 200), d in 1..16usize) {
        // The parallel spmm_t family partitions over the lazily-built
        // transpose cache. Check both kernels against the serial scatter
        // reference with a cold cache (first parallel call builds it) and
        // again with an explicitly warmed cache, across pools 1..=8.
        let x = Matrix::from_fn(90, d, |i, j| ((i * 3 + j * 13) % 23) as f64 * 0.25 - 2.5);
        let g = Matrix::from_fn(200, d, |i, j| ((i * 5 + j * 7) % 17) as f64 * 0.5 - 4.0);
        let f_ref = csr.spmm_t_serial(&vals, &x);
        let gv_ref = csr.spmm_t_grad_values_serial(&g, &x);
        // a structurally-equal rebuild whose cache is guaranteed cold
        let cold = Csr::from_parts(
            csr.rows(), csr.cols(), csr.indptr().to_vec(), csr.indices().to_vec(),
        );
        prop_assert_eq!(&cold, &csr);
        for pool in pools() {
            let got = with_pool(pool.clone(), || cold.spmm_t(&vals, &x));
            prop_assert_eq!(got.data(), f_ref.data());
            let gv = with_pool(pool.clone(), || cold.spmm_t_grad_values(&g, &x));
            prop_assert_eq!(gv.data(), gv_ref.data());
        }
        // warm the cache through the public API, then re-check; a clone
        // shares the warm cache and must agree too
        let _ = csr.transpose_struct();
        let warm_clone = csr.clone();
        for pool in pools() {
            let got = with_pool(pool.clone(), || csr.spmm_t(&vals, &x));
            prop_assert_eq!(got.data(), f_ref.data());
            let got_clone = with_pool(pool.clone(), || warm_clone.spmm_t(&vals, &x));
            prop_assert_eq!(got_clone.data(), f_ref.data());
            let gv = with_pool(pool.clone(), || csr.spmm_t_grad_values(&g, &x));
            prop_assert_eq!(gv.data(), gv_ref.data());
        }
    }

    #[test]
    fn gradient_parity((csr, vals) in csr_with_values(150, 40), w_cols in 1..12usize) {
        // Loss = sum(relu(A · X) · W) exercises spmm forward, the spmm
        // value-gradient kernel, matmul forward/backward (matmul_nt,
        // matmul_tn) and elementwise zip in one tape.
        let d = 8;
        let x_init = Matrix::from_fn(40, d, |i, j| ((i * 3 + j) % 7) as f64 * 0.5 - 1.5);
        let w = Matrix::from_fn(d, w_cols, |i, j| ((i + j * 2) % 5) as f64 * 0.3 - 0.6);
        let run = || {
            let tape = Tape::new();
            let values = tape.leaf(Matrix::from_vec(1, vals.len(), vals.clone()), true);
            let x = tape.leaf(x_init.clone(), true);
            let wv = tape.leaf(w.clone(), true);
            let h = tape.spmm(Rc::new(csr.clone()), values, x);
            let h = tape.relu(h);
            let y = tape.matmul(h, wv);
            let loss = tape.sum_all(y);
            let grads = tape.backward(loss);
            (
                grads.get(values).unwrap().clone(),
                grads.get(x).unwrap().clone(),
                grads.get(wv).unwrap().clone(),
            )
        };
        let reference = with_pool(Arc::new(Pool::new(1)), run);
        for pool in pools() {
            let got = with_pool(pool.clone(), run);
            prop_assert_eq!(got.0.data(), reference.0.data());
            prop_assert_eq!(got.1.data(), reference.1.data());
            prop_assert_eq!(got.2.data(), reference.2.data());
        }
    }

    #[test]
    fn gradient_parity_spmm_t((csr, vals) in csr_with_values(40, 150)) {
        // Loss = sum(Aᵀ · X) exercises spmm_t forward and its
        // value-gradient kernel.
        let d = 6;
        let x_init = Matrix::from_fn(40, d, |i, j| ((i * 5 + j) % 9) as f64 * 0.25 - 1.0);
        let run = || {
            let tape = Tape::new();
            let values = tape.leaf(Matrix::from_vec(1, vals.len(), vals.clone()), true);
            let x = tape.leaf(x_init.clone(), true);
            let h = tape.spmm_t(Rc::new(csr.clone()), values, x);
            let loss = tape.sum_all(h);
            let grads = tape.backward(loss);
            (grads.get(values).unwrap().clone(), grads.get(x).unwrap().clone())
        };
        let reference = with_pool(Arc::new(Pool::new(1)), run);
        for pool in pools() {
            let got = with_pool(pool.clone(), run);
            prop_assert_eq!(got.0.data(), reference.0.data());
            prop_assert_eq!(got.1.data(), reference.1.data());
        }
    }
}

/// `Pool::new(1)` is exactly the pool `MG_NUM_THREADS=1` builds for the
/// global; under it every kernel must take the inline serial path and
/// match the `*_serial` reference trivially (no workers are even
/// spawned — see `mg_runtime::Pool`).
#[test]
fn one_thread_degrades_to_serial() {
    let a = Matrix::from_fn(64, 32, |i, j| (i * j) as f64 * 0.01 - 5.0);
    let b = Matrix::from_fn(32, 48, |i, j| (i + j) as f64 * 0.1 - 2.0);
    let pool = Arc::new(Pool::new(1));
    assert!(!pool.is_parallel());
    let (mm, tn, nt) = with_pool(pool, || (a.matmul(&b), a.matmul_tn(&a), a.matmul_nt(&a)));
    assert_eq!(mm, matmul_ref(&a, &b));
    assert_eq!(tn, matmul_tn_ref(&a, &a));
    assert_eq!(nt, matmul_nt_ref(&a, &a));
}

/// The kernel-stats registry sees the dispatched ops.
#[test]
fn kernel_stats_record_ops() {
    let a = Matrix::from_fn(16, 16, |i, j| (i + j) as f64);
    let _ = a.matmul(&a);
    let snap = mg_runtime::KernelStats::snapshot();
    assert!(
        snap.iter()
            .any(|(name, s)| *name == "matmul" && s.calls >= 1),
        "matmul missing from {snap:?}"
    );
    let json = mg_runtime::KernelStats::to_json();
    assert!(json.contains("\"op\": \"matmul\""));
}

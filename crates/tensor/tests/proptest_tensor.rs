//! Property-based tests for `Matrix` and `Csr` invariants.

use mg_tensor::{softmax_rows, Csr, Matrix};
use proptest::prelude::*;

/// Strategy: a random matrix with bounded shape and values.
fn matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: matching pair for matmul (a: r x k, b: k x c).
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..6usize, 1..6usize, 1..6usize).prop_flat_map(|(r, k, c)| {
        (
            proptest::collection::vec(-5.0..5.0f64, r * k),
            proptest::collection::vec(-5.0..5.0f64, k * c),
        )
            .prop_map(move |(a, b)| (Matrix::from_vec(r, k, a), Matrix::from_vec(k, c, b)))
    })
}

/// Strategy: a random sparse pattern with values.
fn csr_with_values() -> impl Strategy<Value = (Csr, Vec<f64>)> {
    (2..8usize, 2..8usize).prop_flat_map(|(r, c)| {
        proptest::collection::btree_set((0..r as u32, 0..c as u32), 0..(r * c).min(12))
            .prop_flat_map(move |set| {
                let entries: Vec<(u32, u32)> = set.into_iter().collect();
                let nnz = entries.len();
                proptest::collection::vec(-5.0..5.0f64, nnz)
                    .prop_map(move |vals| (Csr::from_coo(r, c, &entries), vals))
            })
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix(8, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left(m in matrix(6, 6)) {
        let id = Matrix::eye(m.rows());
        let out = id.matmul(&m);
        for i in 0..m.len() {
            prop_assert!((out.data()[i] - m.data()[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair()) {
        // (A B)^T == B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for i in 0..left.len() {
            prop_assert!((left.data()[i] - right.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_tn_nt_agree_with_naive((a, b) in matmul_pair()) {
        let tn = a.transpose().matmul_tn(&b); // (A^T)^T B = A B
        let plain = a.matmul(&b);
        for i in 0..tn.len() {
            prop_assert!((tn.data()[i] - plain.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(6, 6)) {
        let s = softmax_rows(&m);
        for i in 0..s.rows() {
            let sum: f64 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(s.row(i).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn csr_spmm_matches_dense((csr, vals) in csr_with_values(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Matrix::uniform(csr.cols(), 3, -2.0, 2.0, &mut rng);
        let sparse = csr.spmm(&vals, &x);
        let dense = csr.to_dense(&vals).matmul(&x);
        for i in 0..sparse.len() {
            prop_assert!((sparse.data()[i] - dense.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_spmm_t_matches_dense((csr, vals) in csr_with_values(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Matrix::uniform(csr.rows(), 3, -2.0, 2.0, &mut rng);
        let sparse = csr.spmm_t(&vals, &x);
        let dense = csr.to_dense(&vals).transpose().matmul(&x);
        for i in 0..sparse.len() {
            prop_assert!((sparse.data()[i] - dense.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_transpose_struct_preserves_entries((csr, vals) in csr_with_values()) {
        let (t, perm) = csr.transpose_struct();
        prop_assert_eq!(t.nnz(), csr.nnz());
        let tvals: Vec<f64> = perm.iter().map(|&k| vals[k]).collect();
        prop_assert_eq!(t.to_dense(&tvals), csr.to_dense(&vals).transpose());
    }

    #[test]
    fn csr_spgemm_matches_dense(
        (a, va) in csr_with_values(),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // build a compatible random B
        let bc = 4usize;
        let mut entries = Vec::new();
        for r in 0..a.cols() {
            for c in 0..bc {
                if rand::RngExt::random::<f64>(&mut rng) < 0.4 {
                    entries.push((r as u32, c as u32));
                }
            }
        }
        let vb: Vec<f64> = (0..entries.len())
            .map(|_| rand::RngExt::random_range(&mut rng, -3.0..3.0))
            .collect();
        let b = Csr::from_coo(a.cols(), bc, &entries);
        let (c, vc) = a.spgemm(&va, &b, &vb);
        let dense = a.to_dense(&va).matmul(&b.to_dense(&vb));
        let got = c.to_dense(&vc);
        for i in 0..dense.len() {
            prop_assert!((got.data()[i] - dense.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn vstack_preserves_rows(m1 in matrix(4, 3), seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m2 = Matrix::uniform(2, m1.cols(), -1.0, 1.0, &mut rng);
        let v = Matrix::vstack(&[&m1, &m2]);
        prop_assert_eq!(v.rows(), m1.rows() + 2);
        prop_assert_eq!(v.row(0), m1.row(0));
        prop_assert_eq!(v.row(m1.rows()), m2.row(0));
    }
}

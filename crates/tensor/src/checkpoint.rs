//! Gradient checkpointing: recompute-on-backward for marked tape segments.
//!
//! A *checkpoint scope* brackets a contiguous run of tape nodes. When the
//! scope closes, every interior value — anything recorded inside the
//! scope that is neither a leaf nor in the caller's `keep` set — is
//! dropped, and the scope is remembered as a [`Segment`]. The ops
//! themselves stay on the tape, so `backward` can re-execute them (via
//! [`crate::ops::eval_op`], the same evaluator the forward constructors
//! use) to rebuild exactly the buffers the retaining tape would have
//! held, then run the unchanged gradient kernels over them.
//!
//! ## The bitwise-replay contract
//!
//! Replay produces bit-identical values because it is the *same code* on
//! the *same inputs*: forward construction and replay share one
//! evaluator, and every source of nondeterminism is frozen into the op
//! payload at record time (dropout masks, argmax rows, BCE logits, the
//! Student-t kernel, `inv_std`). Nothing is re-drawn from an RNG and no
//! reduction is reassociated, so gradients under checkpointing are
//! bitwise identical to the retaining tape — which is what lets the
//! golden differential suites pin checkpointed runs against retained
//! goldens. As a belt-and-braces guard, each dropped value's FNV-1a
//! fingerprint (over the IEEE-754 bit patterns) is recorded at drop time
//! and re-checked after replay; a mismatch surfaces as a typed
//! [`MgError::Corrupt`] instead of silently wrong gradients.
//!
//! ## Memory model
//!
//! Peak tape memory with checkpointing is roughly: retained values
//! (leaves + `keep` sets) plus the largest single segment's interior,
//! because `backward` materialises at most the segments it is currently
//! sweeping and re-drops each segment once the sweep passes below its
//! start. [`crate::Tape::peak_tape_bytes`] measures the realised
//! high-water mark across forward and backward.

use crate::error::MgError;
use crate::matrix::Matrix;
use crate::ops::eval_op;
use crate::tape::{bytes_of, Node, Op, Tape, Var};

/// A closed checkpoint segment: tape interval `[start, end)` whose
/// interior values were dropped at scope end.
pub(crate) struct Segment {
    pub start: usize,
    /// One past the last node recorded inside the scope.
    pub end: usize,
    /// Indices of the dropped nodes, ascending (replay order).
    pub dropped: Vec<usize>,
    /// FNV-1a fingerprint of each dropped value at drop time, parallel
    /// to `dropped`; replay must reproduce these bits exactly.
    pub prints: Vec<u64>,
}

/// Token for an open checkpoint scope. Deliberately not `Copy`/`Clone`:
/// each scope must be consumed by exactly one
/// [`Tape::end_checkpoint`] or [`Tape::abort_checkpoint`].
#[must_use]
pub struct CheckpointScope {
    pub(crate) start: usize,
}

/// Values a [`Tape::checkpoint_scope`] closure keeps live — the segment
/// outputs that downstream ops (and post-scope reads) may touch.
pub trait KeepVars {
    fn keep_vars(&self, out: &mut Vec<Var>);
}

impl KeepVars for Var {
    fn keep_vars(&self, out: &mut Vec<Var>) {
        out.push(*self);
    }
}

impl KeepVars for (Var, Var) {
    fn keep_vars(&self, out: &mut Vec<Var>) {
        out.push(self.0);
        out.push(self.1);
    }
}

impl KeepVars for (Var, Var, Var) {
    fn keep_vars(&self, out: &mut Vec<Var>) {
        out.push(self.0);
        out.push(self.1);
        out.push(self.2);
    }
}

impl KeepVars for Vec<Var> {
    fn keep_vars(&self, out: &mut Vec<Var>) {
        out.extend_from_slice(self);
    }
}

impl<const N: usize> KeepVars for [Var; N] {
    fn keep_vars(&self, out: &mut Vec<Var>) {
        out.extend_from_slice(self);
    }
}

impl KeepVars for Option<Var> {
    fn keep_vars(&self, out: &mut Vec<Var>) {
        if let Some(v) = self {
            out.push(*v);
        }
    }
}

/// FNV-1a over the IEEE-754 bit patterns — order-sensitive and exact, so
/// any single-bit divergence between forward and replay is caught.
pub(crate) fn fingerprint(m: &Matrix) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in m.data() {
        let mut bits = x.to_bits();
        for _ in 0..8 {
            h ^= bits & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            bits >>= 8;
        }
    }
    h
}

/// Append every input handle of `op` to `out`.
pub(crate) fn op_inputs(op: &Op, out: &mut Vec<Var>) {
    match op {
        Op::Leaf => {}
        Op::Add(a, b)
        | Op::Sub(a, b)
        | Op::MulElem(a, b)
        | Op::AddBias(a, b)
        | Op::MatMul(a, b)
        | Op::RowDot(a, b) => {
            out.push(*a);
            out.push(*b);
        }
        Op::Scale(a, _)
        | Op::AddScalar(a, _)
        | Op::Transpose(a)
        | Op::Relu(a)
        | Op::LeakyRelu(a, _)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::SoftmaxRows(a)
        | Op::LogSoftmaxRows(a)
        | Op::SumAll(a)
        | Op::MeanAll(a)
        | Op::MeanRows(a)
        | Op::SumRows(a)
        | Op::Exp(a)
        | Op::Ln(a) => out.push(*a),
        Op::Spmm { values, dense, .. } | Op::SpmmT { values, dense, .. } => {
            out.push(*values);
            out.push(*dense);
        }
        Op::SpmmBiasRelu {
            values,
            dense,
            bias,
            ..
        } => {
            out.push(*values);
            out.push(*dense);
            out.push(*bias);
        }
        Op::GatherRows { src, .. }
        | Op::SegmentSum { src, .. }
        | Op::SliceCols { src, .. }
        | Op::MaxRows { src, .. }
        | Op::Dropout { src, .. }
        | Op::Reshape { src, .. }
        | Op::ColNormalize { src, .. } => out.push(*src),
        Op::SegmentSoftmax { scores, .. } => out.push(*scores),
        Op::MulCol { a, col } => {
            out.push(*a);
            out.push(*col);
        }
        Op::ConcatCols(parts) => out.extend_from_slice(parts),
        Op::NllLoss { logp, .. } => out.push(*logp),
        Op::BcePairs { h, .. } | Op::StudentTKl { h, .. } => out.push(*h),
    }
}

impl Tape {
    /// Open a checkpoint scope. Every op recorded until the matching
    /// [`Tape::end_checkpoint`] belongs to the scope; interiors will be
    /// dropped when it closes. Scopes do not nest.
    pub fn begin_checkpoint(&self) -> CheckpointScope {
        assert!(
            self.open_scope.get().is_none(),
            "begin_checkpoint: nested checkpoint scopes are not supported"
        );
        let start = self.nodes.borrow().len();
        self.open_scope.set(Some(start));
        CheckpointScope { start }
    }

    /// Close a checkpoint scope, dropping every interior value — nodes
    /// recorded inside the scope that are neither leaves nor listed in
    /// `keep`. Leaves are never dropped: they are the replay inputs that
    /// cannot be recomputed. A scope with nothing to drop records no
    /// segment.
    pub fn end_checkpoint(&self, scope: CheckpointScope, keep: &[Var]) {
        assert_eq!(
            self.open_scope.get(),
            Some(scope.start),
            "end_checkpoint: scope token does not match the open scope"
        );
        self.open_scope.set(None);
        let start = scope.start;
        let mut nodes = self.nodes.borrow_mut();
        let end = nodes.len();
        let mut kept = vec![false; end - start];
        for v in keep {
            if (start..end).contains(&v.0) {
                kept[v.0 - start] = true;
            }
        }
        let mut dropped = Vec::new();
        let mut prints = Vec::new();
        let mut freed = 0usize;
        for i in start..end {
            if kept[i - start] || matches!(nodes[i].op, Op::Leaf) {
                continue;
            }
            let value = nodes[i]
                .value
                .take()
                .expect("open-scope values are always materialised");
            freed += bytes_of(&value);
            prints.push(fingerprint(&value));
            dropped.push(i);
        }
        drop(nodes);
        self.sub_live_bytes(freed);
        if !dropped.is_empty() {
            let mut segments = self.segments.borrow_mut();
            debug_assert!(
                segments.last().is_none_or(|s| s.end <= start),
                "checkpoint segments must be disjoint and ascending"
            );
            segments.push(Segment {
                start,
                end,
                dropped,
                prints,
            });
        }
    }

    /// Discard an open scope without dropping anything (e.g. on an early
    /// exit from a forward block).
    pub fn abort_checkpoint(&self, scope: CheckpointScope) {
        assert_eq!(
            self.open_scope.get(),
            Some(scope.start),
            "abort_checkpoint: scope token does not match the open scope"
        );
        self.open_scope.set(None);
    }

    /// Run `f` inside a checkpoint scope, keeping exactly the [`Var`]s in
    /// its return value live (see [`KeepVars`] for accepted shapes).
    pub fn checkpoint_scope<R: KeepVars>(&self, f: impl FnOnce() -> R) -> R {
        let scope = self.begin_checkpoint();
        let out = f();
        let mut keep = Vec::new();
        out.keep_vars(&mut keep);
        self.end_checkpoint(scope, &keep);
        out
    }

    /// Materialise everything `backward` needs to process node `idx`: the
    /// node's own value and all of its op inputs. Dropped values pull in
    /// their whole containing segment (segment granularity is the unit of
    /// replay).
    pub(crate) fn ensure_for_backward(
        &self,
        nodes: &mut [Node],
        segments: &[Segment],
        idx: usize,
    ) -> Result<(), MgError> {
        let mut need = vec![Var(idx)];
        op_inputs(&nodes[idx].op, &mut need);
        for v in need {
            if nodes[v.0].value.is_none() {
                let s = segment_containing(segments, v.0)
                    .expect("dropped value outside any checkpoint segment");
                self.materialize_segment(nodes, segments, s)?;
            }
        }
        Ok(())
    }

    /// Replay a segment's dropped ops in recording order, rebuilding each
    /// value and checking it against the fingerprint captured at drop
    /// time. Inputs living in earlier (already re-dropped) segments are
    /// materialised recursively; recursion terminates because segment
    /// starts strictly decrease.
    pub(crate) fn materialize_segment(
        &self,
        nodes: &mut [Node],
        segments: &[Segment],
        s: usize,
    ) -> Result<(), MgError> {
        let seg = &segments[s];
        for (&j, &expected) in seg.dropped.iter().zip(&seg.prints) {
            if nodes[j].value.is_some() {
                continue;
            }
            let mut inputs = Vec::new();
            op_inputs(&nodes[j].op, &mut inputs);
            for v in inputs {
                if nodes[v.0].value.is_none() {
                    let s2 = segment_containing(segments, v.0)
                        .expect("dropped value outside any checkpoint segment");
                    debug_assert!(s2 < s, "op inputs precede their segment");
                    self.materialize_segment(nodes, segments, s2)?;
                }
            }
            let mut value = eval_op(nodes, &nodes[j].op);
            if self.corrupt_replay.get() == Some(j) {
                self.corrupt_replay.set(None);
                if let Some(x) = value.data_mut().first_mut() {
                    *x += 1.0;
                }
            }
            let got = fingerprint(&value);
            if got != expected {
                return Err(MgError::Corrupt {
                    section: "tape-replay",
                    detail: format!(
                        "node {j} replayed to a different value than the forward pass \
                         recorded (fingerprint {got:016x}, expected {expected:016x}); \
                         gradients would be silently wrong"
                    ),
                });
            }
            self.add_live_bytes(bytes_of(&value));
            nodes[j].value = Some(value);
        }
        Ok(())
    }

    /// Drop a segment's interior values again (the backward sweep has
    /// passed below its start, so nothing can need them anymore).
    pub(crate) fn redrop_segment(&self, nodes: &mut [Node], seg: &Segment) {
        let mut freed = 0usize;
        for &j in &seg.dropped {
            if let Some(value) = nodes[j].value.take() {
                freed += bytes_of(&value);
            }
        }
        self.sub_live_bytes(freed);
    }
}

/// Index of the segment whose `[start, end)` interval contains `idx`.
pub(crate) fn segment_containing(segments: &[Segment], idx: usize) -> Option<usize> {
    let p = segments.partition_point(|s| s.end <= idx);
    (p < segments.len() && segments[p].start <= idx).then_some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn scope_drops_interiors_keeps_outputs_and_leaves() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]), true);
        let scope = tape.begin_checkpoint();
        let inner_leaf = tape.constant(Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]));
        let b = tape.add(a, inner_leaf);
        let c = tape.tanh(b);
        tape.end_checkpoint(scope, &[c]);
        assert!(tape.is_materialized(a));
        assert!(tape.is_materialized(inner_leaf), "leaves are never dropped");
        assert!(!tape.is_materialized(b), "interior is dropped");
        assert!(tape.is_materialized(c), "kept output survives");
    }

    #[test]
    fn empty_scope_records_no_segment() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]), true);
        let scope = tape.begin_checkpoint();
        let b = tape.relu(a);
        tape.end_checkpoint(scope, &[b]);
        assert!(tape.segments.borrow().is_empty());
    }

    #[test]
    fn abort_leaves_everything_materialised() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]), true);
        let scope = tape.begin_checkpoint();
        let b = tape.relu(a);
        tape.abort_checkpoint(scope);
        assert!(tape.is_materialized(b));
        assert!(tape.segments.borrow().is_empty());
    }

    #[test]
    #[should_panic(expected = "nested checkpoint scopes")]
    fn nested_scopes_panic() {
        let tape = Tape::new();
        let _outer = tape.begin_checkpoint();
        let _inner = tape.begin_checkpoint();
    }

    #[test]
    fn checkpoint_scope_keeps_returned_vars() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(2, 2, vec![1., -2., 3., -4.]), true);
        let (r, s) = tape.checkpoint_scope(|| {
            let r = tape.relu(a);
            let t = tape.scale(r, 2.0);
            let s = tape.sigmoid(t);
            (r, s)
        });
        assert!(tape.is_materialized(r));
        assert!(tape.is_materialized(s));
        let seg = tape.segments.borrow();
        assert_eq!(seg.len(), 1);
        assert_eq!(seg[0].dropped.len(), 1);
    }

    #[test]
    fn fingerprint_is_bit_sensitive() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let mut b = a.clone();
        b.data_mut()[1] = f64::from_bits(2.0f64.to_bits() ^ 1);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn segment_containing_finds_intervals() {
        let segs = vec![
            Segment {
                start: 2,
                end: 5,
                dropped: vec![],
                prints: vec![],
            },
            Segment {
                start: 8,
                end: 10,
                dropped: vec![],
                prints: vec![],
            },
        ];
        assert_eq!(segment_containing(&segs, 0), None);
        assert_eq!(segment_containing(&segs, 3), Some(0));
        assert_eq!(segment_containing(&segs, 5), None);
        assert_eq!(segment_containing(&segs, 9), Some(1));
        assert_eq!(segment_containing(&segs, 10), None);
    }
}

//! Central-difference gradient checking.
//!
//! Every op in this crate is validated against a numeric gradient; this is
//! the module that makes the autograd engine trustworthy without a
//! reference framework to compare against.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Result of a gradient check: the largest absolute and relative error
/// found over all checked inputs.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradient.
    pub max_abs_err: f64,
    /// Maximum relative difference (normalised by magnitude, floored at 1).
    pub max_rel_err: f64,
}

impl GradCheckReport {
    /// Whether the analytic gradient matches within tolerance.
    pub fn ok(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Check the analytic gradient of a scalar-valued function of several
/// matrix inputs against central differences.
///
/// `f` receives a fresh tape and leaf variables (one per input, all with
/// `requires_grad = true`) and must return a `1 x 1` loss variable.
///
/// # Panics
/// Panics if `f` returns a non-scalar.
pub fn check_gradients(
    inputs: &[Matrix],
    eps: f64,
    f: impl Fn(&Tape, &[Var]) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    let tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone(), true)).collect();
    let loss = f(&tape, &vars);
    let grads = tape.backward(loss);

    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    for (which, input) in inputs.iter().enumerate() {
        let analytic = grads
            .get(vars[which])
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(input.rows(), input.cols()));
        for idx in 0..input.len() {
            let numeric = {
                let mut plus = inputs.to_vec();
                plus[which].data_mut()[idx] += eps;
                let mut minus = inputs.to_vec();
                minus[which].data_mut()[idx] -= eps;
                (eval_scalar(&plus, &f) - eval_scalar(&minus, &f)) / (2.0 * eps)
            };
            let a = analytic.data()[idx];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1.0);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

fn eval_scalar(inputs: &[Matrix], f: &impl Fn(&Tape, &[Var]) -> Var) -> f64 {
    let tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone(), true)).collect();
    let loss = f(&tape, &vars);
    let v = tape.value(loss).scalar();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_matches() {
        // f(x) = sum(x ⊙ x); df/dx = 2x
        let x = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let report = check_gradients(&[x], 1e-5, |tape, vars| {
            let sq = tape.mul_elem(vars[0], vars[0]);
            tape.sum_all(sq)
        });
        assert!(report.ok(1e-6), "{report:?}");
    }

    #[test]
    fn constant_function_has_zero_gradient() {
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let report = check_gradients(&[x], 1e-5, |tape, _vars| {
            tape.constant(Matrix::from_vec(1, 1, vec![7.0]))
        });
        assert!(report.max_abs_err < 1e-12);
    }
}

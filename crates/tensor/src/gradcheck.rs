//! Central-difference gradient checking.
//!
//! Every op in this crate is validated against a numeric gradient; this is
//! the module that makes the autograd engine trustworthy without a
//! reference framework to compare against. [`check_gradients`] walks every
//! entry of every input; [`check_gradients_sampled`] central-differences a
//! seeded subset of entries per input so whole-model audits (thousands of
//! parameters driven through a full AdamGNN forward) stay tractable.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of a gradient check: the largest absolute and relative error
/// found over all checked inputs.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradient.
    /// A non-finite analytic or numeric gradient is folded in as
    /// `f64::INFINITY`, so NaNs fail a check instead of vanishing in the
    /// NaN-ignoring `f64::max`.
    pub max_abs_err: f64,
    /// Maximum relative difference (normalised by magnitude, floored at 1).
    pub max_rel_err: f64,
    /// Number of (input, entry) pairs actually differenced.
    pub entries_checked: usize,
}

impl GradCheckReport {
    /// Whether the analytic gradient matches within tolerance.
    pub fn ok(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Fold one analytic/numeric gradient pair into the running error maxima.
///
/// Non-finite entries (NaN analytic gradients from a broken backward,
/// overflowed numeric differences) become `f64::INFINITY` errors rather
/// than being silently dropped: `f64::max` ignores NaN, so without this a
/// NaN analytic gradient would vacuously pass every tolerance.
fn fold_err(max_abs: &mut f64, max_rel: &mut f64, analytic: f64, numeric: f64) {
    let (abs, rel) = if analytic.is_finite() && numeric.is_finite() {
        let abs = (analytic - numeric).abs();
        (abs, abs / analytic.abs().max(numeric.abs()).max(1.0))
    } else {
        (f64::INFINITY, f64::INFINITY)
    };
    *max_abs = max_abs.max(abs);
    *max_rel = max_rel.max(rel);
}

/// Check the analytic gradient of a scalar-valued function of several
/// matrix inputs against central differences.
///
/// `f` receives a fresh tape and leaf variables (one per input, all with
/// `requires_grad = true`) and must return a `1 x 1` loss variable.
///
/// # Panics
/// Panics if `f` returns a non-scalar.
pub fn check_gradients(
    inputs: &[Matrix],
    eps: f64,
    f: impl Fn(&Tape, &[Var]) -> Var,
) -> GradCheckReport {
    let all: Vec<Vec<usize>> = inputs.iter().map(|m| (0..m.len()).collect()).collect();
    check_entries(inputs, eps, &f, &all)
}

/// As [`check_gradients`], but central-differencing only `per_input`
/// seeded-random entries of each input (all entries when an input is
/// smaller than `per_input`).
///
/// This is the model-level audit entry point: driving a whole AdamGNN
/// forward per difference makes exhaustive checking quadratic in model
/// size, while a sampled subset still pins every parameter matrix with
/// high probability of catching a wrong backward (sign errors and scale
/// errors corrupt whole matrices, not single entries).
pub fn check_gradients_sampled(
    inputs: &[Matrix],
    eps: f64,
    per_input: usize,
    seed: u64,
    f: impl Fn(&Tape, &[Var]) -> Var,
) -> GradCheckReport {
    assert!(
        per_input > 0,
        "check_gradients_sampled: per_input must be > 0"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let picked: Vec<Vec<usize>> = inputs
        .iter()
        .map(|m| {
            let n = m.len();
            if n <= per_input {
                (0..n).collect()
            } else {
                // Floyd-style distinct sampling without replacement.
                let mut chosen = Vec::with_capacity(per_input);
                while chosen.len() < per_input {
                    let idx = rng.random_range(0..n);
                    if !chosen.contains(&idx) {
                        chosen.push(idx);
                    }
                }
                chosen.sort_unstable();
                chosen
            }
        })
        .collect();
    check_entries(inputs, eps, &f, &picked)
}

fn check_entries(
    inputs: &[Matrix],
    eps: f64,
    f: &impl Fn(&Tape, &[Var]) -> Var,
    entries: &[Vec<usize>],
) -> GradCheckReport {
    // Analytic pass.
    let tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone(), true)).collect();
    let loss = f(&tape, &vars);
    let grads = tape.backward(loss);

    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut checked = 0usize;
    for (which, input) in inputs.iter().enumerate() {
        let analytic = grads
            .get(vars[which])
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(input.rows(), input.cols()));
        for &idx in &entries[which] {
            let numeric = {
                let mut plus = inputs.to_vec();
                plus[which].data_mut()[idx] += eps;
                let mut minus = inputs.to_vec();
                minus[which].data_mut()[idx] -= eps;
                (eval_scalar(&plus, f) - eval_scalar(&minus, f)) / (2.0 * eps)
            };
            fold_err(&mut max_abs, &mut max_rel, analytic.data()[idx], numeric);
            checked += 1;
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        entries_checked: checked,
    }
}

fn eval_scalar(inputs: &[Matrix], f: &impl Fn(&Tape, &[Var]) -> Var) -> f64 {
    let tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone(), true)).collect();
    let loss = f(&tape, &vars);
    let v = tape.value(loss).scalar();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_matches() {
        // f(x) = sum(x ⊙ x); df/dx = 2x
        let x = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let report = check_gradients(&[x], 1e-5, |tape, vars| {
            let sq = tape.mul_elem(vars[0], vars[0]);
            tape.sum_all(sq)
        });
        assert!(report.ok(1e-6), "{report:?}");
        assert_eq!(report.entries_checked, 4);
    }

    #[test]
    fn constant_function_has_zero_gradient() {
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let report = check_gradients(&[x], 1e-5, |tape, _vars| {
            tape.constant(Matrix::from_vec(1, 1, vec![7.0]))
        });
        assert!(report.max_abs_err < 1e-12);
    }

    #[test]
    fn sampled_check_matches_exhaustive_on_quadratic() {
        let x = Matrix::from_vec(4, 4, (0..16).map(|i| 0.25 * i as f64 - 1.0).collect());
        let report = check_gradients_sampled(&[x], 1e-5, 5, 42, |tape, vars| {
            let sq = tape.mul_elem(vars[0], vars[0]);
            tape.sum_all(sq)
        });
        assert!(report.ok(1e-6), "{report:?}");
        assert_eq!(report.entries_checked, 5);
    }

    #[test]
    fn sampled_check_uses_all_entries_of_small_inputs() {
        let x = Matrix::from_vec(1, 3, vec![0.5, -0.5, 1.5]);
        let report =
            check_gradients_sampled(&[x], 1e-5, 100, 0, |tape, vars| tape.sum_all(vars[0]));
        assert_eq!(report.entries_checked, 3);
        assert!(report.ok(1e-8), "{report:?}");
    }

    #[test]
    fn sampled_check_is_deterministic_per_seed() {
        let x = Matrix::from_vec(8, 8, (0..64).map(|i| (i as f64).sin()).collect());
        let run = |seed| {
            check_gradients_sampled(std::slice::from_ref(&x), 1e-5, 7, seed, |tape, vars| {
                let sq = tape.mul_elem(vars[0], vars[0]);
                tape.sum_all(sq)
            })
        };
        let (a, b) = (run(9), run(9));
        assert_eq!(a.max_abs_err, b.max_abs_err);
        assert_eq!(a.entries_checked, b.entries_checked);
    }

    // --- GradCheckReport::ok edge cases (mg-verify satellite) ---

    #[test]
    fn ok_accepts_zero_gradients_under_positive_tolerance() {
        let report = GradCheckReport {
            max_abs_err: 0.0,
            max_rel_err: 0.0,
            entries_checked: 1,
        };
        assert!(report.ok(1e-6));
        // a zero tolerance is unsatisfiable by construction (strict <)
        assert!(!report.ok(0.0));
    }

    #[test]
    fn ok_rejects_nan_and_infinite_errors() {
        for bad in [f64::NAN, f64::INFINITY] {
            let report = GradCheckReport {
                max_abs_err: bad,
                max_rel_err: bad,
                entries_checked: 1,
            };
            assert!(!report.ok(1e-6), "{bad} must fail");
            assert!(!report.ok(f64::MAX), "{bad} must fail any tolerance");
        }
    }

    #[test]
    fn fold_err_turns_nan_gradients_into_infinite_error() {
        // f64::max ignores NaN, so a naive `max((a - n).abs())` would let a
        // NaN analytic gradient pass vacuously; fold_err must not.
        let (mut abs, mut rel) = (0.0f64, 0.0f64);
        fold_err(&mut abs, &mut rel, f64::NAN, 1.0);
        assert_eq!(abs, f64::INFINITY);
        assert_eq!(rel, f64::INFINITY);

        let (mut abs, mut rel) = (0.0f64, 0.0f64);
        fold_err(&mut abs, &mut rel, 1.0, f64::NAN);
        assert_eq!(abs, f64::INFINITY);

        let (mut abs, mut rel) = (0.0f64, 0.0f64);
        fold_err(&mut abs, &mut rel, f64::INFINITY, 1.0);
        assert_eq!(abs, f64::INFINITY);
    }

    #[test]
    fn fold_err_accumulates_maximum() {
        let (mut abs, mut rel) = (0.0f64, 0.0f64);
        fold_err(&mut abs, &mut rel, 1.0, 1.5);
        fold_err(&mut abs, &mut rel, 2.0, 2.1);
        assert!((abs - 0.5).abs() < 1e-15);
        assert!((rel - 0.5 / 1.5).abs() < 1e-15);
    }
}

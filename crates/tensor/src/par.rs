//! Dispatch layer between the tensor kernels and `mg-runtime`.
//!
//! With the `parallel` feature enabled, kernels partition their output
//! rows across the ambient thread pool and record per-kernel timings in
//! [`mg_runtime::KernelStats`]; without it every helper here degrades to
//! a single plain call with zero overhead, so serial builds compile the
//! exact seed code paths.
//!
//! ## Determinism contract
//!
//! Every helper hands `body` contiguous, disjoint ranges whose union is
//! `0..rows`, and kernels compute each output row entirely inside one
//! invocation using the serial inner-loop order. The floating-point
//! reduction order per output element is therefore independent of thread
//! count and scheduling, making parallel results bitwise identical to
//! serial ones.

use std::ops::Range;

/// Minimum output rows per chunk for dense row-partitioned kernels.
pub(crate) const MIN_ROWS: usize = 8;
/// Minimum rows per chunk for sparse kernels (cheap per-row work).
pub(crate) const MIN_SPARSE_ROWS: usize = 64;
/// Minimum elements per chunk for flat elementwise kernels.
pub(crate) const MIN_ELEMS: usize = 4096;

/// True when the ambient pool would actually split `rows` into more than
/// one chunk — kernels with a distinct (faster) serial loop shape branch
/// on this so that one thread always runs the exact serial code.
#[cfg(feature = "parallel")]
#[inline]
pub(crate) fn use_parallel(rows: usize, min_rows: usize) -> bool {
    mg_runtime::current_threads() > 1 && rows / min_rows.max(1) > 1
}

/// Run `body(range, block)` over disjoint contiguous row ranges covering
/// `0..rows`, where `block` is the mutable sub-slice of `out` holding
/// exactly those rows (`width` elements each).
#[cfg(feature = "parallel")]
pub(crate) fn for_each_row_block(
    out: &mut [f64],
    rows: usize,
    width: usize,
    min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * width);
    let ptr = mg_runtime::SendPtr::new(out.as_mut_ptr());
    mg_runtime::parallel_rows(rows, min_rows, &|range: Range<usize>| {
        let len = (range.end - range.start) * width;
        // SAFETY: ranges from parallel_rows are disjoint, so the blocks
        // are non-overlapping sub-slices of `out`.
        let block =
            unsafe { std::slice::from_raw_parts_mut(ptr.get().add(range.start * width), len) };
        body(range, block);
    });
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn for_each_row_block(
    out: &mut [f64],
    rows: usize,
    width: usize,
    _min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]),
) {
    debug_assert_eq!(out.len(), rows * width);
    body(0..rows, out);
}

/// Like [`for_each_row_block`] for CSR-shaped outputs: chunking by row,
/// where row `r` owns the variable-length segment
/// `out[indptr[r]..indptr[r + 1]]`. The block passed to `body` covers
/// `out[indptr[range.start]..indptr[range.end]]`.
#[cfg(feature = "parallel")]
pub(crate) fn for_each_row_segments(
    out: &mut [f64],
    indptr: &[usize],
    rows: usize,
    min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]) + Sync,
) {
    debug_assert_eq!(indptr.len(), rows + 1);
    debug_assert_eq!(out.len(), indptr[rows]);
    let ptr = mg_runtime::SendPtr::new(out.as_mut_ptr());
    mg_runtime::parallel_rows(rows, min_rows, &|range: Range<usize>| {
        let (s, e) = (indptr[range.start], indptr[range.end]);
        // SAFETY: row ranges are disjoint and indptr is non-decreasing,
        // so the segments are non-overlapping sub-slices of `out`.
        let block = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        body(range, block);
    });
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn for_each_row_segments(
    out: &mut [f64],
    indptr: &[usize],
    rows: usize,
    _min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]),
) {
    debug_assert_eq!(indptr.len(), rows + 1);
    debug_assert_eq!(out.len(), indptr[rows]);
    body(0..rows, out);
}

/// Time `f` under `name` in the kernel-stats registry.
#[cfg(feature = "parallel")]
#[inline]
pub(crate) fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    mg_runtime::timed(name, f)
}

#[cfg(not(feature = "parallel"))]
#[inline]
pub(crate) fn timed<R>(_name: &'static str, f: impl FnOnce() -> R) -> R {
    f()
}

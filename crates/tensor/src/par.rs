//! Dispatch layer between the tensor kernels and `mg-runtime`.
//!
//! With the `parallel` feature enabled, kernels partition their output
//! rows across the ambient thread pool and record per-kernel timings in
//! [`mg_runtime::KernelStats`]; without it every helper here degrades to
//! a single plain call with zero overhead, so serial builds compile the
//! exact seed code paths.
//!
//! ## Determinism contract
//!
//! Every helper hands `body` contiguous, disjoint ranges whose union is
//! `0..rows`, and kernels compute each output row entirely inside one
//! invocation using the serial inner-loop order. The floating-point
//! reduction order per output element is therefore independent of thread
//! count and scheduling, making parallel results bitwise identical to
//! serial ones. [`for_each_permuted_value`] extends the same contract to
//! permutation-scattered outputs: each output element is computed exactly
//! once by one invocation, so no reduction order exists to disturb.
//! Transpose-product kernels (`spmm_t` family) partition over the cached
//! transposed pattern, whose per-row entries replay the serial scatter
//! order — see `Csr::transpose_struct`.

use std::ops::Range;

/// Minimum mul-adds per chunk for the dense matmul family.
///
/// Gating on output rows alone mis-sizes chunks at both extremes: a fat
/// 8 x 512 x 512 product (~2M mul-adds) never split under the old
/// 8-row minimum, while a tall-thin 10k x 4 x 4 one shattered into
/// chunks carrying less work than a single pool hand-off. Chunks are
/// therefore sized by estimated work: `matmul_512x512x512` measures
/// ~0.33 ns per mul-add serial (`BENCH_ops.json`, 44,943,298 ns /
/// 512^3), so a 131,072 mul-add chunk carries ~44 µs — safely two
/// orders above the ~2.7 µs pool hand-off cost measured for
/// `MIN_ELEMS` below — while still letting that fat 8-row product
/// split into one chunk per row.
pub(crate) const MIN_MATMUL_WORK: usize = 131_072;
/// Minimum rows per chunk for sparse kernels (cheap per-row work).
pub(crate) const MIN_SPARSE_ROWS: usize = 64;
/// Minimum elements per chunk for flat elementwise kernels.
///
/// Sized for the cheapest elementwise ops, which are memory-bound:
/// `zip_512k_elems` measures ~0.65 ns/element serial (`BENCH_ops.json`,
/// 335,805 ns / 512k), so the old 4096-element minimum put only ~2.7 µs
/// of work in a chunk — the same order as one pool hand-off (mutex +
/// condvar wake), which made small parallel zips a measured regression.
/// At 32,768 elements a chunk carries ~21 µs of work, keeping scheduling
/// overhead in the low single-digit percents; compute-bound maps (tanh is
/// ~17 ns/element — `map_512k_elems` at 8.9 ms / 512k) clear the bar by a
/// wide margin at any size that passes it.
pub(crate) const MIN_ELEMS: usize = 32_768;

/// True when the ambient pool would actually split `rows` into more than
/// one chunk — kernels with a distinct (faster) serial loop shape branch
/// on this so that one thread always runs the exact serial code.
#[cfg(feature = "parallel")]
#[inline]
pub(crate) fn use_parallel(rows: usize, min_rows: usize) -> bool {
    mg_runtime::current_threads() > 1 && rows / min_rows.max(1) > 1
}

/// Rows per chunk for a matmul-family kernel whose every output row
/// costs `per_row_work` mul-adds, sized so each chunk carries at least
/// [`MIN_MATMUL_WORK`] of them. Any partition yields bitwise-identical
/// results (each row is reduced serially inside one chunk), so this
/// only tunes scheduling granularity, never numerics.
#[inline]
pub(crate) fn matmul_chunk_rows(per_row_work: usize) -> usize {
    MIN_MATMUL_WORK.div_ceil(per_row_work.max(1)).max(1)
}

/// Run `body(range, block)` over disjoint contiguous row ranges covering
/// `0..rows`, where `block` is the mutable sub-slice of `out` holding
/// exactly those rows (`width` elements each).
#[cfg(feature = "parallel")]
pub(crate) fn for_each_row_block(
    out: &mut [f64],
    rows: usize,
    width: usize,
    min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * width);
    let ptr = mg_runtime::SendPtr::new(out.as_mut_ptr());
    mg_runtime::parallel_rows(rows, min_rows, &|range: Range<usize>| {
        let len = (range.end - range.start) * width;
        // SAFETY: ranges from parallel_rows are disjoint, so the blocks
        // are non-overlapping sub-slices of `out`.
        let block =
            unsafe { std::slice::from_raw_parts_mut(ptr.get().add(range.start * width), len) };
        body(range, block);
    });
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn for_each_row_block(
    out: &mut [f64],
    rows: usize,
    width: usize,
    _min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]),
) {
    debug_assert_eq!(out.len(), rows * width);
    body(0..rows, out);
}

/// Like [`for_each_row_block`] for CSR-shaped outputs: chunking by row,
/// where row `r` owns the variable-length segment
/// `out[indptr[r]..indptr[r + 1]]`. The block passed to `body` covers
/// `out[indptr[range.start]..indptr[range.end]]`.
#[cfg(feature = "parallel")]
pub(crate) fn for_each_row_segments(
    out: &mut [f64],
    indptr: &[usize],
    rows: usize,
    min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]) + Sync,
) {
    debug_assert_eq!(indptr.len(), rows + 1);
    debug_assert_eq!(out.len(), indptr[rows]);
    let ptr = mg_runtime::SendPtr::new(out.as_mut_ptr());
    mg_runtime::parallel_rows(rows, min_rows, &|range: Range<usize>| {
        let (s, e) = (indptr[range.start], indptr[range.end]);
        // SAFETY: row ranges are disjoint and indptr is non-decreasing,
        // so the segments are non-overlapping sub-slices of `out`.
        let block = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        body(range, block);
    });
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn for_each_row_segments(
    out: &mut [f64],
    indptr: &[usize],
    rows: usize,
    _min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]),
) {
    debug_assert_eq!(indptr.len(), rows + 1);
    debug_assert_eq!(out.len(), indptr[rows]);
    body(0..rows, out);
}

/// Row-partition a *transposed* CSR pattern (`t_indptr`, `t_rows` rows)
/// and store `f(c, k)` into `out[perm[k]]` for every entry
/// `k in t_indptr[c]..t_indptr[c + 1]` of every transposed row `c`.
///
/// Used by value-gradient kernels whose output is laid out in the
/// *original* entry order while the work is partitioned over the
/// transposed pattern: `perm` must be a bijection onto `0..out.len()`,
/// which makes the scattered writes disjoint, and each element is
/// computed exactly once so any partition is trivially bitwise exact.
#[cfg(feature = "parallel")]
pub(crate) fn for_each_permuted_value(
    out: &mut [f64],
    t_indptr: &[usize],
    t_rows: usize,
    perm: &[usize],
    min_rows: usize,
    f: impl Fn(usize, usize) -> f64 + Sync,
) {
    debug_assert_eq!(t_indptr.len(), t_rows + 1);
    debug_assert_eq!(out.len(), perm.len());
    let ptr = mg_runtime::SendPtr::new(out.as_mut_ptr());
    mg_runtime::parallel_rows(t_rows, min_rows, &|range: Range<usize>| {
        for c in range {
            let (s, e) = (t_indptr[c], t_indptr[c + 1]);
            for (k, &p) in (s..e).zip(&perm[s..e]) {
                // SAFETY: row ranges are disjoint and `perm` is a
                // bijection, so each `out` slot is written exactly once.
                unsafe { *ptr.get().add(p) = f(c, k) };
            }
        }
    });
}

/// Time `f` under `name` in the kernel-stats registry.
#[cfg(feature = "parallel")]
#[inline]
pub(crate) fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    mg_runtime::timed(name, f)
}

#[cfg(not(feature = "parallel"))]
#[inline]
pub(crate) fn timed<R>(_name: &'static str, f: impl FnOnce() -> R) -> R {
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fat shape from the dispatch-gate bug report: 8 output rows,
    /// 512 inner, 512 cols is ~2M mul-adds and must split row-by-row.
    #[test]
    fn fat_shape_gets_single_row_chunks() {
        assert_eq!(matmul_chunk_rows(512 * 512), 1);
    }

    /// A tall-thin 10k x 4 x 4 product carries 16 mul-adds per row;
    /// chunks must grow until they hold MIN_MATMUL_WORK of them instead
    /// of shattering into 8-row slivers worth less than a pool hand-off.
    #[test]
    fn tall_thin_shape_gets_work_sized_chunks() {
        let chunk = matmul_chunk_rows(4 * 4);
        assert_eq!(chunk, MIN_MATMUL_WORK.div_ceil(16));
        // 10k rows no longer split at all: total work is ~160k mul-adds,
        // barely one chunk's worth.
        assert_eq!(10_000 / chunk, 1);
    }

    #[test]
    fn degenerate_row_work_still_positive() {
        assert!(matmul_chunk_rows(0) >= 1);
        assert_eq!(matmul_chunk_rows(usize::MAX), 1);
    }

    /// End-to-end gate check: under a multi-thread pool the fat shape is
    /// now seen as parallelizable (the old `MIN_ROWS = 8` constant made
    /// `use_parallel` report one chunk and forced it serial), and the
    /// runtime actually hands out more than one disjoint row range.
    #[cfg(feature = "parallel")]
    #[test]
    fn fat_shape_splits_under_multi_thread_pool() {
        use std::sync::{Arc, Mutex};
        let pool = Arc::new(mg_runtime::Pool::new(4));
        mg_runtime::with_pool(pool, || {
            let min_rows = matmul_chunk_rows(512 * 512);
            assert!(use_parallel(8, min_rows), "fat 8-row matmul must split");
            let seen: Mutex<Vec<std::ops::Range<usize>>> = Mutex::new(Vec::new());
            mg_runtime::parallel_rows(8, min_rows, &|range| {
                seen.lock().unwrap().push(range);
            });
            let mut ranges = seen.into_inner().unwrap();
            ranges.sort_by_key(|r| r.start);
            assert!(ranges.len() > 1, "expected multiple chunks, got {ranges:?}");
            // Disjoint cover of 0..8.
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, 8);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        });
    }
}

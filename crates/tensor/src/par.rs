//! Dispatch layer between the tensor kernels and `mg-runtime`.
//!
//! With the `parallel` feature enabled, kernels partition their output
//! rows across the ambient thread pool and record per-kernel timings in
//! [`mg_runtime::KernelStats`]; without it every helper here degrades to
//! a single plain call with zero overhead, so serial builds compile the
//! exact seed code paths.
//!
//! ## Determinism contract
//!
//! Every helper hands `body` contiguous, disjoint ranges whose union is
//! `0..rows`, and kernels compute each output row entirely inside one
//! invocation using the serial inner-loop order. The floating-point
//! reduction order per output element is therefore independent of thread
//! count and scheduling, making parallel results bitwise identical to
//! serial ones. [`for_each_permuted_value`] extends the same contract to
//! permutation-scattered outputs: each output element is computed exactly
//! once by one invocation, so no reduction order exists to disturb.
//! Transpose-product kernels (`spmm_t` family) partition over the cached
//! transposed pattern, whose per-row entries replay the serial scatter
//! order — see `Csr::transpose_struct`.

use std::ops::Range;

/// Minimum output rows per chunk for dense row-partitioned kernels.
pub(crate) const MIN_ROWS: usize = 8;
/// Minimum rows per chunk for sparse kernels (cheap per-row work).
pub(crate) const MIN_SPARSE_ROWS: usize = 64;
/// Minimum elements per chunk for flat elementwise kernels.
///
/// Sized for the cheapest elementwise ops, which are memory-bound:
/// `zip_512k_elems` measures ~0.65 ns/element serial (`BENCH_ops.json`,
/// 335,805 ns / 512k), so the old 4096-element minimum put only ~2.7 µs
/// of work in a chunk — the same order as one pool hand-off (mutex +
/// condvar wake), which made small parallel zips a measured regression.
/// At 32,768 elements a chunk carries ~21 µs of work, keeping scheduling
/// overhead in the low single-digit percents; compute-bound maps (tanh is
/// ~17 ns/element — `map_512k_elems` at 8.9 ms / 512k) clear the bar by a
/// wide margin at any size that passes it.
pub(crate) const MIN_ELEMS: usize = 32_768;

/// True when the ambient pool would actually split `rows` into more than
/// one chunk — kernels with a distinct (faster) serial loop shape branch
/// on this so that one thread always runs the exact serial code.
#[cfg(feature = "parallel")]
#[inline]
pub(crate) fn use_parallel(rows: usize, min_rows: usize) -> bool {
    mg_runtime::current_threads() > 1 && rows / min_rows.max(1) > 1
}

/// Run `body(range, block)` over disjoint contiguous row ranges covering
/// `0..rows`, where `block` is the mutable sub-slice of `out` holding
/// exactly those rows (`width` elements each).
#[cfg(feature = "parallel")]
pub(crate) fn for_each_row_block(
    out: &mut [f64],
    rows: usize,
    width: usize,
    min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * width);
    let ptr = mg_runtime::SendPtr::new(out.as_mut_ptr());
    mg_runtime::parallel_rows(rows, min_rows, &|range: Range<usize>| {
        let len = (range.end - range.start) * width;
        // SAFETY: ranges from parallel_rows are disjoint, so the blocks
        // are non-overlapping sub-slices of `out`.
        let block =
            unsafe { std::slice::from_raw_parts_mut(ptr.get().add(range.start * width), len) };
        body(range, block);
    });
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn for_each_row_block(
    out: &mut [f64],
    rows: usize,
    width: usize,
    _min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]),
) {
    debug_assert_eq!(out.len(), rows * width);
    body(0..rows, out);
}

/// Like [`for_each_row_block`] for CSR-shaped outputs: chunking by row,
/// where row `r` owns the variable-length segment
/// `out[indptr[r]..indptr[r + 1]]`. The block passed to `body` covers
/// `out[indptr[range.start]..indptr[range.end]]`.
#[cfg(feature = "parallel")]
pub(crate) fn for_each_row_segments(
    out: &mut [f64],
    indptr: &[usize],
    rows: usize,
    min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]) + Sync,
) {
    debug_assert_eq!(indptr.len(), rows + 1);
    debug_assert_eq!(out.len(), indptr[rows]);
    let ptr = mg_runtime::SendPtr::new(out.as_mut_ptr());
    mg_runtime::parallel_rows(rows, min_rows, &|range: Range<usize>| {
        let (s, e) = (indptr[range.start], indptr[range.end]);
        // SAFETY: row ranges are disjoint and indptr is non-decreasing,
        // so the segments are non-overlapping sub-slices of `out`.
        let block = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        body(range, block);
    });
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn for_each_row_segments(
    out: &mut [f64],
    indptr: &[usize],
    rows: usize,
    _min_rows: usize,
    body: impl Fn(Range<usize>, &mut [f64]),
) {
    debug_assert_eq!(indptr.len(), rows + 1);
    debug_assert_eq!(out.len(), indptr[rows]);
    body(0..rows, out);
}

/// Row-partition a *transposed* CSR pattern (`t_indptr`, `t_rows` rows)
/// and store `f(c, k)` into `out[perm[k]]` for every entry
/// `k in t_indptr[c]..t_indptr[c + 1]` of every transposed row `c`.
///
/// Used by value-gradient kernels whose output is laid out in the
/// *original* entry order while the work is partitioned over the
/// transposed pattern: `perm` must be a bijection onto `0..out.len()`,
/// which makes the scattered writes disjoint, and each element is
/// computed exactly once so any partition is trivially bitwise exact.
#[cfg(feature = "parallel")]
pub(crate) fn for_each_permuted_value(
    out: &mut [f64],
    t_indptr: &[usize],
    t_rows: usize,
    perm: &[usize],
    min_rows: usize,
    f: impl Fn(usize, usize) -> f64 + Sync,
) {
    debug_assert_eq!(t_indptr.len(), t_rows + 1);
    debug_assert_eq!(out.len(), perm.len());
    let ptr = mg_runtime::SendPtr::new(out.as_mut_ptr());
    mg_runtime::parallel_rows(t_rows, min_rows, &|range: Range<usize>| {
        for c in range {
            let (s, e) = (t_indptr[c], t_indptr[c + 1]);
            for (k, &p) in (s..e).zip(&perm[s..e]) {
                // SAFETY: row ranges are disjoint and `perm` is a
                // bijection, so each `out` slot is written exactly once.
                unsafe { *ptr.get().add(p) = f(c, k) };
            }
        }
    });
}

/// Time `f` under `name` in the kernel-stats registry.
#[cfg(feature = "parallel")]
#[inline]
pub(crate) fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    mg_runtime::timed(name, f)
}

#[cfg(not(feature = "parallel"))]
#[inline]
pub(crate) fn timed<R>(_name: &'static str, f: impl FnOnce() -> R) -> R {
    f()
}

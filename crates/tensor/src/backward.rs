//! Reverse pass over the tape.
//!
//! Nodes are processed in reverse creation order; inputs always precede
//! outputs on the tape, so a single backward sweep suffices. Gradients
//! accumulate into a side table ([`Gradients`]) rather than the nodes
//! themselves.
//!
//! Checkpointed segments (see [`crate::checkpoint`]) are re-materialised
//! lazily: before a node is processed, its own value and its inputs are
//! replayed if a scope dropped them, and a segment's interior is dropped
//! again as soon as the sweep passes below its start — so at any moment
//! at most the segments under the sweep cursor are resident, which is
//! what bounds peak memory.

use crate::checkpoint::segment_containing;
use crate::error::MgError;
use crate::matrix::Matrix;
use crate::ops::{kl_distributions, sigmoid, softmax_rows};
use crate::tape::{Gradients, Op, Tape, Var};

impl Tape {
    /// Run reverse-mode differentiation from the scalar `loss` node.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`, or if a checkpointed segment
    /// fails its replay consistency check (use [`Tape::try_backward`] to
    /// handle that as a typed error instead).
    pub fn backward(&self, loss: Var) -> Gradients {
        self.try_backward(loss)
            .unwrap_or_else(|e| panic!("backward: {e}"))
    }

    /// [`Tape::backward`], surfacing checkpoint-replay divergence as
    /// [`MgError::Corrupt`] instead of silently wrong gradients. On a
    /// retaining tape (no checkpoint scopes) this never errors.
    pub fn try_backward(&self, loss: Var) -> Result<Gradients, MgError> {
        assert!(
            self.open_scope.get().is_none(),
            "backward: a checkpoint scope is still open"
        );
        let mut nodes = self.nodes.borrow_mut();
        let segments = self.segments.borrow();
        assert_eq!(
            nodes[loss.0].shape,
            (1, 1),
            "backward: loss must be a 1x1 scalar"
        );
        let mut grads: Vec<Option<Matrix>> = (0..nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        // Segments with start above the sweep cursor can never be needed
        // again (a node's inputs always precede it), so they are
        // re-dropped the moment the cursor passes below their start.
        let mut live_seg = segments.len();

        for i in (0..=loss.0).rev() {
            while live_seg > 0 && segments[live_seg - 1].start > i {
                self.redrop_segment(&mut nodes, &segments[live_seg - 1]);
                live_seg -= 1;
            }
            if !nodes[i].requires_grad {
                grads[i] = None;
                continue;
            }
            let Some(g) = grads[i].take() else { continue };
            self.ensure_for_backward(&mut nodes, &segments, i)?;
            let node = &nodes[i];
            let out = node.val();

            // Accumulate `delta` into the gradient of `v` if it needs one.
            macro_rules! acc {
                ($v:expr, $delta:expr) => {{
                    let v: Var = $v;
                    if nodes[v.0].requires_grad {
                        match &mut grads[v.0] {
                            Some(existing) => existing.add_scaled(&$delta, 1.0),
                            slot @ None => *slot = Some($delta),
                        }
                    }
                }};
            }
            // Lazily get-or-create a mutable gradient buffer for `v`.
            macro_rules! buf {
                ($v:expr) => {{
                    let v: Var = $v;
                    grads[v.0].get_or_insert_with(|| {
                        let (r, c) = nodes[v.0].shape;
                        Matrix::zeros(r, c)
                    })
                }};
            }

            match &node.op {
                Op::Leaf => {
                    grads[i] = Some(g);
                    continue;
                }
                Op::Add(a, b) => {
                    acc!(*a, g.clone());
                    acc!(*b, g);
                }
                Op::Sub(a, b) => {
                    acc!(*b, g.map(|x| -x));
                    acc!(*a, g);
                }
                Op::MulElem(a, b) => {
                    if nodes[a.0].requires_grad {
                        acc!(*a, g.zip(nodes[b.0].val(), |gx, bv| gx * bv));
                    }
                    if nodes[b.0].requires_grad {
                        acc!(*b, g.zip(nodes[a.0].val(), |gx, av| gx * av));
                    }
                }
                Op::Scale(a, alpha) => {
                    let alpha = *alpha;
                    acc!(*a, g.map(|x| x * alpha));
                }
                Op::AddScalar(a, _) => {
                    acc!(*a, g);
                }
                Op::AddBias(a, bias) => {
                    if nodes[bias.0].requires_grad {
                        let mut gb = Matrix::zeros(1, g.cols());
                        for r in 0..g.rows() {
                            for (o, &x) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                                *o += x;
                            }
                        }
                        acc!(*bias, gb);
                    }
                    acc!(*a, g);
                }
                Op::MatMul(a, b) => {
                    if nodes[a.0].requires_grad {
                        acc!(*a, g.matmul_nt(nodes[b.0].val()));
                    }
                    if nodes[b.0].requires_grad {
                        acc!(*b, nodes[a.0].val().matmul_tn(&g));
                    }
                }
                Op::Transpose(a) => {
                    acc!(*a, g.transpose());
                }
                Op::Relu(a) => {
                    acc!(
                        *a,
                        g.zip(nodes[a.0].val(), |gx, x| if x > 0.0 { gx } else { 0.0 })
                    );
                }
                Op::LeakyRelu(a, slope) => {
                    let s = *slope;
                    acc!(
                        *a,
                        g.zip(nodes[a.0].val(), |gx, x| if x > 0.0 { gx } else { s * gx })
                    );
                }
                Op::Sigmoid(a) => {
                    acc!(*a, g.zip(out, |gx, y| gx * y * (1.0 - y)));
                }
                Op::Tanh(a) => {
                    acc!(*a, g.zip(out, |gx, y| gx * (1.0 - y * y)));
                }
                Op::SoftmaxRows(a) => {
                    let mut gx = Matrix::zeros(out.rows(), out.cols());
                    for r in 0..out.rows() {
                        let y = out.row(r);
                        let gr = g.row(r);
                        let dot: f64 = y.iter().zip(gr).map(|(&yv, &gv)| yv * gv).sum();
                        for (o, (&yv, &gv)) in gx.row_mut(r).iter_mut().zip(y.iter().zip(gr)) {
                            *o = yv * (gv - dot);
                        }
                    }
                    acc!(*a, gx);
                }
                Op::LogSoftmaxRows(a) => {
                    // d/dx = g - softmax(x) * rowsum(g); softmax(x) = exp(out)
                    let mut gx = Matrix::zeros(out.rows(), out.cols());
                    for r in 0..out.rows() {
                        let gr = g.row(r);
                        let gsum: f64 = gr.iter().sum();
                        for ((o, &lp), &gv) in gx.row_mut(r).iter_mut().zip(out.row(r)).zip(gr) {
                            *o = gv - lp.exp() * gsum;
                        }
                    }
                    acc!(*a, gx);
                }
                Op::Spmm { csr, values, dense } => {
                    let x = nodes[dense.0].val();
                    if nodes[values.0].requires_grad {
                        acc!(*values, csr.spmm_grad_values(&g, x));
                    }
                    if nodes[dense.0].requires_grad {
                        let vals = nodes[values.0].val();
                        // gX = Aᵀ g — under `parallel`, `spmm_t` builds the
                        // transpose cache on the shared `Rc<Csr>` the first
                        // time and reuses it on every later epoch.
                        acc!(*dense, csr.spmm_t(vals.data(), &g));
                    }
                }
                Op::SpmmBiasRelu {
                    csr,
                    values,
                    dense,
                    bias,
                } => {
                    // ReLU mask from the fused output itself: for finite
                    // pre-activations z, `out = max(z + b, 0) > 0` holds
                    // exactly where `z + b > 0`, so no cached
                    // pre-activation is needed. The three gradient
                    // kernels below are the same ones the unfused
                    // relu → add_bias → spmm sweep runs, in the same
                    // order, keeping fused backward bitwise identical.
                    let gz = g.zip(out, |gx, y| if y > 0.0 { gx } else { 0.0 });
                    if nodes[bias.0].requires_grad {
                        let mut gb = Matrix::zeros(1, gz.cols());
                        for r in 0..gz.rows() {
                            for (o, &x) in gb.row_mut(0).iter_mut().zip(gz.row(r)) {
                                *o += x;
                            }
                        }
                        acc!(*bias, gb);
                    }
                    let x = nodes[dense.0].val();
                    if nodes[values.0].requires_grad {
                        acc!(*values, csr.spmm_grad_values(&gz, x));
                    }
                    if nodes[dense.0].requires_grad {
                        let vals = nodes[values.0].val();
                        acc!(*dense, csr.spmm_t(vals.data(), &gz));
                    }
                }
                Op::SpmmT { csr, values, dense } => {
                    let x = nodes[dense.0].val();
                    if nodes[values.0].requires_grad {
                        // out[c,:] += v_k x[r,:]  =>  dv_k = g[c,:].x[r,:]
                        acc!(*values, csr.spmm_t_grad_values(&g, x));
                    }
                    if nodes[dense.0].requires_grad {
                        let vals = nodes[values.0].val();
                        // gX = A g
                        acc!(*dense, csr.spmm(vals.data(), &g));
                    }
                }
                Op::GatherRows { src, idx } => {
                    let gsrc = buf!(*src);
                    for (r, &i_src) in idx.iter().enumerate() {
                        let grow = g.row(r);
                        for (o, &x) in gsrc.row_mut(i_src).iter_mut().zip(grow) {
                            *o += x;
                        }
                    }
                }
                Op::SegmentSum { src, seg, .. } => {
                    let gsrc = buf!(*src);
                    for (r, &s) in seg.iter().enumerate() {
                        let grow = g.row(s);
                        for (o, &x) in gsrc.row_mut(r).iter_mut().zip(grow) {
                            *o += x;
                        }
                    }
                }
                Op::SegmentSoftmax { scores, seg, n_seg } => {
                    // gx_e = y_e (g_e - Σ_{e' in seg} y_e' g_e')
                    let mut dots = vec![0.0f64; *n_seg];
                    for (e, &s) in seg.iter().enumerate() {
                        dots[s] += out[(e, 0)] * g[(e, 0)];
                    }
                    let mut gx = Matrix::zeros(out.rows(), 1);
                    for (e, &s) in seg.iter().enumerate() {
                        gx[(e, 0)] = out[(e, 0)] * (g[(e, 0)] - dots[s]);
                    }
                    acc!(*scores, gx);
                }
                Op::RowDot(a, b) => {
                    let (av, bv) = (nodes[a.0].val(), nodes[b.0].val());
                    if nodes[a.0].requires_grad {
                        let mut ga = Matrix::zeros(av.rows(), av.cols());
                        for r in 0..av.rows() {
                            let gr = g[(r, 0)];
                            for (o, &x) in ga.row_mut(r).iter_mut().zip(bv.row(r)) {
                                *o = gr * x;
                            }
                        }
                        acc!(*a, ga);
                    }
                    if nodes[b.0].requires_grad {
                        let mut gb = Matrix::zeros(bv.rows(), bv.cols());
                        for r in 0..bv.rows() {
                            let gr = g[(r, 0)];
                            for (o, &x) in gb.row_mut(r).iter_mut().zip(av.row(r)) {
                                *o = gr * x;
                            }
                        }
                        acc!(*b, gb);
                    }
                }
                Op::MulCol { a, col } => {
                    let (av, cv) = (nodes[a.0].val(), nodes[col.0].val());
                    if nodes[a.0].requires_grad {
                        let mut ga = Matrix::zeros(av.rows(), av.cols());
                        for r in 0..av.rows() {
                            let c = cv[(r, 0)];
                            for (o, &x) in ga.row_mut(r).iter_mut().zip(g.row(r)) {
                                *o = c * x;
                            }
                        }
                        acc!(*a, ga);
                    }
                    if nodes[col.0].requires_grad {
                        let mut gc = Matrix::zeros(cv.rows(), 1);
                        for r in 0..av.rows() {
                            gc[(r, 0)] =
                                g.row(r).iter().zip(av.row(r)).map(|(&gx, &x)| gx * x).sum();
                        }
                        acc!(*col, gc);
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for v in parts {
                        let w = nodes[v.0].shape.1;
                        if nodes[v.0].requires_grad {
                            let part = Matrix::from_fn(g.rows(), w, |r, c| g[(r, off + c)]);
                            acc!(*v, part);
                        }
                        off += w;
                    }
                }
                Op::SliceCols { src, start, end } => {
                    let (rows, cols) = nodes[src.0].shape;
                    let mut gs = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        for c in *start..*end {
                            gs[(r, c)] = g[(r, c - start)];
                        }
                    }
                    acc!(*src, gs);
                }
                Op::SumAll(a) => {
                    let gs = g.scalar();
                    let (r, c) = nodes[a.0].shape;
                    acc!(*a, Matrix::full(r, c, gs));
                }
                Op::MeanAll(a) => {
                    let (r, c) = nodes[a.0].shape;
                    let gs = g.scalar() / (r * c) as f64;
                    acc!(*a, Matrix::full(r, c, gs));
                }
                Op::MeanRows(a) => {
                    let (r, c) = nodes[a.0].shape;
                    let inv = 1.0 / r as f64;
                    acc!(*a, Matrix::from_fn(r, c, |_, j| g[(0, j)] * inv));
                }
                Op::SumRows(a) => {
                    let (r, c) = nodes[a.0].shape;
                    acc!(*a, Matrix::from_fn(r, c, |_, j| g[(0, j)]));
                }
                Op::MaxRows { src, argmax } => {
                    let (r, c) = nodes[src.0].shape;
                    let mut gs = Matrix::zeros(r, c);
                    for (j, &arg) in argmax.iter().enumerate() {
                        gs[(arg, j)] = g[(0, j)];
                    }
                    acc!(*src, gs);
                }
                Op::NllLoss {
                    logp,
                    targets,
                    nodes: node_set,
                } => {
                    let gs = g.scalar() / node_set.len() as f64;
                    let (r, c) = nodes[logp.0].shape;
                    let mut gl = Matrix::zeros(r, c);
                    for &row in node_set.iter() {
                        gl[(row, targets[row])] -= gs;
                    }
                    acc!(*logp, gl);
                }
                Op::BcePairs {
                    h,
                    pairs,
                    labels,
                    cache,
                } => {
                    let hv = nodes[h.0].val();
                    let gs = g.scalar() / pairs.len() as f64;
                    let mut gh = Matrix::zeros(hv.rows(), hv.cols());
                    for ((&(pi, pj), &y), &z) in
                        pairs.iter().zip(labels.iter()).zip(cache.logits.iter())
                    {
                        let dz = (sigmoid(z) - y) * gs;
                        for (o, &x) in gh.row_mut(pi).iter_mut().zip(hv.row(pj)) {
                            *o += dz * x;
                        }
                        for (o, &x) in gh.row_mut(pj).iter_mut().zip(hv.row(pi)) {
                            *o += dz * x;
                        }
                    }
                    acc!(*h, gh);
                }
                Op::StudentTKl {
                    h,
                    egos,
                    cache,
                    target,
                } => {
                    let hv = nodes[h.0].val();
                    let (n, d) = hv.shape();
                    let t = &cache.t;
                    let (q, self_p) = kl_distributions(t);
                    let p = target.as_deref().unwrap_or(&self_p);
                    let gs = g.scalar() / n as f64;
                    let mut gh = Matrix::zeros(n, d);
                    for j in 0..n {
                        let t_row_sum: f64 = t.row(j).iter().sum();
                        for (c, &e) in egos.iter().enumerate() {
                            // dL/dt_jc with P detached:
                            //   (1/T_j) (1 - p/q) -- scaled by gs (mean over n)
                            let qv = q[(j, c)];
                            if qv <= 0.0 {
                                continue;
                            }
                            let dl_dt = gs * (1.0 - p[(j, c)] / qv) / t_row_sum;
                            let tv = t[(j, c)];
                            let coef = dl_dt * (-tv * tv) * 2.0;
                            for k in 0..d {
                                let diff = hv[(j, k)] - hv[(e, k)];
                                gh[(j, k)] += coef * diff;
                                gh[(e, k)] -= coef * diff;
                            }
                        }
                    }
                    acc!(*h, gh);
                }
                Op::Exp(a) => {
                    // d exp(x) = exp(x) dx; out already holds exp(x)
                    acc!(*a, g.zip(out, |gx, y| gx * y));
                }
                Op::Ln(a) => {
                    acc!(*a, g.zip(nodes[a.0].val(), |gx, x| gx / x));
                }
                Op::ColNormalize { src, inv_std } => {
                    // y = (x - mu) * inv_std; with batch statistics:
                    // dx_ij = inv_std_j * (g_ij - mean_i(g_.j) - y_ij * mean_i(g_.j * y_.j))
                    let (n, d) = out.shape();
                    let mut g_mean = vec![0.0f64; d];
                    let mut gy_mean = vec![0.0f64; d];
                    for i in 0..n {
                        for j in 0..d {
                            g_mean[j] += g[(i, j)];
                            gy_mean[j] += g[(i, j)] * out[(i, j)];
                        }
                    }
                    for j in 0..d {
                        g_mean[j] /= n as f64;
                        gy_mean[j] /= n as f64;
                    }
                    let gx = Matrix::from_fn(n, d, |i, j| {
                        inv_std[j] * (g[(i, j)] - g_mean[j] - out[(i, j)] * gy_mean[j])
                    });
                    acc!(*src, gx);
                }
                Op::Reshape { src, .. } => {
                    let (r, c) = nodes[src.0].shape;
                    acc!(*src, Matrix::from_vec(r, c, g.data().to_vec()));
                }
                Op::Dropout { src, mask } => {
                    let mut gsrc = g.clone();
                    for (o, &m) in gsrc.data_mut().iter_mut().zip(mask.iter()) {
                        *o *= m;
                    }
                    acc!(*src, gsrc);
                }
            }
            // Intermediate gradients are dropped once consumed to bound memory.
        }
        // Leave the tape in its checkpointed state: any segment the sweep
        // materialised (or never reached) ends with its interior dropped.
        while live_seg > 0 {
            self.redrop_segment(&mut nodes, &segments[live_seg - 1]);
            live_seg -= 1;
        }
        debug_assert!(
            nodes
                .iter()
                .enumerate()
                .all(|(i, n)| n.value.is_some() || segment_containing(&segments, i).is_some()),
            "every dropped value must belong to a segment"
        );
        Ok(Gradients { grads })
    }
}

/// Numerically stable softmax re-export used by the backward pass tests.
#[allow(dead_code)]
pub(crate) fn softmax_reference(m: &Matrix) -> Matrix {
    softmax_rows(m)
}

//! Reverse-mode autograd tape.
//!
//! The tape is an append-only arena of nodes. Forward computation is
//! eager: every op constructor computes its value immediately and records
//! the operation, so `backward` only has to walk the arena in reverse.
//!
//! Design notes
//! * Ops are an enum, not boxed closures — cheap to match, easy to test,
//!   and the whole op set is visible in one place (`Op`).
//! * Sparse-matrix values are ordinary `1 x nnz` variables, so learnable
//!   sparse entries (AdamGNN's `S_k` fitness scores) receive gradients.
//! * Gradients are returned as a separate [`Gradients`] store rather than
//!   written into nodes, which keeps `backward(&self)` free of interior
//!   mutability headaches and lets callers run several backward passes.
//! * Node values are `Option<Matrix>`: a closed checkpoint scope (see
//!   [`crate::checkpoint`]) drops interior buffers after forward and
//!   `backward` re-materialises them by replaying the recorded ops. The
//!   shape is retained separately so shape-only queries never force a
//!   replay.

use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;

use crate::checkpoint::Segment;
use crate::csr::Csr;
use crate::matrix::Matrix;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

pub(crate) struct Node {
    /// The forward value. `None` while a checkpoint scope holds the
    /// buffer dropped; backward re-materialises it by replaying the op.
    pub value: Option<Matrix>,
    /// Shape of the value, retained even while the buffer is dropped.
    pub shape: (usize, usize),
    pub op: Op,
    pub requires_grad: bool,
}

impl Node {
    /// The materialised forward value.
    ///
    /// # Panics
    /// Panics if the buffer was dropped by a checkpoint scope and has not
    /// been re-materialised — callers inside `backward` must go through
    /// the segment materialisation path first.
    pub fn val(&self) -> &Matrix {
        self.value
            .as_ref()
            .expect("node value was dropped by a checkpoint scope and is not materialised")
    }
}

/// Bytes held by a node value buffer (the accounting unit for
/// [`Tape::live_tape_bytes`] / [`Tape::peak_tape_bytes`]).
pub(crate) fn bytes_of(m: &Matrix) -> usize {
    m.len() * std::mem::size_of::<f64>()
}

/// Cached forward state for the Student-t KL (DEC) loss.
pub(crate) struct KlCache {
    /// `t[j, i] = (1 + ||h_j - h_{ego_i}||^2)^{-1}`, shape `n x m`.
    pub t: Matrix,
}

/// Cached forward state for edge-pair BCE-with-logits.
pub(crate) struct BceCache {
    /// Raw logits `z_k = h_i . h_j` per pair.
    pub logits: Vec<f64>,
}

/// The operation that produced a node. Payloads are input handles plus
/// whatever immutable auxiliary data the backward pass needs.
///
/// Checkpoint replay re-evaluates ops from these payloads alone (see
/// [`crate::ops::eval_op`]), so any stochastic or data-dependent choice —
/// dropout masks, argmax rows, cached logits/kernels — must live in the
/// payload, never be re-drawn at replay time.
#[allow(dead_code)] // some payload fields are forward-only
pub(crate) enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    Scale(Var, f64),
    AddScalar(Var, f64),
    /// `a (n x d) + bias (1 x d)` broadcast over rows.
    AddBias(Var, Var),
    MatMul(Var, Var),
    Transpose(Var),
    Relu(Var),
    LeakyRelu(Var, f64),
    Sigmoid(Var),
    Tanh(Var),
    SoftmaxRows(Var),
    LogSoftmaxRows(Var),
    /// `csr(values) * dense`.
    ///
    /// The `Rc<Csr>` is shared with the caller, so the transpose cache the
    /// backward pass builds for `spmm_t` persists on the caller's instance
    /// and is reused by every later tape that records the same structure.
    Spmm {
        csr: Rc<Csr>,
        values: Var,
        dense: Var,
    },
    /// `csr(values)^T * dense`. Shares `csr` like [`Op::Spmm`], so the
    /// forward `spmm_t` warms the transpose cache that the backward
    /// `spmm_t_grad_values` then reuses.
    SpmmT {
        csr: Rc<Csr>,
        values: Var,
        dense: Var,
    },
    /// Fused `relu(csr(values) * dense + bias)` — the GCN layer's
    /// per-level chain as one node. Shares `csr` like [`Op::Spmm`]. The
    /// backward needs no cached pre-activation: `out > 0` holds exactly
    /// where the pre-activation was `> 0`.
    SpmmBiasRelu {
        csr: Rc<Csr>,
        values: Var,
        dense: Var,
        bias: Var,
    },
    GatherRows {
        src: Var,
        idx: Rc<Vec<usize>>,
    },
    /// Sum edge messages into `n_seg` buckets: `out[s] = sum_{e: seg[e]=s} src[e]`.
    SegmentSum {
        src: Var,
        seg: Rc<Vec<usize>>,
        n_seg: usize,
    },
    /// Softmax over entries sharing a segment id (`scores` is `n_e x 1`).
    SegmentSoftmax {
        scores: Var,
        seg: Rc<Vec<usize>>,
        n_seg: usize,
    },
    /// Per-row dot product of two equally-shaped matrices -> `n x 1`.
    RowDot(Var, Var),
    /// Scale each row of `a (n x d)` by `col (n x 1)`.
    MulCol {
        a: Var,
        col: Var,
    },
    ConcatCols(Vec<Var>),
    SliceCols {
        src: Var,
        start: usize,
        end: usize,
    },
    SumAll(Var),
    MeanAll(Var),
    /// Column-wise mean over rows: `n x d -> 1 x d`.
    MeanRows(Var),
    /// Column-wise sum over rows: `n x d -> 1 x d`.
    SumRows(Var),
    /// Column-wise max over rows with recorded argmax rows.
    MaxRows {
        src: Var,
        argmax: Rc<Vec<usize>>,
    },
    /// Mean negative log likelihood over a node subset.
    NllLoss {
        logp: Var,
        targets: Rc<Vec<usize>>,
        nodes: Rc<Vec<usize>>,
    },
    /// Mean BCE-with-logits over inner-product pair scores.
    BcePairs {
        h: Var,
        pairs: Rc<Vec<(usize, usize)>>,
        labels: Rc<Vec<f64>>,
        cache: Rc<BceCache>,
    },
    /// DEC-style Student-t KL clustering loss (AdamGNN Eq. 5).
    StudentTKl {
        h: Var,
        egos: Rc<Vec<usize>>,
        cache: Rc<KlCache>,
        /// Explicit constant target `P`; `None` re-derives it from the
        /// cached kernel (the production self-target).
        target: Option<Rc<Matrix>>,
    },
    /// Inverted-dropout with a fixed mask (entries are 0 or 1/(1-p)).
    Dropout {
        src: Var,
        mask: Rc<Vec<f64>>,
    },
    /// Row-major reshape (same element count, data order preserved).
    /// The target shape is part of the payload so replay can rebuild the
    /// value without consulting the (possibly dropped) output buffer.
    Reshape {
        src: Var,
        rows: usize,
        cols: usize,
    },
    /// Per-column standardisation (graph-norm): `(x - mean) / std`.
    ColNormalize {
        src: Var,
        inv_std: Rc<Vec<f64>>,
    },
    /// Elementwise exponential.
    Exp(Var),
    /// Elementwise natural logarithm (input must be positive).
    Ln(Var),
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    pub(crate) grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `v`, if it was reached and requires grad.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Take ownership of a gradient (e.g. to feed an optimizer).
    pub fn take(&mut self, v: Var) -> Option<Matrix> {
        self.grads.get_mut(v.0).and_then(|g| g.take())
    }
}

/// Append-only autograd arena. Create one per forward/backward pass.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
    /// Closed checkpoint segments, ascending and disjoint by tape index.
    pub(crate) segments: RefCell<Vec<Segment>>,
    /// Start index of the currently open checkpoint scope, if any.
    pub(crate) open_scope: Cell<Option<usize>>,
    /// Bytes currently held by materialised node value buffers.
    pub(crate) live_bytes: Cell<usize>,
    /// High-water mark of `live_bytes`.
    pub(crate) peak_bytes: Cell<usize>,
    /// Test-only fault injection: the next replay of this node index is
    /// perturbed before the fingerprint check (see `corrupt_next_replay`).
    pub(crate) corrupt_replay: Cell<Option<usize>>,
}

impl Tape {
    /// Fresh, empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a leaf holding `value`. Set `requires_grad` for parameters.
    pub fn leaf(&self, value: Matrix, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// Record a constant (non-differentiable) leaf.
    pub fn constant(&self, value: Matrix) -> Var {
        self.leaf(value, false)
    }

    /// Borrow the value of a node.
    ///
    /// # Panics
    /// Panics if a checkpoint scope dropped the buffer — read segment
    /// outputs (the `keep` set), not interiors, after a scope closes.
    pub fn value(&self, v: Var) -> Ref<'_, Matrix> {
        Ref::map(self.nodes.borrow(), |nodes| nodes[v.0].val())
    }

    /// Clone the value of a node out of the tape.
    ///
    /// # Panics
    /// Panics if a checkpoint scope dropped the buffer (see [`Tape::value`]).
    pub fn value_cloned(&self, v: Var) -> Matrix {
        self.nodes.borrow()[v.0].val().clone()
    }

    /// Shape of a node's value (available even while checkpointed away).
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0].shape
    }

    /// Whether the node participates in gradient computation.
    pub fn requires_grad(&self, v: Var) -> bool {
        self.nodes.borrow()[v.0].requires_grad
    }

    /// Whether the node's value buffer is currently materialised (false
    /// only for interiors of closed checkpoint scopes).
    pub fn is_materialized(&self, v: Var) -> bool {
        self.nodes.borrow()[v.0].value.is_some()
    }

    /// Bytes currently held by materialised node value buffers. Gradient
    /// buffers and op payloads (masks, cached logits) are not counted —
    /// this tracks exactly what checkpointing can reclaim.
    pub fn live_tape_bytes(&self) -> usize {
        self.live_bytes.get()
    }

    /// High-water mark of [`Tape::live_tape_bytes`] since creation or the
    /// last [`Tape::reset_peak_tape_bytes`]. Monotone within a run; covers
    /// both the forward pass and any backward re-materialisation.
    pub fn peak_tape_bytes(&self) -> usize {
        self.peak_bytes.get()
    }

    /// Reset the high-water mark to the current live size (e.g. between
    /// measured phases on a reused tape).
    pub fn reset_peak_tape_bytes(&self) {
        self.peak_bytes.set(self.live_bytes.get());
    }

    /// Test-only fault injection: perturb the next checkpoint replay of
    /// `v` so the fingerprint consistency check can be exercised. One-shot.
    #[doc(hidden)]
    pub fn corrupt_next_replay(&self, v: Var) {
        self.corrupt_replay.set(Some(v.0));
    }

    pub(crate) fn add_live_bytes(&self, bytes: usize) {
        let live = self.live_bytes.get() + bytes;
        self.live_bytes.set(live);
        if live > self.peak_bytes.get() {
            self.peak_bytes.set(live);
        }
    }

    pub(crate) fn sub_live_bytes(&self, bytes: usize) {
        self.live_bytes.set(self.live_bytes.get() - bytes);
    }

    pub(crate) fn push(&self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        debug_assert!(value.all_finite(), "non-finite value pushed to tape");
        self.add_live_bytes(bytes_of(&value));
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            shape: value.shape(),
            value: Some(value),
            op,
            requires_grad,
        });
        Var(nodes.len() - 1)
    }

    pub(crate) fn rg(&self, v: Var) -> bool {
        self.nodes.borrow()[v.0].requires_grad
    }

    pub(crate) fn rg2(&self, a: Var, b: Var) -> bool {
        let nodes = self.nodes.borrow();
        nodes[a.0].requires_grad || nodes[b.0].requires_grad
    }

    pub(crate) fn rg3(&self, a: Var, b: Var, c: Var) -> bool {
        let nodes = self.nodes.borrow();
        nodes[a.0].requires_grad || nodes[b.0].requires_grad || nodes[c.0].requires_grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let tape = Tape::new();
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let v = tape.leaf(m.clone(), true);
        assert_eq!(*tape.value(v), m);
        assert!(tape.requires_grad(v));
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn constant_does_not_require_grad() {
        let tape = Tape::new();
        let v = tape.constant(Matrix::eye(2));
        assert!(!tape.requires_grad(v));
    }

    #[test]
    fn fresh_tape_has_zero_bytes() {
        let tape = Tape::new();
        assert_eq!(tape.live_tape_bytes(), 0);
        assert_eq!(tape.peak_tape_bytes(), 0);
    }

    #[test]
    fn live_and_peak_bytes_track_pushes() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::zeros(2, 3), true);
        assert_eq!(tape.live_tape_bytes(), 6 * 8);
        let b = tape.leaf(Matrix::zeros(4, 1), true);
        assert_eq!(tape.live_tape_bytes(), 10 * 8);
        assert_eq!(tape.peak_tape_bytes(), 10 * 8);
        let _ = tape.add(a, a);
        let _ = tape.mul_elem(b, b);
        assert_eq!(tape.live_tape_bytes(), 20 * 8);
        assert_eq!(tape.peak_tape_bytes(), 20 * 8);
    }

    #[test]
    fn peak_is_monotone_and_resettable() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::zeros(8, 8), true);
        let scope = tape.begin_checkpoint();
        let b = tape.relu(a);
        let c = tape.sigmoid(b);
        tape.end_checkpoint(scope, &[c]);
        // dropping `b` reduced live but never peak
        assert!(tape.live_tape_bytes() < tape.peak_tape_bytes());
        assert_eq!(tape.peak_tape_bytes(), 3 * 64 * 8);
        let peak_before = tape.peak_tape_bytes();
        let _ = tape.tanh(c);
        assert!(tape.peak_tape_bytes() >= peak_before, "peak is monotone");
        tape.reset_peak_tape_bytes();
        assert_eq!(tape.peak_tape_bytes(), tape.live_tape_bytes());
    }
}

//! Compressed-sparse-row structure.
//!
//! The *structure* (sparsity pattern) is separated from the *values* so
//! that values can live on the autograd tape as a `1 x nnz` variable —
//! AdamGNN's hyper-node formation matrix `S_k` carries learnable fitness
//! scores in its entries, and gradients must reach them.

use crate::matrix::Matrix;
use crate::par;
use std::sync::{Arc, OnceLock};

/// Lazily-built transpose of a [`Csr`] pattern, shared between clones.
///
/// Within each transposed row `c` the source rows stored in `indices`
/// are strictly ascending — the same order in which the serial scatter
/// loop of [`Csr::spmm_t_serial`] visits the entries contributing to
/// output row `c` — which is what lets the parallel transpose kernels
/// keep the bitwise-determinism contract of `par`.
#[derive(Debug)]
struct TransposeCache {
    /// Row pointers of the transposed pattern (`cols + 1` entries).
    indptr: Vec<usize>,
    /// Source-row indices per transposed row, ascending within each row.
    indices: Vec<u32>,
    /// Value permutation: transposed entry `k` reads `values[perm[k]]`
    /// of the original layout (`perm` is a bijection on `0..nnz`).
    perm: Vec<usize>,
}

/// Sparsity pattern of a sparse matrix in CSR layout, without values.
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    /// Transposed pattern, built on first use (`spmm_t` family,
    /// [`Csr::transpose_struct`]). The `Arc` is shared by `Clone`, so a
    /// structure wrapped in `Rc<Csr>` and cloned around a model (e.g.
    /// `NormAdj`, the `S_k` chain) pays the O(nnz) transpose once and
    /// amortises it across every epoch's forward and backward passes.
    tcache: OnceLock<Arc<TransposeCache>>,
}

impl Clone for Csr {
    fn clone(&self) -> Self {
        let tcache = OnceLock::new();
        if let Some(t) = self.tcache.get() {
            let _ = tcache.set(Arc::clone(t));
        }
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            tcache,
        }
    }
}

// Equality is structural: the transpose cache is derived data and two
// patterns must compare equal whether or not either has built it.
impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.indptr == other.indptr
            && self.indices == other.indices
    }
}

impl Eq for Csr {}

impl std::fmt::Debug for Csr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Csr")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("indptr", &self.indptr)
            .field("indices", &self.indices)
            .finish_non_exhaustive()
    }
}

impl Csr {
    /// Build from COO triplet positions (duplicates are merged — the
    /// caller's values for duplicated positions must be pre-summed, so we
    /// forbid duplicates instead).
    ///
    /// # Panics
    /// Panics on out-of-range indices or duplicate `(row, col)` entries.
    pub fn from_coo(rows: usize, cols: usize, entries: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c) in entries {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "coo entry out of range"
            );
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; entries.len()];
        let mut cursor = indptr.clone();
        for &(r, c) in entries {
            let pos = cursor[r as usize];
            indices[pos] = c;
            cursor[r as usize] += 1;
        }
        // Sort column indices within each row for deterministic layout.
        for r in 0..rows {
            indices[indptr[r]..indptr[r + 1]].sort_unstable();
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] != w[1], "duplicate coo entry at row {r}, col {}", w[0]);
            }
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            tcache: OnceLock::new(),
        }
    }

    /// Build directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent.
    pub fn from_parts(rows: usize, cols: usize, indptr: Vec<usize>, indices: Vec<u32>) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(
            *indptr.last().unwrap_or(&0),
            indices.len(),
            "indptr/indices mismatch"
        );
        for w in indptr.windows(2) {
            assert!(w[0] <= w[1], "indptr must be non-decreasing");
        }
        assert!(
            indices.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        Csr {
            rows,
            cols,
            indptr,
            indices,
            tcache: OnceLock::new(),
        }
    }

    /// The lazily-built transposed pattern (see [`TransposeCache`]).
    fn transpose_cache(&self) -> &TransposeCache {
        self.tcache.get_or_init(|| {
            let mut counts = vec![0usize; self.cols + 1];
            for &c in &self.indices {
                counts[c as usize + 1] += 1;
            }
            for i in 0..self.cols {
                counts[i + 1] += counts[i];
            }
            let indptr = counts;
            let mut indices = vec![0u32; self.nnz()];
            let mut perm = vec![0usize; self.nnz()];
            let mut cursor = indptr.clone();
            // iter() walks rows in ascending order, so the source rows
            // land in each transposed row in ascending order.
            for (r, c, k) in self.iter() {
                let pos = cursor[c];
                indices[pos] = r as u32;
                perm[pos] = k;
                cursor[c] += 1;
            }
            Arc::new(TransposeCache {
                indptr,
                indices,
                perm,
            })
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (`rows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, grouped by row.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Column indices of one row.
    #[inline]
    pub fn row_indices(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Range of value positions belonging to one row.
    #[inline]
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.indptr[r]..self.indptr[r + 1]
    }

    /// Iterate `(row, col, value_position)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_range(r)
                .map(move |k| (r, self.indices[k] as usize, k))
        })
    }

    /// Compute output rows `range` of `A * X` into `block`.
    fn spmm_rows(
        &self,
        values: &[f64],
        x: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        let d = x.cols();
        for (br, r) in range.enumerate() {
            let out_row = &mut block[br * d..(br + 1) * d];
            let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
            for (&ci, &v) in self.indices[lo..hi].iter().zip(&values[lo..hi]) {
                let c = ci as usize;
                if v == 0.0 {
                    continue;
                }
                let x_row = x.row(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
    }

    /// Dense product `C = A * X` where `A` is this structure with
    /// `values`. Row-partitioned across the ambient thread pool under
    /// the `parallel` feature; bitwise identical to
    /// [`Csr::spmm_serial`] for any thread count.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn spmm(&self, values: &[f64], x: &Matrix) -> Matrix {
        assert_eq!(values.len(), self.nnz(), "spmm: values length");
        assert_eq!(self.cols, x.rows(), "spmm: inner dimension");
        par::timed("spmm", || {
            let mut out = Matrix::zeros(self.rows, x.cols());
            let (rows, d) = (self.rows, x.cols());
            par::for_each_row_block(
                out.data_mut(),
                rows,
                d,
                par::MIN_SPARSE_ROWS,
                |range, block| self.spmm_rows(values, x, range, block),
            );
            out
        })
    }

    /// [`Csr::spmm`] on the calling thread only.
    pub fn spmm_serial(&self, values: &[f64], x: &Matrix) -> Matrix {
        assert_eq!(values.len(), self.nnz(), "spmm: values length");
        assert_eq!(self.cols, x.rows(), "spmm: inner dimension");
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_rows(values, x, 0..self.rows, out.data_mut());
        out
    }

    /// Fused `relu(A * X + bias)` — the GCN layer's per-level hot chain
    /// as one row-partitioned kernel, so the aggregate and pre-activation
    /// intermediates are never materialised.
    ///
    /// Each output row is accumulated exactly as [`Csr::spmm`] does it,
    /// then finished in place with `(acc + bias[j]).max(0.0)` — the same
    /// per-element operations, in the same order, as the unfused
    /// `spmm → add_bias → relu` chain, so the fusion is bitwise invisible
    /// (the checked-in golden traces pin this). `bias` is one row of
    /// `x.cols()` elements.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn spmm_bias_relu(&self, values: &[f64], x: &Matrix, bias: &[f64]) -> Matrix {
        assert_eq!(values.len(), self.nnz(), "spmm_bias_relu: values length");
        assert_eq!(self.cols, x.rows(), "spmm_bias_relu: inner dimension");
        assert_eq!(bias.len(), x.cols(), "spmm_bias_relu: bias width");
        par::timed("spmm_bias_relu", || {
            let mut out = Matrix::zeros(self.rows, x.cols());
            let (rows, d) = (self.rows, x.cols());
            par::for_each_row_block(
                out.data_mut(),
                rows,
                d,
                par::MIN_SPARSE_ROWS,
                |range, block| {
                    self.spmm_rows(values, x, range.clone(), block);
                    for br in 0..range.len() {
                        let out_row = &mut block[br * d..(br + 1) * d];
                        for (o, &b) in out_row.iter_mut().zip(bias) {
                            *o = (*o + b).max(0.0);
                        }
                    }
                },
            );
            out
        })
    }

    /// [`Csr::spmm_bias_relu`] on the calling thread only.
    pub fn spmm_bias_relu_serial(&self, values: &[f64], x: &Matrix, bias: &[f64]) -> Matrix {
        assert_eq!(values.len(), self.nnz(), "spmm_bias_relu: values length");
        assert_eq!(self.cols, x.rows(), "spmm_bias_relu: inner dimension");
        assert_eq!(bias.len(), x.cols(), "spmm_bias_relu: bias width");
        let mut out = Matrix::zeros(self.rows, x.cols());
        let d = x.cols();
        self.spmm_rows(values, x, 0..self.rows, out.data_mut());
        for r in 0..self.rows {
            let out_row = &mut out.data_mut()[r * d..(r + 1) * d];
            for (o, &b) in out_row.iter_mut().zip(bias) {
                *o = (*o + b).max(0.0);
            }
        }
        out
    }

    /// Dense product with the transpose: `C = Aᵀ * X`.
    ///
    /// The serial loop scatters each entry into its output row. The
    /// parallel path gathers instead: it row-partitions the *transposed*
    /// pattern (built once per structure, cached — see
    /// [`Csr::transpose_struct`]), so each chunk owns a contiguous range
    /// of output rows and reads only its own O(nnz/chunks) entries. Per
    /// output row `c` the cached entries arrive in ascending source row
    /// `r` — exactly the order in which the serial scatter visits the
    /// contributions to row `c` — so every output element accumulates in
    /// the serial order and results stay bitwise identical to
    /// [`Csr::spmm_t_serial`] for any thread count.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn spmm_t(&self, values: &[f64], x: &Matrix) -> Matrix {
        assert_eq!(values.len(), self.nnz(), "spmm_t: values length");
        assert_eq!(self.rows, x.rows(), "spmm_t: inner dimension");
        par::timed("spmm_t", || {
            #[cfg(feature = "parallel")]
            if par::use_parallel(self.cols, par::MIN_SPARSE_ROWS) {
                let t = self.transpose_cache();
                let d = x.cols();
                let mut out = Matrix::zeros(self.cols, d);
                par::for_each_row_block(
                    out.data_mut(),
                    self.cols,
                    d,
                    par::MIN_SPARSE_ROWS,
                    |range, block| {
                        for (bc, c) in range.enumerate() {
                            let out_row = &mut block[bc * d..(bc + 1) * d];
                            for k in t.indptr[c]..t.indptr[c + 1] {
                                let v = values[t.perm[k]];
                                // The serial scatter skips exact zeros;
                                // skip them here too so non-finite x rows
                                // still match bitwise.
                                if v == 0.0 {
                                    continue;
                                }
                                let x_row = x.row(t.indices[k] as usize);
                                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                                    *o += v * xv;
                                }
                            }
                        }
                    },
                );
                return out;
            }
            self.spmm_t_serial(values, x)
        })
    }

    /// [`Csr::spmm_t`] on the calling thread only.
    pub fn spmm_t_serial(&self, values: &[f64], x: &Matrix) -> Matrix {
        assert_eq!(values.len(), self.nnz(), "spmm_t: values length");
        assert_eq!(self.rows, x.rows(), "spmm_t: inner dimension");
        let d = x.cols();
        let mut out = Matrix::zeros(self.cols, d);
        for r in 0..self.rows {
            let x_row = x.row(r);
            let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
            for (&ci, &v) in self.indices[lo..hi].iter().zip(&values[lo..hi]) {
                let c = ci as usize;
                if v == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Gradient of [`Csr::spmm`] with respect to `values`: a `1 x nnz`
    /// matrix with `gv[k] = g[r,:] . x[c,:]` for each stored `(r, c, k)`.
    /// Each entry is one independent dot product, so row partitioning is
    /// trivially bitwise exact.
    pub fn spmm_grad_values(&self, g: &Matrix, x: &Matrix) -> Matrix {
        assert_eq!(g.rows(), self.rows, "spmm_grad_values: g rows");
        assert_eq!(x.rows(), self.cols, "spmm_grad_values: x rows");
        assert_eq!(g.cols(), x.cols(), "spmm_grad_values: inner dimension");
        par::timed("spmm_grad_values", || {
            let mut gv = Matrix::zeros(1, self.nnz());
            par::for_each_row_segments(
                gv.data_mut(),
                &self.indptr,
                self.rows,
                par::MIN_SPARSE_ROWS,
                |range, block| {
                    let base = self.indptr[range.start];
                    for r in range {
                        let g_row = g.row(r);
                        for k in self.indptr[r]..self.indptr[r + 1] {
                            let c = self.indices[k] as usize;
                            block[k - base] =
                                g_row.iter().zip(x.row(c)).map(|(&a, &b)| a * b).sum();
                        }
                    }
                },
            );
            gv
        })
    }

    /// Gradient of [`Csr::spmm_t`] with respect to `values`: a `1 x nnz`
    /// matrix with `gv[k] = g[c,:] . x[r,:]` for each stored `(r, c, k)`.
    ///
    /// Each entry is one independent dot product, computed exactly once,
    /// so any partition is bitwise exact. The parallel path row-partitions
    /// the cached *transposed* pattern — chunks then read contiguous rows
    /// of `g` and scatter through `perm` into disjoint `gv` slots.
    pub fn spmm_t_grad_values(&self, g: &Matrix, x: &Matrix) -> Matrix {
        assert_eq!(g.rows(), self.cols, "spmm_t_grad_values: g rows");
        assert_eq!(x.rows(), self.rows, "spmm_t_grad_values: x rows");
        assert_eq!(g.cols(), x.cols(), "spmm_t_grad_values: inner dimension");
        par::timed("spmm_t_grad_values", || {
            #[cfg(feature = "parallel")]
            if par::use_parallel(self.cols, par::MIN_SPARSE_ROWS) {
                let t = self.transpose_cache();
                let mut gv = Matrix::zeros(1, self.nnz());
                par::for_each_permuted_value(
                    gv.data_mut(),
                    &t.indptr,
                    self.cols,
                    &t.perm,
                    par::MIN_SPARSE_ROWS,
                    |c, k| {
                        let x_row = x.row(t.indices[k] as usize);
                        g.row(c).iter().zip(x_row).map(|(&a, &b)| a * b).sum()
                    },
                );
                return gv;
            }
            self.spmm_t_grad_values_serial(g, x)
        })
    }

    /// [`Csr::spmm_t_grad_values`] on the calling thread only.
    pub fn spmm_t_grad_values_serial(&self, g: &Matrix, x: &Matrix) -> Matrix {
        assert_eq!(g.rows(), self.cols, "spmm_t_grad_values: g rows");
        assert_eq!(x.rows(), self.rows, "spmm_t_grad_values: x rows");
        assert_eq!(g.cols(), x.cols(), "spmm_t_grad_values: inner dimension");
        let mut gv = Matrix::zeros(1, self.nnz());
        for r in 0..self.rows {
            let x_row = x.row(r);
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k] as usize;
                gv.data_mut()[k] = g.row(c).iter().zip(x_row).map(|(&a, &b)| a * b).sum();
            }
        }
        gv
    }

    /// Materialise as a dense matrix (tests / small graphs only).
    pub fn to_dense(&self, values: &[f64]) -> Matrix {
        assert_eq!(values.len(), self.nnz());
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, k) in self.iter() {
            m[(r, c)] = values[k];
        }
        m
    }

    /// Transposed structure together with the permutation `perm` such that
    /// `values_t[k_new] = values[perm[k_new]]`.
    ///
    /// The transposed pattern is built once per structure and cached (the
    /// same cache drives the parallel `spmm_t` kernels); this method only
    /// pays for copying it out. Clones share the populated cache.
    pub fn transpose_struct(&self) -> (Csr, Vec<usize>) {
        let t = self.transpose_cache();
        (
            Csr {
                rows: self.cols,
                cols: self.rows,
                indptr: t.indptr.clone(),
                indices: t.indices.clone(),
                tcache: OnceLock::new(),
            },
            t.perm.clone(),
        )
    }

    /// Sparse-sparse product `(C, values_c) = (A, va) * (B, vb)`.
    ///
    /// Used to maintain hyper-graph connectivity `A_k = S_kᵀ Â_{k-1} S_k`
    /// (values are detached from the tape — see DESIGN.md).
    pub fn spgemm(&self, va: &[f64], b: &Csr, vb: &[f64]) -> (Csr, Vec<f64>) {
        assert_eq!(self.cols, b.rows, "spgemm: inner dimension");
        assert_eq!(va.len(), self.nnz());
        assert_eq!(vb.len(), b.nnz());
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        // Gustavson's algorithm with a dense accumulator per row.
        let mut acc = vec![0.0f64; b.cols];
        let mut touched: Vec<u32> = Vec::new();
        for r in 0..self.rows {
            for k in self.row_range(r) {
                let mid = self.indices[k] as usize;
                let av = va[k];
                if av == 0.0 {
                    continue;
                }
                for k2 in b.row_range(mid) {
                    let c = b.indices[k2] as usize;
                    if acc[c] == 0.0 {
                        touched.push(c as u32);
                    }
                    acc[c] += av * vb[k2];
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                let v = acc[c as usize];
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
                acc[c as usize] = 0.0;
            }
            touched.clear();
            indptr.push(indices.len());
        }
        (
            Csr {
                rows: self.rows,
                cols: b.cols,
                indptr,
                indices,
                tcache: OnceLock::new(),
            },
            values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Csr, Vec<f64>) {
        // [1 0 2]
        // [0 3 0]
        let csr = Csr::from_coo(2, 3, &[(0, 0), (0, 2), (1, 1)]);
        (csr, vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn from_coo_layout() {
        let (csr, _) = sample();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_indices(0), &[0, 2]);
        assert_eq!(csr.row_indices(1), &[1]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn from_coo_duplicate_panics() {
        let _ = Csr::from_coo(2, 2, &[(0, 1), (0, 1)]);
    }

    #[test]
    fn spmm_matches_dense() {
        let (csr, vals) = sample();
        let x = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let sparse = csr.spmm(&vals, &x);
        let dense = csr.to_dense(&vals).matmul(&x);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn spmm_t_matches_dense() {
        let (csr, vals) = sample();
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let sparse = csr.spmm_t(&vals, &x);
        let dense = csr.to_dense(&vals).transpose().matmul(&x);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn transpose_struct_roundtrip() {
        let (csr, vals) = sample();
        let (t, perm) = csr.transpose_struct();
        let tvals: Vec<f64> = perm.iter().map(|&k| vals[k]).collect();
        assert_eq!(t.to_dense(&tvals), csr.to_dense(&vals).transpose());
    }

    #[test]
    fn transpose_cache_rows_ascending_per_row() {
        // The determinism contract of the parallel spmm_t path: within
        // each transposed row, source rows are strictly ascending.
        let csr = Csr::from_coo(
            5,
            4,
            &[(0, 1), (1, 1), (2, 1), (4, 1), (0, 0), (3, 0), (2, 3)],
        );
        let t = csr.transpose_cache();
        for c in 0..4 {
            let row = &t.indices[t.indptr[c]..t.indptr[c + 1]];
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {c}: {row:?}");
        }
    }

    #[test]
    fn clone_and_eq_ignore_transpose_cache() {
        let (csr, vals) = sample();
        let cold = csr.clone();
        assert!(csr.tcache.get().is_none(), "cache must start empty");
        let (t, perm) = csr.transpose_struct(); // populates the cache
        assert!(csr.tcache.get().is_some());
        // structural equality, both directions, regardless of cache state
        assert_eq!(csr, cold);
        assert_eq!(cold, csr);
        // a clone of a warm structure shares the built cache
        let warm = csr.clone();
        assert!(warm.tcache.get().is_some());
        // all three behave identically in the kernels
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let g = Matrix::from_vec(3, 2, vec![0.5, -1., 2., 0.25, -3., 1.5]);
        assert_eq!(csr.spmm_t(&vals, &x), cold.spmm_t(&vals, &x));
        assert_eq!(csr.spmm_t(&vals, &x), warm.spmm_t(&vals, &x));
        assert_eq!(
            csr.spmm_t_grad_values(&g, &x),
            cold.spmm_t_grad_values(&g, &x)
        );
        // the cached transpose equals a from-scratch rebuild
        let rebuilt = Csr::from_parts(2, 3, csr.indptr.clone(), csr.indices.clone());
        let (t2, perm2) = rebuilt.transpose_struct();
        assert_eq!(t, t2);
        assert_eq!(perm, perm2);
    }

    #[test]
    fn spmm_t_grad_values_serial_matches_dense() {
        let (csr, _vals) = sample();
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let g = Matrix::from_vec(3, 2, vec![0.5, -1., 2., 0.25, -3., 1.5]);
        let gv = csr.spmm_t_grad_values_serial(&g, &x);
        for (r, c, k) in csr.iter() {
            let want: f64 = g.row(c).iter().zip(x.row(r)).map(|(&a, &b)| a * b).sum();
            assert_eq!(gv.data()[k], want);
        }
        assert_eq!(gv, csr.spmm_t_grad_values(&g, &x));
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = Csr::from_coo(2, 3, &[(0, 0), (0, 2), (1, 1)]);
        let va = vec![1.0, 2.0, 3.0];
        let b = Csr::from_coo(3, 2, &[(0, 1), (1, 0), (2, 0), (2, 1)]);
        let vb = vec![4.0, 5.0, 6.0, 7.0];
        let (c, vc) = a.spgemm(&va, &b, &vb);
        let dense = a.to_dense(&va).matmul(&b.to_dense(&vb));
        assert_eq!(c.to_dense(&vc), dense);
    }

    #[test]
    fn spgemm_drops_exact_zeros() {
        // values that cancel out should not be stored
        let a = Csr::from_coo(1, 2, &[(0, 0), (0, 1)]);
        let b = Csr::from_coo(2, 1, &[(0, 0), (1, 0)]);
        let (c, vc) = a.spgemm(&[1.0, -1.0], &b, &[1.0, 1.0]);
        assert_eq!(c.nnz(), 0);
        assert!(vc.is_empty());
    }

    #[test]
    fn empty_rows_are_fine() {
        let csr = Csr::from_coo(3, 3, &[(2, 0)]);
        let x = Matrix::eye(3);
        let out = csr.spmm(&[5.0], &x);
        assert_eq!(out[(2, 0)], 5.0);
        assert_eq!(out[(0, 0)], 0.0);
    }
}

//! `MgError` — the workspace-wide typed error.
//!
//! It lives in mg-tensor because this is the one crate every other
//! workspace crate already depends on, so fallible APIs anywhere in the
//! stack (dataset generation, negative sampling, checkpoint I/O) can
//! return the same type without a dependency cycle.
//!
//! Policy: conditions a *caller* can trigger with ordinary inputs — a
//! graph too dense to sample balanced negatives from, a corrupt
//! checkpoint file, a config that doesn't match an artifact — are
//! `Result`s of this type. Programmer errors (shape mismatches inside a
//! model, index bugs) stay panics/asserts.

use std::fmt;
use std::path::PathBuf;

/// Workspace-wide error for user-facing fallible operations.
#[derive(Clone, Debug, PartialEq)]
pub enum MgError {
    /// Operating-system I/O failure (open/read/write/rename).
    Io { path: PathBuf, detail: String },
    /// The file does not start with the checkpoint magic — it is not a
    /// checkpoint at all (or the header itself was destroyed).
    BadMagic { found: [u8; 4] },
    /// The checkpoint was written by an unknown format version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// A section's payload failed its CRC or decoded to nonsense.
    Corrupt {
        section: &'static str,
        detail: String,
    },
    /// The file ended in the middle of a section.
    Truncated {
        section: &'static str,
        needed: usize,
        available: usize,
    },
    /// An artifact does not match what the caller asked to do with it
    /// (wrong task, wrong model, wrong parameter shapes).
    Mismatch { detail: String },
    /// The graph has too few distinct non-edges for a balanced negative
    /// sample of the requested size.
    TooDense {
        requested: usize,
        available: usize,
        nodes: usize,
        edges: usize,
    },
    /// A caller-provided input violates a documented precondition.
    InvalidInput { detail: String },
}

impl fmt::Display for MgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgError::Io { path, detail } => {
                write!(f, "I/O error on {}: {detail}", path.display())
            }
            MgError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic bytes {found:?})")
            }
            MgError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format version {found} is not supported \
                     (this build reads version {supported})"
                )
            }
            MgError::Corrupt { section, detail } => {
                write!(f, "checkpoint section '{section}' is corrupt: {detail}")
            }
            MgError::Truncated {
                section,
                needed,
                available,
            } => {
                write!(
                    f,
                    "checkpoint truncated in section '{section}': \
                     needed {needed} bytes, only {available} available"
                )
            }
            MgError::Mismatch { detail } => write!(f, "artifact mismatch: {detail}"),
            MgError::TooDense {
                requested,
                available,
                nodes,
                edges,
            } => {
                write!(
                    f,
                    "{requested} non-edges requested but the graph has only {available} \
                     distinct non-edges ({nodes} nodes, {edges} edges); it is too dense \
                     for a balanced negative set — reduce the requested count or use a \
                     sparser graph"
                )
            }
            MgError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
        }
    }
}

impl std::error::Error for MgError {}

impl MgError {
    /// Convenience constructor wrapping a [`std::io::Error`] with the
    /// path it occurred on.
    pub fn io(path: impl Into<PathBuf>, err: std::io::Error) -> Self {
        MgError::Io {
            path: path.into(),
            detail: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_facts() {
        let e = MgError::TooDense {
            requested: 20,
            available: 3,
            nodes: 10,
            edges: 42,
        };
        let s = e.to_string();
        assert!(s.contains("20 non-edges"));
        assert!(s.contains("too dense"));
        let e = MgError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MgError::BadMagic { found: *b"ELF\x7f" });
    }
}

//! Dense row-major `f64` matrix used as the single tensor type of the
//! autograd engine.
//!
//! Graphs in the AdamGNN workloads are small enough (≤ ~5k nodes, ≤ 64
//! hidden dims) that a straightforward dense matrix with cache-friendly
//! `ikj` matmul is the right tool; no BLAS dependency is needed.

use crate::par;
use rand::Rng;

/// Inner-dimension unroll width of the blocked matmul kernels: each pass
/// over an output row folds in 8 `k` terms as one expression, giving the
/// autovectorizer 8 independent multiplies per output element and
/// amortising the output-row load/store over 8 mul-adds.
const KB: usize = 8;

/// k-panel height of the blocked kernels: the `KC x n` panel of the
/// B-operand (64 x 512 doubles = 256 KiB) stays L2-resident while every
/// output row of the chunk streams across it, so B is read `k / KC`
/// times total instead of once per output row. A multiple of [`KB`] so
/// full panels have no scalar remainder.
const KC: usize = 64;

/// True when the blocked kernels may take their AVX2-compiled path.
///
/// Dispatch is a pure performance choice: the AVX2 and baseline
/// compilations inline the *same* Rust expression tree, and rustc never
/// enables floating-point contraction, so both produce bitwise-identical
/// results — vector width changes scheduling, not rounding.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    // std caches the cpuid probe behind an atomic, so this is cheap.
    std::arch::is_x86_feature_detected!("avx2")
}

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Create an identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initialisation, the standard GNN weight init.
    pub fn glorot(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
    }

    /// Uniform random matrix in `[lo, hi)`.
    pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The single scalar held by a 1x1 matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not 1x1.
    pub fn scalar(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "scalar() requires a 1x1 matrix");
        self.data[0]
    }

    /// Compute output rows `range` of `self * rhs` into `block` (the
    /// rows' contiguous storage). Shared by the serial and parallel
    /// paths so both produce bitwise-identical rows.
    ///
    /// ## Non-finite propagation contract
    ///
    /// Every stored term participates in the accumulation — there is
    /// deliberately no `a_ik == 0.0` skip. Skipping would silently
    /// swallow `0 × NaN` and `0 × ∞` terms, letting a non-finite value
    /// introduced upstream vanish mid-product; instead NaN/±∞ poison the
    /// output row exactly as IEEE-754 dictates, matching the dot-product
    /// form of [`Matrix::matmul_nt`]. For *finite* operands the change
    /// is bitwise invisible: an accumulator that starts at `+0.0` can
    /// never become `-0.0` under round-to-nearest, and adding a `±0.0`
    /// product to it leaves every bit unchanged — which is why the
    /// checked-in golden traces survived the skip's removal untouched.
    /// (Sparse `spmm` kernels differ by design: a stored zero there is
    /// structural — see `csr.rs`.)
    fn matmul_rows(&self, rhs: &Matrix, range: std::ops::Range<usize>, block: &mut [f64]) {
        let w = rhs.cols;
        // ikj loop order: the inner loop walks contiguous rows of `rhs`
        // and `out`, which is the cache-friendly ordering for row-major data.
        for (bi, i) in range.enumerate() {
            let a_row = self.row(i);
            let out_row = &mut block[bi * w..(bi + 1) * w];
            for (k, &a_ik) in a_row.iter().enumerate() {
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
    }

    /// Matrix product `self * rhs`, row-partitioned across the ambient
    /// thread pool when the `parallel` feature is enabled. Chunks are
    /// sized by estimated work (`k·n` mul-adds per output row), and for
    /// any thread count the result is bitwise identical to the same
    /// build's one-thread run. Without `fast-kernels` this is the scalar
    /// kernel of [`Matrix::matmul_serial`] (the golden path); with it,
    /// the cache-blocked [`Matrix::matmul_blocked`] kernel.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        par::timed("matmul", || {
            let mut out = Matrix::zeros(self.rows, rhs.cols);
            let min_rows = par::matmul_chunk_rows(self.cols * rhs.cols);
            par::for_each_row_block(&mut out.data, self.rows, rhs.cols, min_rows, {
                |range, block| {
                    if cfg!(feature = "fast-kernels") {
                        self.matmul_rows_blocked(rhs, range, block);
                    } else {
                        self.matmul_rows(rhs, range, block);
                    }
                }
            });
            out
        })
    }

    /// [`Matrix::matmul`]'s scalar kernel on the calling thread only —
    /// the deterministic reference implementation. Default-build runs
    /// must match it bitwise for any thread count; `fast-kernels` runs
    /// match it to relative tolerance (see `tests/kernel_parity.rs`).
    pub fn matmul_serial(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_rows(rhs, 0..self.rows, &mut out.data);
        out
    }

    /// Compute output rows `range` of `selfᵀ * rhs` into `block`.
    ///
    /// For output row `i` the accumulation over `k` is ascending, the
    /// same addition order per element as the serial k-outer loop. No
    /// zero-skip, per the propagation contract on [`Matrix::matmul_rows`].
    #[cfg(feature = "parallel")]
    fn matmul_tn_rows(&self, rhs: &Matrix, range: std::ops::Range<usize>, block: &mut [f64]) {
        let w = rhs.cols;
        for (bi, i) in range.enumerate() {
            let out_row = &mut block[bi * w..(bi + 1) * w];
            for k in 0..self.rows {
                let a_ki = self.data[k * self.cols + i];
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b;
                }
            }
        }
    }

    /// `selfᵀ * rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        par::timed("matmul_tn", || {
            let min_rows = par::matmul_chunk_rows(self.rows * rhs.cols);
            if cfg!(feature = "fast-kernels") {
                let mut out = Matrix::zeros(self.cols, rhs.cols);
                par::for_each_row_block(
                    &mut out.data,
                    self.cols,
                    rhs.cols,
                    min_rows,
                    |range, block| self.matmul_tn_rows_blocked(rhs, range, block),
                );
                return out;
            }
            // The serial loop is k-outer (contiguous reads of `self`);
            // the parallel loop must be i-outer to own whole output
            // rows. Both accumulate each element in ascending-k order,
            // so they agree bitwise — but only split when the pool will
            // actually parallelise, keeping the fast shape otherwise.
            #[cfg(feature = "parallel")]
            if par::use_parallel(self.cols, min_rows) {
                let mut out = Matrix::zeros(self.cols, rhs.cols);
                par::for_each_row_block(
                    &mut out.data,
                    self.cols,
                    rhs.cols,
                    min_rows,
                    |range, block| self.matmul_tn_rows(rhs, range, block),
                );
                return out;
            }
            #[cfg(not(feature = "parallel"))]
            let _ = min_rows;
            self.matmul_tn_serial(rhs)
        })
    }

    /// [`Matrix::matmul_tn`]'s scalar kernel on the calling thread only
    /// (see [`Matrix::matmul_serial`] for the reference-role contract).
    pub fn matmul_tn_serial(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b;
                }
            }
        }
        out
    }

    /// Compute output rows `range` of `self * rhsᵀ` into `block`.
    fn matmul_nt_rows(&self, rhs: &Matrix, range: std::ops::Range<usize>, block: &mut [f64]) {
        let w = rhs.rows;
        for (bi, i) in range.enumerate() {
            let a_row = self.row(i);
            let out_row = &mut block[bi * w..(bi + 1) * w];
            for (o, j) in out_row.iter_mut().zip(0..rhs.rows) {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// `self * rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        par::timed("matmul_nt", || {
            let mut out = Matrix::zeros(self.rows, rhs.rows);
            let min_rows = par::matmul_chunk_rows(self.cols * rhs.rows);
            par::for_each_row_block(&mut out.data, self.rows, rhs.rows, min_rows, {
                |range, block| {
                    if cfg!(feature = "fast-kernels") {
                        self.matmul_nt_rows_blocked(rhs, range, block);
                    } else {
                        self.matmul_nt_rows(rhs, range, block);
                    }
                }
            });
            out
        })
    }

    /// [`Matrix::matmul_nt`]'s scalar kernel on the calling thread only
    /// (see [`Matrix::matmul_serial`] for the reference-role contract).
    pub fn matmul_nt_serial(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_rows(rhs, 0..self.rows, &mut out.data);
        out
    }

    /// Cache-blocked `self * rhs` on the calling thread — the kernel
    /// [`Matrix::matmul`] dispatches to under `fast-kernels`. Always
    /// compiled so any build can benchmark or parity-test it.
    pub fn matmul_blocked(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_rows_blocked(rhs, 0..self.rows, &mut out.data);
        out
    }

    /// Cache-blocked `selfᵀ * rhs` on the calling thread (see
    /// [`Matrix::matmul_blocked`]).
    pub fn matmul_tn_blocked(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_tn_rows_blocked(rhs, 0..self.cols, &mut out.data);
        out
    }

    /// Cache-blocked `self * rhsᵀ` on the calling thread (see
    /// [`Matrix::matmul_blocked`]).
    pub fn matmul_nt_blocked(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_rows_blocked(rhs, 0..self.rows, &mut out.data);
        out
    }

    /// Blocked body of `self * rhs` for output rows `range`.
    ///
    /// ## Determinism
    ///
    /// Per output element the addition order is fixed by the source
    /// alone: k-panels ascending, eight-term groups left-to-right inside
    /// a panel, then the scalar remainder ascending. The order never
    /// depends on how `0..rows` was partitioned, so blocked-parallel is
    /// bitwise identical to blocked-serial at any pool width (it is
    /// *not* bitwise equal to the scalar kernel, whose per-element order
    /// is plain ascending-k — that pairing is tolerance-checked).
    /// Non-finite operands propagate, same contract as
    /// [`Matrix::matmul_rows`].
    #[inline(always)]
    fn matmul_rows_blocked_impl(
        &self,
        rhs: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        let w = rhs.cols;
        let kd = self.cols;
        let mut kc = 0;
        while kc < kd {
            let kc_end = (kc + KC).min(kd);
            for (bi, i) in range.clone().enumerate() {
                let a_row = self.row(i);
                let out_row = &mut block[bi * w..(bi + 1) * w];
                let mut k = kc;
                while k + KB <= kc_end {
                    let a0 = a_row[k];
                    let a1 = a_row[k + 1];
                    let a2 = a_row[k + 2];
                    let a3 = a_row[k + 3];
                    let a4 = a_row[k + 4];
                    let a5 = a_row[k + 5];
                    let a6 = a_row[k + 6];
                    let a7 = a_row[k + 7];
                    let b0 = rhs.row(k);
                    let b1 = rhs.row(k + 1);
                    let b2 = rhs.row(k + 2);
                    let b3 = rhs.row(k + 3);
                    let b4 = rhs.row(k + 4);
                    let b5 = rhs.row(k + 5);
                    let b6 = rhs.row(k + 6);
                    let b7 = rhs.row(k + 7);
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o += a0 * b0[j]
                            + a1 * b1[j]
                            + a2 * b2[j]
                            + a3 * b3[j]
                            + a4 * b4[j]
                            + a5 * b5[j]
                            + a6 * b6[j]
                            + a7 * b7[j];
                    }
                    k += KB;
                }
                while k < kc_end {
                    let a_ik = a_row[k];
                    let b_row = rhs.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a_ik * b;
                    }
                    k += 1;
                }
            }
            kc = kc_end;
        }
    }

    /// Blocked body of `selfᵀ * rhs` for output rows `range`: i-outer
    /// with strided gathers of the A-column, same panel/unroll/remainder
    /// order (and hence the same determinism argument) as
    /// [`Matrix::matmul_rows_blocked_impl`].
    #[inline(always)]
    fn matmul_tn_rows_blocked_impl(
        &self,
        rhs: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        let w = rhs.cols;
        let p = self.cols;
        let kd = self.rows;
        let mut kc = 0;
        while kc < kd {
            let kc_end = (kc + KC).min(kd);
            for (bi, i) in range.clone().enumerate() {
                let out_row = &mut block[bi * w..(bi + 1) * w];
                let mut k = kc;
                while k + KB <= kc_end {
                    let a0 = self.data[k * p + i];
                    let a1 = self.data[(k + 1) * p + i];
                    let a2 = self.data[(k + 2) * p + i];
                    let a3 = self.data[(k + 3) * p + i];
                    let a4 = self.data[(k + 4) * p + i];
                    let a5 = self.data[(k + 5) * p + i];
                    let a6 = self.data[(k + 6) * p + i];
                    let a7 = self.data[(k + 7) * p + i];
                    let b0 = rhs.row(k);
                    let b1 = rhs.row(k + 1);
                    let b2 = rhs.row(k + 2);
                    let b3 = rhs.row(k + 3);
                    let b4 = rhs.row(k + 4);
                    let b5 = rhs.row(k + 5);
                    let b6 = rhs.row(k + 6);
                    let b7 = rhs.row(k + 7);
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o += a0 * b0[j]
                            + a1 * b1[j]
                            + a2 * b2[j]
                            + a3 * b3[j]
                            + a4 * b4[j]
                            + a5 * b5[j]
                            + a6 * b6[j]
                            + a7 * b7[j];
                    }
                    k += KB;
                }
                while k < kc_end {
                    let a_ki = self.data[k * p + i];
                    let b_row = rhs.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a_ki * b;
                    }
                    k += 1;
                }
            }
            kc = kc_end;
        }
    }

    /// Blocked body of `self * rhsᵀ` for output rows `range`.
    ///
    /// Two changes over the scalar kernel: output columns are tiled in
    /// [`KC`]-row panels of `rhs` so a panel (256 KiB at k = 512) stays
    /// cache-resident across every output row of the chunk — the scalar
    /// kernel streams the whole of `rhs` once per output row — and each
    /// dot product runs [`KB`] independent accumulator lanes (breaking
    /// the serial add-latency chain), combined in a fixed tree plus the
    /// scalar-remainder sum. Each output element is still computed in
    /// one shot, and lane assignment and the combine tree depend only on
    /// `k`, so nothing varies with the partition.
    #[inline(always)]
    fn matmul_nt_rows_blocked_impl(
        &self,
        rhs: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        let w = rhs.rows;
        let kd = self.cols;
        let mut jc = 0;
        while jc < w {
            let jc_end = (jc + KC).min(w);
            for (bi, i) in range.clone().enumerate() {
                let a_row = self.row(i);
                let out_row = &mut block[bi * w..(bi + 1) * w];
                for (dj, o) in out_row[jc..jc_end].iter_mut().enumerate() {
                    let b_row = rhs.row(jc + dj);
                    let mut acc = [0.0f64; KB];
                    let mut k = 0;
                    while k + KB <= kd {
                        let a: &[f64; KB] = a_row[k..k + KB].try_into().unwrap();
                        let b: &[f64; KB] = b_row[k..k + KB].try_into().unwrap();
                        for u in 0..KB {
                            acc[u] += a[u] * b[u];
                        }
                        k += KB;
                    }
                    let mut tail = 0.0;
                    while k < kd {
                        tail += a_row[k] * b_row[k];
                        k += 1;
                    }
                    *o = (((acc[0] + acc[1]) + (acc[2] + acc[3]))
                        + ((acc[4] + acc[5]) + (acc[6] + acc[7])))
                        + tail;
                }
            }
            jc = jc_end;
        }
    }

    /// AVX2-compiled instantiations of the blocked bodies. Same inlined
    /// expression tree as the baseline compilation — see
    /// [`avx2_available`] for why results stay bitwise identical.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_rows_blocked_avx2(
        &self,
        rhs: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        self.matmul_rows_blocked_impl(rhs, range, block)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_tn_rows_blocked_avx2(
        &self,
        rhs: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        self.matmul_tn_rows_blocked_impl(rhs, range, block)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_nt_rows_blocked_avx2(
        &self,
        rhs: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        self.matmul_nt_rows_blocked_impl(rhs, range, block)
    }

    /// Blocked `self * rhs` body with runtime ISA dispatch.
    fn matmul_rows_blocked(&self, rhs: &Matrix, range: std::ops::Range<usize>, block: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { return self.matmul_rows_blocked_avx2(rhs, range, block) };
        }
        self.matmul_rows_blocked_impl(rhs, range, block)
    }

    /// Blocked `selfᵀ * rhs` body with runtime ISA dispatch.
    fn matmul_tn_rows_blocked(
        &self,
        rhs: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { return self.matmul_tn_rows_blocked_avx2(rhs, range, block) };
        }
        self.matmul_tn_rows_blocked_impl(rhs, range, block)
    }

    /// Blocked `self * rhsᵀ` body with runtime ISA dispatch.
    fn matmul_nt_rows_blocked(
        &self,
        rhs: &Matrix,
        range: std::ops::Range<usize>,
        block: &mut [f64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { return self.matmul_nt_rows_blocked_avx2(rhs, range, block) };
        }
        self.matmul_nt_rows_blocked_impl(rhs, range, block)
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise map. `f` must be `Sync` so large matrices can be
    /// chunked across threads under the `parallel` feature (elementwise
    /// ops have no reductions, so any partition is bitwise exact).
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        par::timed("map", || {
            #[cfg(feature = "parallel")]
            if par::use_parallel(self.data.len(), par::MIN_ELEMS) {
                let mut out = Matrix::zeros(self.rows, self.cols);
                par::for_each_row_block(
                    &mut out.data,
                    self.data.len(),
                    1,
                    par::MIN_ELEMS,
                    |range, block| {
                        for (o, i) in block.iter_mut().zip(range) {
                            *o = f(self.data[i]);
                        }
                    },
                );
                return out;
            }
            Matrix {
                rows: self.rows,
                cols: self.cols,
                data: self.data.iter().map(|&x| f(x)).collect(),
            }
        })
    }

    /// Elementwise binary zip (see [`Matrix::map`] for the `Sync` bound).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64 + Sync) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip: shape mismatch");
        par::timed("zip", || {
            #[cfg(feature = "parallel")]
            if par::use_parallel(self.data.len(), par::MIN_ELEMS) {
                let mut out = Matrix::zeros(self.rows, self.cols);
                par::for_each_row_block(
                    &mut out.data,
                    self.data.len(),
                    1,
                    par::MIN_ELEMS,
                    |range, block| {
                        for (o, i) in block.iter_mut().zip(range) {
                            *o = f(self.data[i], rhs.data[i]);
                        }
                    },
                );
                return out;
            }
            Matrix {
                rows: self.rows,
                cols: self.cols,
                data: self
                    .data
                    .iter()
                    .zip(&rhs.data)
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            }
        })
    }

    /// `self += alpha * rhs`, in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled: shape mismatch");
        par::timed("add_scaled", || {
            let len = self.data.len();
            par::for_each_row_block(&mut self.data, len, 1, par::MIN_ELEMS, |range, block| {
                for (o, i) in block.iter_mut().zip(range) {
                    *o += alpha * rhs.data[i];
                }
            });
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Dot product between two rows of (possibly different) matrices.
    pub fn row_dot(&self, i: usize, other: &Matrix, j: usize) -> f64 {
        debug_assert_eq!(self.cols, other.cols);
        self.row(i)
            .iter()
            .zip(other.row(j))
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Index of the maximum element in a row (first on ties).
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Stack matrices vertically (all must share `cols`).
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of zero matrices");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn eye_diagonal() {
        let m = Matrix::eye(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 0.0);
        assert_eq!(m.sum(), 3.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let c = a.matmul(&Matrix::eye(2));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Matrix::uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, -1.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!((0..fast.len()).all(|i| (fast.data()[i] - slow.data()[i]).abs() < 1e-12));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let a = Matrix::uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(5, 3, -1.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!((0..fast.len()).all(|i| (fast.data()[i] - slow.data()[i]).abs() < 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = a.map(f64::abs);
        assert_eq!(b.data(), &[1., 2., 3.]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2., 0., 6.]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_vec(1, 2, vec![1., 2.]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[0.5, 1.0]);
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Matrix::glorot(10, 20, &mut rng);
        let limit = (6.0 / 30.0_f64).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn row_argmax_first_on_ties() {
        let m = Matrix::from_vec(1, 4, vec![0.5, 2.0, 2.0, 1.0]);
        assert_eq!(m.row_argmax(0), 1);
    }

    #[test]
    fn scalar_of_1x1() {
        let m = Matrix::from_vec(1, 1, vec![42.0]);
        assert_eq!(m.scalar(), 42.0);
    }
}

//! Dense row-major `f64` matrix used as the single tensor type of the
//! autograd engine.
//!
//! Graphs in the AdamGNN workloads are small enough (≤ ~5k nodes, ≤ 64
//! hidden dims) that a straightforward dense matrix with cache-friendly
//! `ikj` matmul is the right tool; no BLAS dependency is needed.

use rand::{Rng, RngExt};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Matrix { rows, cols, data: vec![v; rows * cols] }
    }

    /// Create an identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initialisation, the standard GNN weight init.
    pub fn glorot(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
    }

    /// Uniform random matrix in `[lo, hi)`.
    pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The single scalar held by a 1x1 matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not 1x1.
    pub fn scalar(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "scalar() requires a 1x1 matrix");
        self.data[0]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: the inner loop walks contiguous rows of `rhs`
        // and `out`, which is the cache-friendly ordering for row-major data.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b;
                }
            }
        }
        out
    }

    /// `self * rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise binary zip.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += alpha * rhs`, in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Dot product between two rows of (possibly different) matrices.
    pub fn row_dot(&self, i: usize, other: &Matrix, j: usize) -> f64 {
        debug_assert_eq!(self.cols, other.cols);
        self.row(i).iter().zip(other.row(j)).map(|(&a, &b)| a * b).sum()
    }

    /// Index of the maximum element in a row (first on ties).
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Stack matrices vertically (all must share `cols`).
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of zero matrices");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn eye_diagonal() {
        let m = Matrix::eye(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 0.0);
        assert_eq!(m.sum(), 3.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let c = a.matmul(&Matrix::eye(2));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Matrix::uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, -1.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!((0..fast.len()).all(|i| (fast.data()[i] - slow.data()[i]).abs() < 1e-12));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let a = Matrix::uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(5, 3, -1.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!((0..fast.len()).all(|i| (fast.data()[i] - slow.data()[i]).abs() < 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = a.map(f64::abs);
        assert_eq!(b.data(), &[1., 2., 3.]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2., 0., 6.]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_vec(1, 2, vec![1., 2.]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[0.5, 1.0]);
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Matrix::glorot(10, 20, &mut rng);
        let limit = (6.0 / 30.0_f64).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn row_argmax_first_on_ties() {
        let m = Matrix::from_vec(1, 4, vec![0.5, 2.0, 2.0, 1.0]);
        assert_eq!(m.row_argmax(0), 1);
    }

    #[test]
    fn scalar_of_1x1() {
        let m = Matrix::from_vec(1, 1, vec![42.0]);
        assert_eq!(m.scalar(), 42.0);
    }
}

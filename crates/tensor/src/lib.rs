//! # mg-tensor
//!
//! A small, dependable reverse-mode autograd engine over dense `f64`
//! matrices with first-class CSR sparse support, built as the substrate
//! for the AdamGNN reproduction (no mature GNN/autograd stack exists in
//! Rust, so this crate provides one).
//!
//! ## Highlights
//! * [`Matrix`] — row-major dense matrix with cache-aware matmuls.
//! * [`Csr`] — sparsity structure separated from values, so sparse values
//!   can be learnable tape variables (AdamGNN's `S_k` needs this).
//! * [`Tape`] / [`Var`] — eager-forward, arena-based autograd with an
//!   op set tailored to graph neural networks: `spmm`, segment softmax,
//!   gather/scatter, pairwise BCE decoders and the DEC Student-t KL loss.
//! * [`ParamStore`] / [`AdamConfig`] — Adam optimizer with gradient
//!   clipping and checkpointing.
//! * [`gradcheck`] — central-difference validation used by the test
//!   suite to verify every op's backward implementation.
//!
//! ## Example
//! ```
//! use mg_tensor::{Matrix, Tape};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Matrix::from_vec(1, 2, vec![3.0, -1.0]), true);
//! let y = tape.mul_elem(x, x);
//! let loss = tape.sum_all(y);
//! let grads = tape.backward(loss);
//! // d/dx sum(x^2) = 2x
//! assert_eq!(grads.get(x).unwrap().data(), &[6.0, -2.0]);
//! ```

mod backward;
mod checkpoint;
mod csr;
mod error;
pub mod gradcheck;
mod matrix;
mod ops;
mod optim;
mod par;
mod tape;

pub use checkpoint::{CheckpointScope, KeepVars};
pub use csr::Csr;
pub use error::MgError;
pub use gradcheck::{check_gradients, check_gradients_sampled, GradCheckReport};
pub use matrix::Matrix;
pub use ops::{sigmoid, softmax_rows, student_t_target};
pub use optim::{AdamConfig, Binding, ParamId, ParamSnapshot, ParamStore};
pub use tape::{Gradients, Tape, Var};

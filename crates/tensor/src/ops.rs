//! Forward op constructors on [`Tape`].
//!
//! Every method computes its result eagerly, validates shapes with
//! assertions (shape bugs should fail loudly at the call site, not three
//! ops later), and records the op for the backward pass in
//! [`crate::backward`].

use std::rc::Rc;

use crate::csr::Csr;
use crate::matrix::Matrix;
use crate::tape::{BceCache, KlCache, Op, Tape, Var};

impl Tape {
    /// Elementwise sum `a + b`.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.zip(&nodes[b.0].value, |x, y| x + y)
        };
        let rg = self.rg2(a, b);
        self.push(value, Op::Add(a, b), rg)
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.zip(&nodes[b.0].value, |x, y| x - y)
        };
        let rg = self.rg2(a, b);
        self.push(value, Op::Sub(a, b), rg)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul_elem(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.zip(&nodes[b.0].value, |x, y| x * y)
        };
        let rg = self.rg2(a, b);
        self.push(value, Op::MulElem(a, b), rg)
    }

    /// Multiply by a compile-time constant scalar.
    pub fn scale(&self, a: Var, alpha: f64) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(|x| x * alpha);
        let rg = self.rg(a);
        self.push(value, Op::Scale(a, alpha), rg)
    }

    /// Add a constant scalar to every element.
    pub fn add_scalar(&self, a: Var, c: f64) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(|x| x + c);
        let rg = self.rg(a);
        self.push(value, Op::AddScalar(a, c), rg)
    }

    /// Broadcast-add a `1 x d` bias row to every row of `a (n x d)`.
    pub fn add_bias(&self, a: Var, bias: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.0].value, &nodes[bias.0].value);
            assert_eq!(bv.rows(), 1, "add_bias: bias must be 1 x d");
            assert_eq!(av.cols(), bv.cols(), "add_bias: width mismatch");
            let brow = bv.row(0).to_vec();
            Matrix::from_fn(av.rows(), av.cols(), |i, j| av[(i, j)] + brow[j])
        };
        let rg = self.rg2(a, bias);
        self.push(value, Op::AddBias(a, bias), rg)
    }

    /// Dense matrix product.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.matmul(&nodes[b.0].value)
        };
        let rg = self.rg2(a, b);
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// Materialised transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.transpose();
        let rg = self.rg(a);
        self.push(value, Op::Transpose(a), rg)
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(|x| x.max(0.0));
        let rg = self.rg(a);
        self.push(value, Op::Relu(a), rg)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, a: Var, slope: f64) -> Var {
        let value = self.nodes.borrow()[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { slope * x });
        let rg = self.rg(a);
        self.push(value, Op::LeakyRelu(a, slope), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(sigmoid);
        let rg = self.rg(a);
        self.push(value, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(f64::tanh);
        let rg = self.rg(a);
        self.push(value, Op::Tanh(a), rg)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self, a: Var) -> Var {
        let value = {
            let av = &self.nodes.borrow()[a.0].value;
            softmax_rows(av)
        };
        let rg = self.rg(a);
        self.push(value, Op::SoftmaxRows(a), rg)
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&self, a: Var) -> Var {
        let value = {
            let av = &self.nodes.borrow()[a.0].value;
            let mut out = Matrix::zeros(av.rows(), av.cols());
            for i in 0..av.rows() {
                let row = av.row(i);
                let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lse = mx + row.iter().map(|&x| (x - mx).exp()).sum::<f64>().ln();
                for (o, &x) in out.row_mut(i).iter_mut().zip(row) {
                    *o = x - lse;
                }
            }
            out
        };
        let rg = self.rg(a);
        self.push(value, Op::LogSoftmaxRows(a), rg)
    }

    /// Sparse-dense product `csr(values) * dense`.
    ///
    /// `values` must be a `1 x nnz` variable; gradients reach both the
    /// sparse values and the dense operand.
    pub fn spmm(&self, csr: Rc<Csr>, values: Var, dense: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let vv = &nodes[values.0].value;
            assert_eq!(vv.shape(), (1, csr.nnz()), "spmm: values must be 1 x nnz");
            csr.spmm(vv.data(), &nodes[dense.0].value)
        };
        let rg = self.rg2(values, dense);
        self.push(value, Op::Spmm { csr, values, dense }, rg)
    }

    /// Fused `relu(csr(values) * dense + bias)` — the GCN layer's
    /// spmm → add_bias → relu chain as a single kernel, skipping the two
    /// intermediate tape nodes. Element-for-element the forward applies
    /// the same operations in the same order as the unfused chain, and
    /// the backward composes the same three gradient kernels, so fusing
    /// is bitwise invisible to training traces. `bias` must be `1 x d`.
    pub fn spmm_bias_relu(&self, csr: Rc<Csr>, values: Var, dense: Var, bias: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let vv = &nodes[values.0].value;
            let bv = &nodes[bias.0].value;
            assert_eq!(
                vv.shape(),
                (1, csr.nnz()),
                "spmm_bias_relu: values must be 1 x nnz"
            );
            assert_eq!(bv.rows(), 1, "spmm_bias_relu: bias must be 1 x d");
            csr.spmm_bias_relu(vv.data(), &nodes[dense.0].value, bv.row(0))
        };
        let rg = self.rg3(values, dense, bias);
        self.push(
            value,
            Op::SpmmBiasRelu {
                csr,
                values,
                dense,
                bias,
            },
            rg,
        )
    }

    /// Sparse-dense product with the structural transpose: `csr(values)ᵀ * dense`.
    pub fn spmm_t(&self, csr: Rc<Csr>, values: Var, dense: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let vv = &nodes[values.0].value;
            assert_eq!(vv.shape(), (1, csr.nnz()), "spmm_t: values must be 1 x nnz");
            csr.spmm_t(vv.data(), &nodes[dense.0].value)
        };
        let rg = self.rg2(values, dense);
        self.push(value, Op::SpmmT { csr, values, dense }, rg)
    }

    /// Select rows by index (with repetition allowed).
    pub fn gather_rows(&self, src: Var, idx: Rc<Vec<usize>>) -> Var {
        let value = {
            let sv = &self.nodes.borrow()[src.0].value;
            let mut out = Matrix::zeros(idx.len(), sv.cols());
            for (r, &i) in idx.iter().enumerate() {
                assert!(i < sv.rows(), "gather_rows: index {i} out of range");
                out.row_mut(r).copy_from_slice(sv.row(i));
            }
            out
        };
        let rg = self.rg(src);
        self.push(value, Op::GatherRows { src, idx }, rg)
    }

    /// Sum rows of `src` into `n_seg` buckets given per-row segment ids.
    pub fn segment_sum(&self, src: Var, seg: Rc<Vec<usize>>, n_seg: usize) -> Var {
        let value = {
            let sv = &self.nodes.borrow()[src.0].value;
            assert_eq!(sv.rows(), seg.len(), "segment_sum: length mismatch");
            let mut out = Matrix::zeros(n_seg, sv.cols());
            for (r, &s) in seg.iter().enumerate() {
                assert!(s < n_seg, "segment_sum: segment {s} out of range");
                let src_row = sv.row(r);
                for (o, &x) in out.row_mut(s).iter_mut().zip(src_row) {
                    *o += x;
                }
            }
            out
        };
        let rg = self.rg(src);
        self.push(value, Op::SegmentSum { src, seg, n_seg }, rg)
    }

    /// Softmax over entries sharing a segment id. `scores` is `n_e x 1`.
    ///
    /// Segments need not be contiguous. Empty segments are fine.
    pub fn segment_softmax(&self, scores: Var, seg: Rc<Vec<usize>>, n_seg: usize) -> Var {
        let value = {
            let sv = &self.nodes.borrow()[scores.0].value;
            assert_eq!(sv.cols(), 1, "segment_softmax: scores must be n x 1");
            assert_eq!(sv.rows(), seg.len(), "segment_softmax: length mismatch");
            segment_softmax(sv.data(), &seg, n_seg)
        };
        let rg = self.rg(scores);
        self.push(value, Op::SegmentSoftmax { scores, seg, n_seg }, rg)
    }

    /// Per-row dot product `out[i] = a[i,:] . b[i,:]`, yielding `n x 1`.
    pub fn row_dot(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
            assert_eq!(av.shape(), bv.shape(), "row_dot: shape mismatch");
            Matrix::from_fn(av.rows(), 1, |i, _| av.row_dot(i, bv, i))
        };
        let rg = self.rg2(a, b);
        self.push(value, Op::RowDot(a, b), rg)
    }

    /// Scale row `i` of `a` by `col[i]` (`col` is `n x 1`).
    pub fn mul_col(&self, a: Var, col: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (av, cv) = (&nodes[a.0].value, &nodes[col.0].value);
            assert_eq!(cv.cols(), 1, "mul_col: col must be n x 1");
            assert_eq!(av.rows(), cv.rows(), "mul_col: height mismatch");
            Matrix::from_fn(av.rows(), av.cols(), |i, j| av[(i, j)] * cv[(i, 0)])
        };
        let rg = self.rg2(a, col);
        self.push(value, Op::MulCol { a, col }, rg)
    }

    /// Concatenate matrices along columns (all must share row count).
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: no inputs");
        let value = {
            let nodes = self.nodes.borrow();
            let rows = nodes[parts[0].0].value.rows();
            let total: usize = parts.iter().map(|v| nodes[v.0].value.cols()).sum();
            let mut out = Matrix::zeros(rows, total);
            let mut off = 0;
            for v in parts {
                let pv = &nodes[v.0].value;
                assert_eq!(pv.rows(), rows, "concat_cols: row mismatch");
                for i in 0..rows {
                    out.row_mut(i)[off..off + pv.cols()].copy_from_slice(pv.row(i));
                }
                off += pv.cols();
            }
            out
        };
        let rg = parts.iter().any(|&v| self.rg(v));
        self.push(value, Op::ConcatCols(parts.to_vec()), rg)
    }

    /// Take the column slice `[start, end)`.
    pub fn slice_cols(&self, src: Var, start: usize, end: usize) -> Var {
        let value = {
            let sv = &self.nodes.borrow()[src.0].value;
            assert!(start < end && end <= sv.cols(), "slice_cols: bad range");
            Matrix::from_fn(sv.rows(), end - start, |i, j| sv[(i, start + j)])
        };
        let rg = self.rg(src);
        self.push(value, Op::SliceCols { src, start, end }, rg)
    }

    /// Sum of all elements, as a `1 x 1` matrix.
    pub fn sum_all(&self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.nodes.borrow()[a.0].value.sum()]);
        let rg = self.rg(a);
        self.push(value, Op::SumAll(a), rg)
    }

    /// Mean of all elements, as a `1 x 1` matrix.
    pub fn mean_all(&self, a: Var) -> Var {
        let value = {
            let av = &self.nodes.borrow()[a.0].value;
            Matrix::from_vec(1, 1, vec![av.sum() / av.len() as f64])
        };
        let rg = self.rg(a);
        self.push(value, Op::MeanAll(a), rg)
    }

    /// Column-wise mean over rows: `n x d -> 1 x d`.
    pub fn mean_rows(&self, a: Var) -> Var {
        let value = {
            let av = &self.nodes.borrow()[a.0].value;
            assert!(av.rows() > 0, "mean_rows of empty matrix");
            let mut out = Matrix::zeros(1, av.cols());
            for i in 0..av.rows() {
                for (o, &x) in out.row_mut(0).iter_mut().zip(av.row(i)) {
                    *o += x;
                }
            }
            let n = av.rows() as f64;
            for o in out.data_mut() {
                *o /= n;
            }
            out
        };
        let rg = self.rg(a);
        self.push(value, Op::MeanRows(a), rg)
    }

    /// Column-wise sum over rows: `n x d -> 1 x d`.
    pub fn sum_rows(&self, a: Var) -> Var {
        let value = {
            let av = &self.nodes.borrow()[a.0].value;
            let mut out = Matrix::zeros(1, av.cols());
            for i in 0..av.rows() {
                for (o, &x) in out.row_mut(0).iter_mut().zip(av.row(i)) {
                    *o += x;
                }
            }
            out
        };
        let rg = self.rg(a);
        self.push(value, Op::SumRows(a), rg)
    }

    /// Column-wise max over rows: `n x d -> 1 x d` (subgradient to argmax row).
    pub fn max_rows(&self, a: Var) -> Var {
        let (value, argmax) = {
            let av = &self.nodes.borrow()[a.0].value;
            assert!(av.rows() > 0, "max_rows of empty matrix");
            let mut out = Matrix::full(1, av.cols(), f64::NEG_INFINITY);
            let mut argmax = vec![0usize; av.cols()];
            for i in 0..av.rows() {
                for (j, &x) in av.row(i).iter().enumerate() {
                    if x > out[(0, j)] {
                        out[(0, j)] = x;
                        argmax[j] = i;
                    }
                }
            }
            (out, argmax)
        };
        let rg = self.rg(a);
        self.push(
            value,
            Op::MaxRows {
                src: a,
                argmax: Rc::new(argmax),
            },
            rg,
        )
    }

    /// Mean negative log-likelihood over the node subset `nodes`:
    /// `-(1/|nodes|) Σ_{i∈nodes} logp[i, targets[i]]`.
    ///
    /// `targets` is indexed by absolute row, so it must cover every row
    /// mentioned in `nodes`.
    pub fn nll_loss(&self, logp: Var, targets: Rc<Vec<usize>>, nodes: Rc<Vec<usize>>) -> Var {
        let value = {
            let lv = &self.nodes.borrow()[logp.0].value;
            assert!(!nodes.is_empty(), "nll_loss: empty node set");
            let mut acc = 0.0;
            for &i in nodes.iter() {
                let t = targets[i];
                assert!(t < lv.cols(), "nll_loss: target {t} out of range");
                acc -= lv[(i, t)];
            }
            Matrix::from_vec(1, 1, vec![acc / nodes.len() as f64])
        };
        let rg = self.rg(logp);
        self.push(
            value,
            Op::NllLoss {
                logp,
                targets,
                nodes,
            },
            rg,
        )
    }

    /// Mean BCE-with-logits over inner-product pair scores
    /// `z_k = h[i_k,:] . h[j_k,:]` with binary labels.
    ///
    /// This implements both the link-prediction decoder and AdamGNN's
    /// negative-sampled reconstruction loss (Eq. 6).
    pub fn bce_pairs(&self, h: Var, pairs: Rc<Vec<(usize, usize)>>, labels: Rc<Vec<f64>>) -> Var {
        assert_eq!(pairs.len(), labels.len(), "bce_pairs: length mismatch");
        assert!(!pairs.is_empty(), "bce_pairs: empty pair set");
        let (value, logits) = {
            let hv = &self.nodes.borrow()[h.0].value;
            let mut logits = Vec::with_capacity(pairs.len());
            let mut acc = 0.0;
            for (&(i, j), &y) in pairs.iter().zip(labels.iter()) {
                let z = hv.row_dot(i, hv, j);
                logits.push(z);
                // numerically stable BCE-with-logits
                acc += z.max(0.0) - z * y + (-z.abs()).exp().ln_1p();
            }
            (
                Matrix::from_vec(1, 1, vec![acc / pairs.len() as f64]),
                logits,
            )
        };
        let rg = self.rg(h);
        self.push(
            value,
            Op::BcePairs {
                h,
                pairs,
                labels,
                cache: Rc::new(BceCache { logits }),
            },
            rg,
        )
    }

    /// DEC-style Student-t KL clustering loss (AdamGNN Eq. 5), mean over
    /// nodes. `egos` are the row indices acting as cluster centres; the
    /// target distribution `P` is treated as constant (standard DEC).
    pub fn student_t_kl(&self, h: Var, egos: Rc<Vec<usize>>) -> Var {
        self.student_t_kl_inner(h, egos, None)
    }

    /// [`Tape::student_t_kl`] with an explicit constant target `P`
    /// instead of the self-derived one.
    ///
    /// The production loss computes `P` from the current `Q` but treats
    /// it as constant in backward (standard DEC), so the analytic
    /// gradient is the gradient of the *P-frozen* objective. A numeric
    /// gradient check must difference that same function: this entry
    /// point lets verification pin `P` at the reference parameters (see
    /// [`student_t_target`]).
    pub fn student_t_kl_with_target(
        &self,
        h: Var,
        egos: Rc<Vec<usize>>,
        target: Rc<Matrix>,
    ) -> Var {
        self.student_t_kl_inner(h, egos, Some(target))
    }

    fn student_t_kl_inner(&self, h: Var, egos: Rc<Vec<usize>>, target: Option<Rc<Matrix>>) -> Var {
        assert!(!egos.is_empty(), "student_t_kl: no egos");
        let (value, t) = {
            let hv = &self.nodes.borrow()[h.0].value;
            let n = hv.rows();
            let m = egos.len();
            let mut t = Matrix::zeros(n, m);
            for j in 0..n {
                for (c, &e) in egos.iter().enumerate() {
                    let mut d2 = 0.0;
                    for (a, b) in hv.row(j).iter().zip(hv.row(e)) {
                        let diff = a - b;
                        d2 += diff * diff;
                    }
                    t[(j, c)] = 1.0 / (1.0 + d2);
                }
            }
            let (q, self_p) = kl_distributions(&t);
            let p = match &target {
                Some(p) => {
                    assert_eq!(p.shape(), (n, m), "student_t_kl: target shape mismatch");
                    p.as_ref()
                }
                None => &self_p,
            };
            let mut loss = 0.0;
            for j in 0..n {
                for c in 0..m {
                    let (pj, qj) = (p[(j, c)], q[(j, c)]);
                    if pj > 0.0 {
                        loss += pj * (pj / qj).ln();
                    }
                }
            }
            (Matrix::from_vec(1, 1, vec![loss / n as f64]), t)
        };
        let rg = self.rg(h);
        self.push(
            value,
            Op::StudentTKl {
                h,
                egos,
                cache: Rc::new(KlCache { t }),
                target,
            },
            rg,
        )
    }

    /// Inverted dropout with keep probability `1 - p`. The mask is drawn
    /// once at forward time from `rng` and replayed in backward.
    pub fn dropout(&self, src: Var, p: f64, rng: &mut impl rand::RngExt) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout: p must be in [0,1)");
        if p == 0.0 {
            return src;
        }
        let keep = 1.0 - p;
        let (value, mask) = {
            let sv = &self.nodes.borrow()[src.0].value;
            let mask: Vec<f64> = (0..sv.len())
                .map(|_| {
                    if rng.random::<f64>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect();
            let mut out = sv.clone();
            for (o, &m) in out.data_mut().iter_mut().zip(&mask) {
                *o *= m;
            }
            (out, mask)
        };
        let rg = self.rg(src);
        self.push(
            value,
            Op::Dropout {
                src,
                mask: Rc::new(mask),
            },
            rg,
        )
    }

    /// Row-major reshape to `rows x cols` (element count must match).
    pub fn reshape(&self, src: Var, rows: usize, cols: usize) -> Var {
        let value = {
            let sv = &self.nodes.borrow()[src.0].value;
            assert_eq!(sv.len(), rows * cols, "reshape: element count mismatch");
            Matrix::from_vec(rows, cols, sv.data().to_vec())
        };
        let rg = self.rg(src);
        self.push(value, Op::Reshape(src), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(f64::exp);
        let rg = self.rg(a);
        self.push(value, Op::Exp(a), rg)
    }

    /// Elementwise natural logarithm.
    ///
    /// # Panics
    /// Panics (via the non-finite tape check) if any input is <= 0.
    pub fn ln(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(f64::ln);
        let rg = self.rg(a);
        self.push(value, Op::Ln(a), rg)
    }

    /// Per-column standardisation ("graph norm"): every column is shifted
    /// to zero mean and scaled to unit variance over the rows. The
    /// normalisation GIN stacks need in place of batch norm; statistics
    /// are per-call (per graph), so eval needs no running averages.
    pub fn col_normalize(&self, src: Var) -> Var {
        let eps = 1e-5;
        let (value, inv_std) = {
            let sv = &self.nodes.borrow()[src.0].value;
            let (n, d) = sv.shape();
            assert!(n > 0, "col_normalize of empty matrix");
            let mut mean = vec![0.0f64; d];
            for i in 0..n {
                for (m, &x) in mean.iter_mut().zip(sv.row(i)) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= n as f64;
            }
            let mut var = vec![0.0f64; d];
            for i in 0..n {
                for ((v, &x), &m) in var.iter_mut().zip(sv.row(i)).zip(&mean) {
                    *v += (x - m) * (x - m);
                }
            }
            let inv_std: Vec<f64> = var
                .iter()
                .map(|&v| 1.0 / (v / n as f64 + eps).sqrt())
                .collect();
            let out = Matrix::from_fn(n, d, |i, j| (sv[(i, j)] - mean[j]) * inv_std[j]);
            (out, inv_std)
        };
        let rg = self.rg(src);
        self.push(
            value,
            Op::ColNormalize {
                src,
                inv_std: Rc::new(inv_std),
            },
            rg,
        )
    }

    /// Convenience: mean cross-entropy from raw logits over a node subset.
    pub fn cross_entropy(
        &self,
        logits: Var,
        targets: Rc<Vec<usize>>,
        nodes: Rc<Vec<usize>>,
    ) -> Var {
        let logp = self.log_softmax_rows(logits);
        self.nll_loss(logp, targets, nodes)
    }
}

/// Logistic sigmoid with clamping against overflow.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Row-wise softmax of a dense matrix (shared by op and tests).
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for i in 0..m.rows() {
        let row = m.row(i);
        let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for (o, &x) in out.row_mut(i).iter_mut().zip(row) {
            *o = (x - mx).exp();
            sum += *o;
        }
        for o in out.row_mut(i) {
            *o /= sum;
        }
    }
    out
}

/// Segment softmax over a flat score vector (shared by op and backward).
pub(crate) fn segment_softmax(scores: &[f64], seg: &[usize], n_seg: usize) -> Matrix {
    let mut maxes = vec![f64::NEG_INFINITY; n_seg];
    for (&s, &x) in seg.iter().zip(scores) {
        if x > maxes[s] {
            maxes[s] = x;
        }
    }
    let mut sums = vec![0.0f64; n_seg];
    let mut out = Matrix::zeros(scores.len(), 1);
    for (r, (&s, &x)) in seg.iter().zip(scores).enumerate() {
        let e = (x - maxes[s]).exp();
        out[(r, 0)] = e;
        sums[s] += e;
    }
    for (r, &s) in seg.iter().enumerate() {
        out[(r, 0)] /= sums[s];
    }
    out
}

/// The DEC target distribution `P` for embedding `h` and centres `egos`,
/// derived exactly as [`Tape::student_t_kl`] derives it internally.
///
/// Verification records this at a reference parameter point and feeds it
/// to [`Tape::student_t_kl_with_target`] so central differences measure
/// the same P-frozen objective the backward pass differentiates.
pub fn student_t_target(h: &Matrix, egos: &[usize]) -> Matrix {
    let n = h.rows();
    let m = egos.len();
    let mut t = Matrix::zeros(n, m);
    for j in 0..n {
        for (c, &e) in egos.iter().enumerate() {
            let mut d2 = 0.0;
            for (a, b) in h.row(j).iter().zip(h.row(e)) {
                let diff = a - b;
                d2 += diff * diff;
            }
            t[(j, c)] = 1.0 / (1.0 + d2);
        }
    }
    kl_distributions(&t).1
}

/// Compute the DEC soft assignment `Q` and target `P` from the Student-t
/// kernel matrix `t` (`n x m`). Exposed for the backward pass and tests.
pub(crate) fn kl_distributions(t: &Matrix) -> (Matrix, Matrix) {
    let (n, m) = t.shape();
    let mut q = Matrix::zeros(n, m);
    for j in 0..n {
        let row_sum: f64 = t.row(j).iter().sum();
        for c in 0..m {
            q[(j, c)] = t[(j, c)] / row_sum;
        }
    }
    // soft cluster frequencies g_i = Σ_j q_ij
    let mut g = vec![0.0f64; m];
    for j in 0..n {
        for c in 0..m {
            g[c] += q[(j, c)];
        }
    }
    let mut p = Matrix::zeros(n, m);
    for j in 0..n {
        let mut denom = 0.0;
        for c in 0..m {
            denom += q[(j, c)] * q[(j, c)] / g[c];
        }
        for c in 0..m {
            p[(j, c)] = (q[(j, c)] * q[(j, c)] / g[c]) / denom;
        }
    }
    (q, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn add_and_sub_values() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 2, vec![1., 2.]), true);
        let b = tape.leaf(Matrix::from_vec(1, 2, vec![10., 20.]), true);
        assert_eq!(tape.value(tape.add(a, b)).data(), &[11., 22.]);
        assert_eq!(tape.value(tape.sub(b, a)).data(), &[9., 18.]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&m);
        for i in 0..2 {
            let sum: f64 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 3, vec![0.5, 1.5, -0.5]), false);
        let ls = tape.log_softmax_rows(a);
        let s = tape.softmax_rows(a);
        for j in 0..3 {
            assert!((tape.value(ls)[(0, j)].exp() - tape.value(s)[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn segment_softmax_normalises_per_segment() {
        let out = segment_softmax(&[1.0, 2.0, 3.0, 4.0], &[0, 0, 1, 1], 2);
        assert!((out[(0, 0)] + out[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((out[(2, 0)] + out[(3, 0)] - 1.0).abs() < 1e-12);
        assert!(out[(1, 0)] > out[(0, 0)]);
    }

    #[test]
    fn segment_softmax_singleton_is_one() {
        let out = segment_softmax(&[5.0], &[0], 1);
        assert!((out[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gather_rows_values() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]), false);
        let g = tape.gather_rows(a, Rc::new(vec![2, 0, 2]));
        assert_eq!(tape.value(g).data(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn segment_sum_values() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]), false);
        let s = tape.segment_sum(a, Rc::new(vec![1, 0, 1]), 2);
        assert_eq!(tape.value(s).data(), &[2., 2., 4., 4.]);
    }

    #[test]
    fn max_rows_takes_columnwise_max() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(2, 2, vec![1., 9., 5., 2.]), false);
        let m = tape.max_rows(a);
        assert_eq!(tape.value(m).data(), &[5., 9.]);
    }

    #[test]
    fn nll_loss_value() {
        let tape = Tape::new();
        let logits = tape.leaf(Matrix::from_vec(2, 2, vec![10.0, 0.0, 0.0, 10.0]), false);
        let loss = tape.cross_entropy(logits, Rc::new(vec![0, 1]), Rc::new(vec![0, 1]));
        assert!(tape.value(loss).scalar() < 1e-3);
    }

    #[test]
    fn bce_pairs_confident_correct_is_small() {
        let tape = Tape::new();
        // rows engineered so that pair (0,1) has large positive dot, (0,2) negative
        let h = tape.leaf(Matrix::from_vec(3, 2, vec![3., 0., 3., 0., -3., 0.]), false);
        let loss = tape.bce_pairs(h, Rc::new(vec![(0, 1), (0, 2)]), Rc::new(vec![1.0, 0.0]));
        assert!(tape.value(loss).scalar() < 1e-3);
    }

    #[test]
    fn kl_distributions_are_distributions() {
        let t = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.5, 0.5]);
        let (q, p) = kl_distributions(&t);
        for j in 0..3 {
            assert!((q.row(j).iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!((p.row(j).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // P sharpens Q: the dominant entry grows
        assert!(p[(0, 0)] > q[(0, 0)]);
    }

    #[test]
    fn student_t_kl_is_nonnegative() {
        let tape = Tape::new();
        let h = tape.leaf(
            Matrix::from_vec(4, 2, vec![0., 0., 0.1, 0., 5., 5., 5.1, 5.]),
            true,
        );
        let loss = tape.student_t_kl(h, Rc::new(vec![0, 2]));
        assert!(tape.value(loss).scalar() >= 0.0);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let tape = Tape::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = tape.leaf(Matrix::from_vec(1, 2, vec![1., 2.]), true);
        let d = tape.dropout(a, 0.0, &mut rng);
        assert_eq!(d, a);
    }

    #[test]
    fn dropout_scales_kept_entries() {
        let tape = Tape::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = tape.leaf(Matrix::full(1, 1000, 1.0), true);
        let d = tape.dropout(a, 0.5, &mut rng);
        let v = tape.value(d);
        // kept entries are scaled to 2.0; roughly half survive
        let kept = v.data().iter().filter(|&&x| x > 0.0).count();
        assert!(v
            .data()
            .iter()
            .all(|&x| x == 0.0 || (x - 2.0).abs() < 1e-12));
        assert!(kept > 350 && kept < 650, "kept = {kept}");
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(2, 1, vec![1., 2.]), false);
        let b = tape.leaf(Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]), false);
        let c = tape.concat_cols(&[a, b]);
        assert_eq!(tape.value(c).data(), &[1., 3., 4., 2., 5., 6.]);
        let s = tape.slice_cols(c, 1, 3);
        assert_eq!(tape.value(s).data(), &[3., 4., 5., 6.]);
    }
}

//! Forward op constructors on [`Tape`] and the shared op evaluator.
//!
//! Every constructor validates shapes and builds whatever payload the op
//! needs (dropout masks, argmax rows, cached logits/kernels), then
//! records the op; the actual value is computed by [`eval_op`] — the
//! *same* function checkpoint replay calls in `backward`. Sharing one
//! evaluator is what makes recompute-on-backward bitwise identical to
//! the retaining tape by construction: replay runs the same code on the
//! same inputs, and every data-dependent or stochastic choice is frozen
//! into the payload at record time.
//!
//! Shape assertions live in [`eval_op`] so shape bugs fail loudly at the
//! call site (and again, identically, on replay), not three ops later.

use std::rc::Rc;

use crate::csr::Csr;
use crate::matrix::Matrix;
use crate::tape::{BceCache, KlCache, Node, Op, Tape, Var};

impl Tape {
    /// Evaluate `op` against the current tape and record the result.
    fn record(&self, op: Op, requires_grad: bool) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            eval_op(&nodes, &op)
        };
        self.push(value, op, requires_grad)
    }

    /// Elementwise sum `a + b`.
    pub fn add(&self, a: Var, b: Var) -> Var {
        self.record(Op::Add(a, b), self.rg2(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        self.record(Op::Sub(a, b), self.rg2(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul_elem(&self, a: Var, b: Var) -> Var {
        self.record(Op::MulElem(a, b), self.rg2(a, b))
    }

    /// Multiply by a compile-time constant scalar.
    pub fn scale(&self, a: Var, alpha: f64) -> Var {
        self.record(Op::Scale(a, alpha), self.rg(a))
    }

    /// Add a constant scalar to every element.
    pub fn add_scalar(&self, a: Var, c: f64) -> Var {
        self.record(Op::AddScalar(a, c), self.rg(a))
    }

    /// Broadcast-add a `1 x d` bias row to every row of `a (n x d)`.
    pub fn add_bias(&self, a: Var, bias: Var) -> Var {
        self.record(Op::AddBias(a, bias), self.rg2(a, bias))
    }

    /// Dense matrix product.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        self.record(Op::MatMul(a, b), self.rg2(a, b))
    }

    /// Materialised transpose.
    pub fn transpose(&self, a: Var) -> Var {
        self.record(Op::Transpose(a), self.rg(a))
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        self.record(Op::Relu(a), self.rg(a))
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, a: Var, slope: f64) -> Var {
        self.record(Op::LeakyRelu(a, slope), self.rg(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        self.record(Op::Sigmoid(a), self.rg(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.record(Op::Tanh(a), self.rg(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self, a: Var) -> Var {
        self.record(Op::SoftmaxRows(a), self.rg(a))
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&self, a: Var) -> Var {
        self.record(Op::LogSoftmaxRows(a), self.rg(a))
    }

    /// Sparse-dense product `csr(values) * dense`.
    ///
    /// `values` must be a `1 x nnz` variable; gradients reach both the
    /// sparse values and the dense operand.
    pub fn spmm(&self, csr: Rc<Csr>, values: Var, dense: Var) -> Var {
        let rg = self.rg2(values, dense);
        self.record(Op::Spmm { csr, values, dense }, rg)
    }

    /// Fused `relu(csr(values) * dense + bias)` — the GCN layer's
    /// spmm → add_bias → relu chain as a single kernel, skipping the two
    /// intermediate tape nodes. Element-for-element the forward applies
    /// the same operations in the same order as the unfused chain, and
    /// the backward composes the same three gradient kernels, so fusing
    /// is bitwise invisible to training traces. `bias` must be `1 x d`.
    pub fn spmm_bias_relu(&self, csr: Rc<Csr>, values: Var, dense: Var, bias: Var) -> Var {
        let rg = self.rg3(values, dense, bias);
        self.record(
            Op::SpmmBiasRelu {
                csr,
                values,
                dense,
                bias,
            },
            rg,
        )
    }

    /// Sparse-dense product with the structural transpose: `csr(values)ᵀ * dense`.
    pub fn spmm_t(&self, csr: Rc<Csr>, values: Var, dense: Var) -> Var {
        let rg = self.rg2(values, dense);
        self.record(Op::SpmmT { csr, values, dense }, rg)
    }

    /// Select rows by index (with repetition allowed).
    pub fn gather_rows(&self, src: Var, idx: Rc<Vec<usize>>) -> Var {
        self.record(Op::GatherRows { src, idx }, self.rg(src))
    }

    /// Sum rows of `src` into `n_seg` buckets given per-row segment ids.
    pub fn segment_sum(&self, src: Var, seg: Rc<Vec<usize>>, n_seg: usize) -> Var {
        self.record(Op::SegmentSum { src, seg, n_seg }, self.rg(src))
    }

    /// Softmax over entries sharing a segment id. `scores` is `n_e x 1`.
    ///
    /// Segments need not be contiguous. Empty segments are fine.
    pub fn segment_softmax(&self, scores: Var, seg: Rc<Vec<usize>>, n_seg: usize) -> Var {
        let rg = self.rg(scores);
        self.record(Op::SegmentSoftmax { scores, seg, n_seg }, rg)
    }

    /// Per-row dot product `out[i] = a[i,:] . b[i,:]`, yielding `n x 1`.
    pub fn row_dot(&self, a: Var, b: Var) -> Var {
        self.record(Op::RowDot(a, b), self.rg2(a, b))
    }

    /// Scale row `i` of `a` by `col[i]` (`col` is `n x 1`).
    pub fn mul_col(&self, a: Var, col: Var) -> Var {
        self.record(Op::MulCol { a, col }, self.rg2(a, col))
    }

    /// Concatenate matrices along columns (all must share row count).
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: no inputs");
        let rg = parts.iter().any(|&v| self.rg(v));
        self.record(Op::ConcatCols(parts.to_vec()), rg)
    }

    /// Take the column slice `[start, end)`.
    pub fn slice_cols(&self, src: Var, start: usize, end: usize) -> Var {
        self.record(Op::SliceCols { src, start, end }, self.rg(src))
    }

    /// Sum of all elements, as a `1 x 1` matrix.
    pub fn sum_all(&self, a: Var) -> Var {
        self.record(Op::SumAll(a), self.rg(a))
    }

    /// Mean of all elements, as a `1 x 1` matrix.
    pub fn mean_all(&self, a: Var) -> Var {
        self.record(Op::MeanAll(a), self.rg(a))
    }

    /// Column-wise mean over rows: `n x d -> 1 x d`.
    pub fn mean_rows(&self, a: Var) -> Var {
        self.record(Op::MeanRows(a), self.rg(a))
    }

    /// Column-wise sum over rows: `n x d -> 1 x d`.
    pub fn sum_rows(&self, a: Var) -> Var {
        self.record(Op::SumRows(a), self.rg(a))
    }

    /// Column-wise max over rows: `n x d -> 1 x d` (subgradient to argmax row).
    pub fn max_rows(&self, a: Var) -> Var {
        let argmax = {
            let nodes = self.nodes.borrow();
            let av = nodes[a.0].val();
            assert!(av.rows() > 0, "max_rows of empty matrix");
            let mut best = vec![f64::NEG_INFINITY; av.cols()];
            let mut argmax = vec![0usize; av.cols()];
            for i in 0..av.rows() {
                for (j, &x) in av.row(i).iter().enumerate() {
                    if x > best[j] {
                        best[j] = x;
                        argmax[j] = i;
                    }
                }
            }
            argmax
        };
        self.record(
            Op::MaxRows {
                src: a,
                argmax: Rc::new(argmax),
            },
            self.rg(a),
        )
    }

    /// Mean negative log-likelihood over the node subset `nodes`:
    /// `-(1/|nodes|) Σ_{i∈nodes} logp[i, targets[i]]`.
    ///
    /// `targets` is indexed by absolute row, so it must cover every row
    /// mentioned in `nodes`.
    pub fn nll_loss(&self, logp: Var, targets: Rc<Vec<usize>>, nodes: Rc<Vec<usize>>) -> Var {
        let rg = self.rg(logp);
        self.record(
            Op::NllLoss {
                logp,
                targets,
                nodes,
            },
            rg,
        )
    }

    /// Mean BCE-with-logits over inner-product pair scores
    /// `z_k = h[i_k,:] . h[j_k,:]` with binary labels.
    ///
    /// This implements both the link-prediction decoder and AdamGNN's
    /// negative-sampled reconstruction loss (Eq. 6).
    pub fn bce_pairs(&self, h: Var, pairs: Rc<Vec<(usize, usize)>>, labels: Rc<Vec<f64>>) -> Var {
        assert_eq!(pairs.len(), labels.len(), "bce_pairs: length mismatch");
        assert!(!pairs.is_empty(), "bce_pairs: empty pair set");
        let logits = {
            let nodes = self.nodes.borrow();
            let hv = nodes[h.0].val();
            pairs
                .iter()
                .map(|&(i, j)| hv.row_dot(i, hv, j))
                .collect::<Vec<f64>>()
        };
        let rg = self.rg(h);
        self.record(
            Op::BcePairs {
                h,
                pairs,
                labels,
                cache: Rc::new(BceCache { logits }),
            },
            rg,
        )
    }

    /// DEC-style Student-t KL clustering loss (AdamGNN Eq. 5), mean over
    /// nodes. `egos` are the row indices acting as cluster centres; the
    /// target distribution `P` is treated as constant (standard DEC).
    pub fn student_t_kl(&self, h: Var, egos: Rc<Vec<usize>>) -> Var {
        self.student_t_kl_inner(h, egos, None)
    }

    /// [`Tape::student_t_kl`] with an explicit constant target `P`
    /// instead of the self-derived one.
    ///
    /// The production loss computes `P` from the current `Q` but treats
    /// it as constant in backward (standard DEC), so the analytic
    /// gradient is the gradient of the *P-frozen* objective. A numeric
    /// gradient check must difference that same function: this entry
    /// point lets verification pin `P` at the reference parameters (see
    /// [`student_t_target`]).
    pub fn student_t_kl_with_target(
        &self,
        h: Var,
        egos: Rc<Vec<usize>>,
        target: Rc<Matrix>,
    ) -> Var {
        self.student_t_kl_inner(h, egos, Some(target))
    }

    fn student_t_kl_inner(&self, h: Var, egos: Rc<Vec<usize>>, target: Option<Rc<Matrix>>) -> Var {
        assert!(!egos.is_empty(), "student_t_kl: no egos");
        let t = {
            let nodes = self.nodes.borrow();
            student_t_kernel(nodes[h.0].val(), &egos)
        };
        let rg = self.rg(h);
        self.record(
            Op::StudentTKl {
                h,
                egos,
                cache: Rc::new(KlCache { t }),
                target,
            },
            rg,
        )
    }

    /// Inverted dropout with keep probability `1 - p`. The mask is drawn
    /// once at forward time from `rng` and replayed in backward (and by
    /// checkpoint recomputation — replay never touches the RNG).
    pub fn dropout(&self, src: Var, p: f64, rng: &mut impl rand::RngExt) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout: p must be in [0,1)");
        if p == 0.0 {
            return src;
        }
        let keep = 1.0 - p;
        let mask: Vec<f64> = {
            let len = self.nodes.borrow()[src.0].val().len();
            (0..len)
                .map(|_| {
                    if rng.random::<f64>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        self.record(
            Op::Dropout {
                src,
                mask: Rc::new(mask),
            },
            self.rg(src),
        )
    }

    /// Row-major reshape to `rows x cols` (element count must match).
    pub fn reshape(&self, src: Var, rows: usize, cols: usize) -> Var {
        self.record(Op::Reshape { src, rows, cols }, self.rg(src))
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        self.record(Op::Exp(a), self.rg(a))
    }

    /// Elementwise natural logarithm.
    ///
    /// # Panics
    /// Panics (via the non-finite tape check) if any input is <= 0.
    pub fn ln(&self, a: Var) -> Var {
        self.record(Op::Ln(a), self.rg(a))
    }

    /// Per-column standardisation ("graph norm"): every column is shifted
    /// to zero mean and scaled to unit variance over the rows. The
    /// normalisation GIN stacks need in place of batch norm; statistics
    /// are per-call (per graph), so eval needs no running averages.
    pub fn col_normalize(&self, src: Var) -> Var {
        let eps = 1e-5;
        let inv_std = {
            let nodes = self.nodes.borrow();
            let sv = nodes[src.0].val();
            let (n, d) = sv.shape();
            assert!(n > 0, "col_normalize of empty matrix");
            let mean = col_means(sv);
            let mut var = vec![0.0f64; d];
            for i in 0..n {
                for ((v, &x), &m) in var.iter_mut().zip(sv.row(i)).zip(&mean) {
                    *v += (x - m) * (x - m);
                }
            }
            var.iter()
                .map(|&v| 1.0 / (v / n as f64 + eps).sqrt())
                .collect::<Vec<f64>>()
        };
        self.record(
            Op::ColNormalize {
                src,
                inv_std: Rc::new(inv_std),
            },
            self.rg(src),
        )
    }

    /// Convenience: mean cross-entropy from raw logits over a node subset.
    pub fn cross_entropy(
        &self,
        logits: Var,
        targets: Rc<Vec<usize>>,
        nodes: Rc<Vec<usize>>,
    ) -> Var {
        let logp = self.log_softmax_rows(logits);
        self.nll_loss(logp, targets, nodes)
    }
}

/// Evaluate `op` from node values and its payload — the single forward
/// evaluator, used both when an op is first recorded and when checkpoint
/// replay re-materialises a dropped value. Every input it touches must be
/// materialised; leaves cannot be evaluated (they hold data, not ops).
pub(crate) fn eval_op(nodes: &[Node], op: &Op) -> Matrix {
    let v = |x: Var| nodes[x.0].val();
    match op {
        Op::Leaf => unreachable!("leaves hold data and are never replayed"),
        Op::Add(a, b) => v(*a).zip(v(*b), |x, y| x + y),
        Op::Sub(a, b) => v(*a).zip(v(*b), |x, y| x - y),
        Op::MulElem(a, b) => v(*a).zip(v(*b), |x, y| x * y),
        Op::Scale(a, alpha) => {
            let alpha = *alpha;
            v(*a).map(|x| x * alpha)
        }
        Op::AddScalar(a, c) => {
            let c = *c;
            v(*a).map(|x| x + c)
        }
        Op::AddBias(a, bias) => {
            let (av, bv) = (v(*a), v(*bias));
            assert_eq!(bv.rows(), 1, "add_bias: bias must be 1 x d");
            assert_eq!(av.cols(), bv.cols(), "add_bias: width mismatch");
            let brow = bv.row(0).to_vec();
            Matrix::from_fn(av.rows(), av.cols(), |i, j| av[(i, j)] + brow[j])
        }
        Op::MatMul(a, b) => v(*a).matmul(v(*b)),
        Op::Transpose(a) => v(*a).transpose(),
        Op::Relu(a) => v(*a).map(|x| x.max(0.0)),
        Op::LeakyRelu(a, slope) => {
            let s = *slope;
            v(*a).map(|x| if x > 0.0 { x } else { s * x })
        }
        Op::Sigmoid(a) => v(*a).map(sigmoid),
        Op::Tanh(a) => v(*a).map(f64::tanh),
        Op::SoftmaxRows(a) => softmax_rows(v(*a)),
        Op::LogSoftmaxRows(a) => {
            let av = v(*a);
            let mut out = Matrix::zeros(av.rows(), av.cols());
            for i in 0..av.rows() {
                let row = av.row(i);
                let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lse = mx + row.iter().map(|&x| (x - mx).exp()).sum::<f64>().ln();
                for (o, &x) in out.row_mut(i).iter_mut().zip(row) {
                    *o = x - lse;
                }
            }
            out
        }
        Op::Spmm { csr, values, dense } => {
            let vv = v(*values);
            assert_eq!(vv.shape(), (1, csr.nnz()), "spmm: values must be 1 x nnz");
            csr.spmm(vv.data(), v(*dense))
        }
        Op::SpmmT { csr, values, dense } => {
            let vv = v(*values);
            assert_eq!(vv.shape(), (1, csr.nnz()), "spmm_t: values must be 1 x nnz");
            csr.spmm_t(vv.data(), v(*dense))
        }
        Op::SpmmBiasRelu {
            csr,
            values,
            dense,
            bias,
        } => {
            let (vv, bv) = (v(*values), v(*bias));
            assert_eq!(
                vv.shape(),
                (1, csr.nnz()),
                "spmm_bias_relu: values must be 1 x nnz"
            );
            assert_eq!(bv.rows(), 1, "spmm_bias_relu: bias must be 1 x d");
            csr.spmm_bias_relu(vv.data(), v(*dense), bv.row(0))
        }
        Op::GatherRows { src, idx } => {
            let sv = v(*src);
            let mut out = Matrix::zeros(idx.len(), sv.cols());
            for (r, &i) in idx.iter().enumerate() {
                assert!(i < sv.rows(), "gather_rows: index {i} out of range");
                out.row_mut(r).copy_from_slice(sv.row(i));
            }
            out
        }
        Op::SegmentSum { src, seg, n_seg } => {
            let sv = v(*src);
            assert_eq!(sv.rows(), seg.len(), "segment_sum: length mismatch");
            let mut out = Matrix::zeros(*n_seg, sv.cols());
            for (r, &s) in seg.iter().enumerate() {
                assert!(s < *n_seg, "segment_sum: segment {s} out of range");
                let src_row = sv.row(r);
                for (o, &x) in out.row_mut(s).iter_mut().zip(src_row) {
                    *o += x;
                }
            }
            out
        }
        Op::SegmentSoftmax { scores, seg, n_seg } => {
            let sv = v(*scores);
            assert_eq!(sv.cols(), 1, "segment_softmax: scores must be n x 1");
            assert_eq!(sv.rows(), seg.len(), "segment_softmax: length mismatch");
            segment_softmax(sv.data(), seg, *n_seg)
        }
        Op::RowDot(a, b) => {
            let (av, bv) = (v(*a), v(*b));
            assert_eq!(av.shape(), bv.shape(), "row_dot: shape mismatch");
            Matrix::from_fn(av.rows(), 1, |i, _| av.row_dot(i, bv, i))
        }
        Op::MulCol { a, col } => {
            let (av, cv) = (v(*a), v(*col));
            assert_eq!(cv.cols(), 1, "mul_col: col must be n x 1");
            assert_eq!(av.rows(), cv.rows(), "mul_col: height mismatch");
            Matrix::from_fn(av.rows(), av.cols(), |i, j| av[(i, j)] * cv[(i, 0)])
        }
        Op::ConcatCols(parts) => {
            let rows = v(parts[0]).rows();
            let total: usize = parts.iter().map(|&p| v(p).cols()).sum();
            let mut out = Matrix::zeros(rows, total);
            let mut off = 0;
            for &p in parts {
                let pv = v(p);
                assert_eq!(pv.rows(), rows, "concat_cols: row mismatch");
                for i in 0..rows {
                    out.row_mut(i)[off..off + pv.cols()].copy_from_slice(pv.row(i));
                }
                off += pv.cols();
            }
            out
        }
        Op::SliceCols { src, start, end } => {
            let sv = v(*src);
            assert!(*start < *end && *end <= sv.cols(), "slice_cols: bad range");
            Matrix::from_fn(sv.rows(), end - start, |i, j| sv[(i, start + j)])
        }
        Op::SumAll(a) => Matrix::from_vec(1, 1, vec![v(*a).sum()]),
        Op::MeanAll(a) => {
            let av = v(*a);
            Matrix::from_vec(1, 1, vec![av.sum() / av.len() as f64])
        }
        Op::MeanRows(a) => {
            let av = v(*a);
            assert!(av.rows() > 0, "mean_rows of empty matrix");
            let mut out = Matrix::zeros(1, av.cols());
            for i in 0..av.rows() {
                for (o, &x) in out.row_mut(0).iter_mut().zip(av.row(i)) {
                    *o += x;
                }
            }
            let n = av.rows() as f64;
            for o in out.data_mut() {
                *o /= n;
            }
            out
        }
        Op::SumRows(a) => {
            let av = v(*a);
            let mut out = Matrix::zeros(1, av.cols());
            for i in 0..av.rows() {
                for (o, &x) in out.row_mut(0).iter_mut().zip(av.row(i)) {
                    *o += x;
                }
            }
            out
        }
        Op::MaxRows { src, argmax } => {
            // The recorded argmax rows pin the exact forward maxima, so
            // replay is a gather, not a re-scan.
            let sv = v(*src);
            Matrix::from_fn(1, sv.cols(), |_, j| sv[(argmax[j], j)])
        }
        Op::NllLoss {
            logp,
            targets,
            nodes: node_set,
        } => {
            let lv = v(*logp);
            assert!(!node_set.is_empty(), "nll_loss: empty node set");
            let mut acc = 0.0;
            for &i in node_set.iter() {
                let t = targets[i];
                assert!(t < lv.cols(), "nll_loss: target {t} out of range");
                acc -= lv[(i, t)];
            }
            Matrix::from_vec(1, 1, vec![acc / node_set.len() as f64])
        }
        Op::BcePairs {
            pairs,
            labels,
            cache,
            ..
        } => {
            // The cached logits are authoritative: they were computed
            // from `h` at record time and pin the exact pair scores.
            let mut acc = 0.0;
            for (&z, &y) in cache.logits.iter().zip(labels.iter()) {
                // numerically stable BCE-with-logits
                acc += z.max(0.0) - z * y + (-z.abs()).exp().ln_1p();
            }
            Matrix::from_vec(1, 1, vec![acc / pairs.len() as f64])
        }
        Op::StudentTKl { cache, target, .. } => {
            let t = &cache.t;
            let (n, m) = t.shape();
            let (q, self_p) = kl_distributions(t);
            let p = match target {
                Some(p) => {
                    assert_eq!(p.shape(), (n, m), "student_t_kl: target shape mismatch");
                    p.as_ref()
                }
                None => &self_p,
            };
            let mut loss = 0.0;
            for j in 0..n {
                for c in 0..m {
                    let (pj, qj) = (p[(j, c)], q[(j, c)]);
                    if pj > 0.0 {
                        loss += pj * (pj / qj).ln();
                    }
                }
            }
            Matrix::from_vec(1, 1, vec![loss / n as f64])
        }
        Op::Dropout { src, mask } => {
            let mut out = v(*src).clone();
            for (o, &m) in out.data_mut().iter_mut().zip(mask.iter()) {
                *o *= m;
            }
            out
        }
        Op::Reshape { src, rows, cols } => {
            let sv = v(*src);
            assert_eq!(sv.len(), rows * cols, "reshape: element count mismatch");
            Matrix::from_vec(*rows, *cols, sv.data().to_vec())
        }
        Op::ColNormalize { src, inv_std } => {
            // Means are recomputed with the identical loop order; the
            // stored `inv_std` pins the variance side, so the output is
            // bit-for-bit the forward value.
            let sv = v(*src);
            let mean = col_means(sv);
            Matrix::from_fn(sv.rows(), sv.cols(), |i, j| {
                (sv[(i, j)] - mean[j]) * inv_std[j]
            })
        }
        Op::Exp(a) => v(*a).map(f64::exp),
        Op::Ln(a) => v(*a).map(f64::ln),
    }
}

/// Per-column means accumulated in row-major order (shared between
/// `col_normalize`'s variance pass and [`eval_op`]'s replay so both
/// produce identical bits).
fn col_means(m: &Matrix) -> Vec<f64> {
    let (n, d) = m.shape();
    let mut mean = vec![0.0f64; d];
    for i in 0..n {
        for (acc, &x) in mean.iter_mut().zip(m.row(i)) {
            *acc += x;
        }
    }
    for acc in &mut mean {
        *acc /= n as f64;
    }
    mean
}

/// The Student-t kernel `t[j, c] = (1 + ||h_j - h_{ego_c}||^2)^{-1}`.
fn student_t_kernel(h: &Matrix, egos: &[usize]) -> Matrix {
    let n = h.rows();
    let m = egos.len();
    let mut t = Matrix::zeros(n, m);
    for j in 0..n {
        for (c, &e) in egos.iter().enumerate() {
            let mut d2 = 0.0;
            for (a, b) in h.row(j).iter().zip(h.row(e)) {
                let diff = a - b;
                d2 += diff * diff;
            }
            t[(j, c)] = 1.0 / (1.0 + d2);
        }
    }
    t
}

/// Logistic sigmoid with clamping against overflow.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Row-wise softmax of a dense matrix (shared by op and tests).
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for i in 0..m.rows() {
        let row = m.row(i);
        let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for (o, &x) in out.row_mut(i).iter_mut().zip(row) {
            *o = (x - mx).exp();
            sum += *o;
        }
        for o in out.row_mut(i) {
            *o /= sum;
        }
    }
    out
}

/// Segment softmax over a flat score vector (shared by op and backward).
pub(crate) fn segment_softmax(scores: &[f64], seg: &[usize], n_seg: usize) -> Matrix {
    let mut maxes = vec![f64::NEG_INFINITY; n_seg];
    for (&s, &x) in seg.iter().zip(scores) {
        if x > maxes[s] {
            maxes[s] = x;
        }
    }
    let mut sums = vec![0.0f64; n_seg];
    let mut out = Matrix::zeros(scores.len(), 1);
    for (r, (&s, &x)) in seg.iter().zip(scores).enumerate() {
        let e = (x - maxes[s]).exp();
        out[(r, 0)] = e;
        sums[s] += e;
    }
    for (r, &s) in seg.iter().enumerate() {
        out[(r, 0)] /= sums[s];
    }
    out
}

/// The DEC target distribution `P` for embedding `h` and centres `egos`,
/// derived exactly as [`Tape::student_t_kl`] derives it internally.
///
/// Verification records this at a reference parameter point and feeds it
/// to [`Tape::student_t_kl_with_target`] so central differences measure
/// the same P-frozen objective the backward pass differentiates.
pub fn student_t_target(h: &Matrix, egos: &[usize]) -> Matrix {
    kl_distributions(&student_t_kernel(h, egos)).1
}

/// Compute the DEC soft assignment `Q` and target `P` from the Student-t
/// kernel matrix `t` (`n x m`). Exposed for the backward pass and tests.
pub(crate) fn kl_distributions(t: &Matrix) -> (Matrix, Matrix) {
    let (n, m) = t.shape();
    let mut q = Matrix::zeros(n, m);
    for j in 0..n {
        let row_sum: f64 = t.row(j).iter().sum();
        for c in 0..m {
            q[(j, c)] = t[(j, c)] / row_sum;
        }
    }
    // soft cluster frequencies g_i = Σ_j q_ij
    let mut g = vec![0.0f64; m];
    for j in 0..n {
        for c in 0..m {
            g[c] += q[(j, c)];
        }
    }
    let mut p = Matrix::zeros(n, m);
    for j in 0..n {
        let mut denom = 0.0;
        for c in 0..m {
            denom += q[(j, c)] * q[(j, c)] / g[c];
        }
        for c in 0..m {
            p[(j, c)] = (q[(j, c)] * q[(j, c)] / g[c]) / denom;
        }
    }
    (q, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn add_and_sub_values() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 2, vec![1., 2.]), true);
        let b = tape.leaf(Matrix::from_vec(1, 2, vec![10., 20.]), true);
        assert_eq!(tape.value(tape.add(a, b)).data(), &[11., 22.]);
        assert_eq!(tape.value(tape.sub(b, a)).data(), &[9., 18.]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&m);
        for i in 0..2 {
            let sum: f64 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 3, vec![0.5, 1.5, -0.5]), false);
        let ls = tape.log_softmax_rows(a);
        let s = tape.softmax_rows(a);
        for j in 0..3 {
            assert!((tape.value(ls)[(0, j)].exp() - tape.value(s)[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn segment_softmax_normalises_per_segment() {
        let out = segment_softmax(&[1.0, 2.0, 3.0, 4.0], &[0, 0, 1, 1], 2);
        assert!((out[(0, 0)] + out[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((out[(2, 0)] + out[(3, 0)] - 1.0).abs() < 1e-12);
        assert!(out[(1, 0)] > out[(0, 0)]);
    }

    #[test]
    fn segment_softmax_singleton_is_one() {
        let out = segment_softmax(&[5.0], &[0], 1);
        assert!((out[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gather_rows_values() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]), false);
        let g = tape.gather_rows(a, Rc::new(vec![2, 0, 2]));
        assert_eq!(tape.value(g).data(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn segment_sum_values() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]), false);
        let s = tape.segment_sum(a, Rc::new(vec![1, 0, 1]), 2);
        assert_eq!(tape.value(s).data(), &[2., 2., 4., 4.]);
    }

    #[test]
    fn max_rows_takes_columnwise_max() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(2, 2, vec![1., 9., 5., 2.]), false);
        let m = tape.max_rows(a);
        assert_eq!(tape.value(m).data(), &[5., 9.]);
    }

    #[test]
    fn nll_loss_value() {
        let tape = Tape::new();
        let logits = tape.leaf(Matrix::from_vec(2, 2, vec![10.0, 0.0, 0.0, 10.0]), false);
        let loss = tape.cross_entropy(logits, Rc::new(vec![0, 1]), Rc::new(vec![0, 1]));
        assert!(tape.value(loss).scalar() < 1e-3);
    }

    #[test]
    fn bce_pairs_confident_correct_is_small() {
        let tape = Tape::new();
        // rows engineered so that pair (0,1) has large positive dot, (0,2) negative
        let h = tape.leaf(Matrix::from_vec(3, 2, vec![3., 0., 3., 0., -3., 0.]), false);
        let loss = tape.bce_pairs(h, Rc::new(vec![(0, 1), (0, 2)]), Rc::new(vec![1.0, 0.0]));
        assert!(tape.value(loss).scalar() < 1e-3);
    }

    #[test]
    fn kl_distributions_are_distributions() {
        let t = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.5, 0.5]);
        let (q, p) = kl_distributions(&t);
        for j in 0..3 {
            assert!((q.row(j).iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!((p.row(j).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // P sharpens Q: the dominant entry grows
        assert!(p[(0, 0)] > q[(0, 0)]);
    }

    #[test]
    fn student_t_kl_is_nonnegative() {
        let tape = Tape::new();
        let h = tape.leaf(
            Matrix::from_vec(4, 2, vec![0., 0., 0.1, 0., 5., 5., 5.1, 5.]),
            true,
        );
        let loss = tape.student_t_kl(h, Rc::new(vec![0, 2]));
        assert!(tape.value(loss).scalar() >= 0.0);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let tape = Tape::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = tape.leaf(Matrix::from_vec(1, 2, vec![1., 2.]), true);
        let d = tape.dropout(a, 0.0, &mut rng);
        assert_eq!(d, a);
    }

    #[test]
    fn dropout_scales_kept_entries() {
        let tape = Tape::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = tape.leaf(Matrix::full(1, 1000, 1.0), true);
        let d = tape.dropout(a, 0.5, &mut rng);
        let v = tape.value(d);
        // kept entries are scaled to 2.0; roughly half survive
        let kept = v.data().iter().filter(|&&x| x > 0.0).count();
        assert!(v
            .data()
            .iter()
            .all(|&x| x == 0.0 || (x - 2.0).abs() < 1e-12));
        assert!(kept > 350 && kept < 650, "kept = {kept}");
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(2, 1, vec![1., 2.]), false);
        let b = tape.leaf(Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]), false);
        let c = tape.concat_cols(&[a, b]);
        assert_eq!(tape.value(c).data(), &[1., 3., 4., 2., 5., 6.]);
        let s = tape.slice_cols(c, 1, 3);
        assert_eq!(tape.value(s).data(), &[3., 4., 5., 6.]);
    }
}

//! Parameter storage and the Adam optimizer.
//!
//! A [`ParamStore`] owns the model parameters across training steps. Each
//! step, [`ParamStore::bind`] copies parameters onto a fresh tape as
//! differentiable leaves; after `backward`, [`ParamStore::step`] reads the
//! gradients back and applies an Adam update.

use crate::error::MgError;
use crate::matrix::Matrix;
use crate::tape::{Gradients, Tape, Var};

/// Handle to a parameter owned by a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamId(usize);

struct Param {
    name: String,
    value: Matrix,
    /// Adam first-moment estimate.
    m: Matrix,
    /// Adam second-moment estimate.
    v: Matrix,
}

/// Serializable state of one parameter: its value and Adam moments.
///
/// This is the unit mg-ckpt persists; name and shape double as the
/// integrity check when a checkpoint is imported into a freshly built
/// model ([`ParamStore::import_state`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ParamSnapshot {
    pub name: String,
    pub value: Matrix,
    /// Adam first-moment estimate.
    pub m: Matrix,
    /// Adam second-moment estimate.
    pub v: Matrix,
}

/// Owns parameters and their Adam state.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
    /// Number of Adam steps taken (for bias correction).
    t: u64,
}

/// Hyper-parameters for the Adam update.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    pub weight_decay: f64,
    /// Clip gradients to this max-absolute value (0 disables clipping).
    pub grad_clip: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            grad_clip: 5.0,
        }
    }
}

impl AdamConfig {
    /// Config with the given learning rate and defaults elsewhere.
    pub fn with_lr(lr: f64) -> Self {
        AdamConfig {
            lr,
            ..Default::default()
        }
    }
}

/// The tape bindings of one forward pass: maps parameters to leaf vars.
pub struct Binding {
    vars: Vec<Var>,
}

impl Binding {
    /// The leaf variable bound to `id` on this pass's tape.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }

    /// Build a binding from externally created leaf variables, one per
    /// parameter in store-registration order.
    ///
    /// This lets verification harnesses (gradcheck drivers) create the
    /// leaves themselves — e.g. from perturbed copies of the parameter
    /// values — and still run a model forward that looks up parameters via
    /// [`Binding::var`]. The caller is responsible for ordering: vars must
    /// align with [`ParamStore::param_ids`].
    pub fn from_vars(vars: Vec<Var>) -> Self {
        Binding { vars }
    }
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; the name is used for debugging/inspection.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            name: name.into(),
            value,
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access (e.g. for custom re-initialisation).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// All parameter ids in registration order (the order `bind` and
    /// [`Binding::from_vars`] use).
    pub fn param_ids(&self) -> Vec<ParamId> {
        (0..self.params.len()).map(ParamId).collect()
    }

    /// Copy every parameter onto `tape` as a differentiable leaf.
    pub fn bind(&self, tape: &Tape) -> Binding {
        Binding {
            vars: self
                .params
                .iter()
                .map(|p| tape.leaf(p.value.clone(), true))
                .collect(),
        }
    }

    /// Copy every parameter onto `tape` as a *non-differentiable* leaf.
    ///
    /// The forward-only inference path uses this: backward skips
    /// non-gradient leaves entirely, so no gradient storage is ever
    /// allocated for the parameters and `backward`/`step` are never
    /// meaningful on such a binding.
    pub fn bind_frozen(&self, tape: &Tape) -> Binding {
        Binding {
            vars: self
                .params
                .iter()
                .map(|p| tape.leaf(p.value.clone(), false))
                .collect(),
        }
    }

    /// Apply one Adam step from the gradients of the given binding.
    ///
    /// Parameters whose gradient is absent (not reached by backward) are
    /// left untouched, matching lazy-gradient semantics.
    pub fn step(&mut self, grads: &mut Gradients, binding: &Binding, cfg: &AdamConfig) {
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - cfg.beta1.powi(t);
        let bc2 = 1.0 - cfg.beta2.powi(t);
        for (param, &var) in self.params.iter_mut().zip(&binding.vars) {
            let Some(mut grad) = grads.take(var) else {
                continue;
            };
            debug_assert_eq!(grad.shape(), param.value.shape(), "gradient shape mismatch");
            if cfg.grad_clip > 0.0 {
                let clip = cfg.grad_clip;
                for g in grad.data_mut() {
                    *g = g.clamp(-clip, clip);
                }
            }
            if cfg.weight_decay > 0.0 {
                grad.add_scaled(&param.value, cfg.weight_decay);
            }
            for i in 0..grad.len() {
                let g = grad.data()[i];
                let m = &mut param.m.data_mut()[i];
                *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
                let v = &mut param.v.data_mut()[i];
                *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                param.value.data_mut()[i] -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
            }
        }
    }

    /// Number of Adam steps taken so far (the bias-correction clock).
    pub fn adam_t(&self) -> u64 {
        self.t
    }

    /// Export the full optimizer state — every parameter's value and
    /// Adam moments plus the step counter — for persistence (mg-ckpt).
    pub fn export_state(&self) -> (Vec<ParamSnapshot>, u64) {
        let snaps = self
            .params
            .iter()
            .map(|p| ParamSnapshot {
                name: p.name.clone(),
                value: p.value.clone(),
                m: p.m.clone(),
                v: p.v.clone(),
            })
            .collect();
        (snaps, self.t)
    }

    /// Overwrite this store's state with an exported snapshot.
    ///
    /// The store must already hold the same parameter list (same count,
    /// names and shapes, in registration order) — i.e. the model must be
    /// rebuilt with the same architecture before importing. Any
    /// disagreement is an [`MgError::Mismatch`]; on error the store is
    /// left untouched.
    pub fn import_state(&mut self, snaps: &[ParamSnapshot], t: u64) -> Result<(), MgError> {
        if snaps.len() != self.params.len() {
            return Err(MgError::Mismatch {
                detail: format!(
                    "checkpoint has {} parameter tensors, model has {}",
                    snaps.len(),
                    self.params.len()
                ),
            });
        }
        for (p, s) in self.params.iter().zip(snaps) {
            if p.name != s.name {
                return Err(MgError::Mismatch {
                    detail: format!(
                        "parameter name mismatch: checkpoint '{}', model '{}'",
                        s.name, p.name
                    ),
                });
            }
            if p.value.shape() != s.value.shape()
                || s.m.shape() != s.value.shape()
                || s.v.shape() != s.value.shape()
            {
                return Err(MgError::Mismatch {
                    detail: format!(
                        "parameter '{}' shape mismatch: checkpoint {:?}/{:?}/{:?}, model {:?}",
                        s.name,
                        s.value.shape(),
                        s.m.shape(),
                        s.v.shape(),
                        p.value.shape()
                    ),
                });
            }
        }
        for (p, s) in self.params.iter_mut().zip(snaps) {
            p.value = s.value.clone();
            p.m = s.m.clone();
            p.v = s.v.clone();
        }
        self.t = t;
        Ok(())
    }

    /// Snapshot all parameter values (for best-model checkpointing).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restore a snapshot taken with [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the current parameter list.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(
            snapshot.len(),
            self.params.len(),
            "snapshot length mismatch"
        );
        for (p, s) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(p.value.shape(), s.shape(), "snapshot shape mismatch");
            p.value = s.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimising f(w) = ||w - target||^2 with Adam should converge.
    #[test]
    fn adam_minimises_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 3));
        let target = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let cfg = AdamConfig::with_lr(0.05);
        for _ in 0..400 {
            let tape = Tape::new();
            let binding = store.bind(&tape);
            let t = tape.constant(target.clone());
            let diff = tape.sub(binding.var(w), t);
            let sq = tape.mul_elem(diff, diff);
            let loss = tape.sum_all(sq);
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &binding, &cfg);
        }
        let w_val = store.value(w);
        for (a, b) in w_val.data().iter().zip(target.data()) {
            assert!((a - b).abs() < 1e-2, "w = {w_val:?}");
        }
    }

    #[test]
    fn missing_gradient_leaves_param_untouched() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 1, 3.0));
        let u = store.add("unused", Matrix::full(1, 1, 7.0));
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let loss = tape.sum_all(binding.var(w));
        let mut grads = tape.backward(loss);
        store.step(&mut grads, &binding, &AdamConfig::with_lr(0.1));
        assert_eq!(store.value(u).scalar(), 7.0);
        assert!(store.value(w).scalar() < 3.0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 2, 1.0));
        let snap = store.snapshot();
        store.value_mut(w).data_mut()[0] = 99.0;
        store.restore(&snap);
        assert_eq!(store.value(w).data(), &[1.0, 1.0]);
    }

    /// A run whose optimizer state was exported after k steps and
    /// imported into a freshly built twin must continue identically —
    /// the invariant checkpoint/resume is built on.
    #[test]
    fn export_import_resumes_identically() {
        let target = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let cfg = AdamConfig::with_lr(0.05);
        let step = |store: &mut ParamStore, w: ParamId| {
            let tape = Tape::new();
            let binding = store.bind(&tape);
            let t = tape.constant(target.clone());
            let diff = tape.sub(binding.var(w), t);
            let sq = tape.mul_elem(diff, diff);
            let loss = tape.sum_all(sq);
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &binding, &cfg);
        };
        let mut a = ParamStore::new();
        let wa = a.add("w", Matrix::zeros(1, 3));
        for _ in 0..7 {
            step(&mut a, wa);
        }
        let (snaps, t) = a.export_state();
        assert_eq!(t, 7);
        let mut b = ParamStore::new();
        let wb = b.add("w", Matrix::zeros(1, 3));
        b.import_state(&snaps, t).unwrap();
        for _ in 0..5 {
            step(&mut a, wa);
            step(&mut b, wb);
        }
        // bitwise: same moments + same t => identical Adam trajectories
        assert_eq!(a.value(wa).data(), b.value(wb).data());
        assert_eq!(a.adam_t(), b.adam_t());
    }

    #[test]
    fn import_rejects_mismatches() {
        let mut src = ParamStore::new();
        src.add("w", Matrix::zeros(2, 2));
        let (snaps, t) = src.export_state();
        // wrong count
        let mut dst = ParamStore::new();
        assert!(matches!(
            dst.import_state(&snaps, t),
            Err(MgError::Mismatch { .. })
        ));
        // wrong name
        let mut dst = ParamStore::new();
        dst.add("b", Matrix::zeros(2, 2));
        assert!(matches!(
            dst.import_state(&snaps, t),
            Err(MgError::Mismatch { .. })
        ));
        // wrong shape
        let mut dst = ParamStore::new();
        dst.add("w", Matrix::zeros(2, 3));
        assert!(matches!(
            dst.import_state(&snaps, t),
            Err(MgError::Mismatch { .. })
        ));
        // exact twin succeeds
        let mut dst = ParamStore::new();
        dst.add("w", Matrix::zeros(2, 2));
        assert!(dst.import_state(&snaps, t).is_ok());
    }

    #[test]
    fn frozen_binding_yields_no_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 2, 2.0));
        let tape = Tape::new();
        let binding = store.bind_frozen(&tape);
        let loss = tape.sum_all(binding.var(w));
        let grads = tape.backward(loss);
        assert!(
            grads.get(binding.var(w)).is_none(),
            "frozen leaves must not accumulate gradients"
        );
    }

    #[test]
    fn grad_clip_bounds_update() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 1));
        let tape = Tape::new();
        let binding = store.bind(&tape);
        // loss = 1e6 * w  -> raw gradient 1e6, clipped to 5
        let scaled = tape.scale(binding.var(w), 1e6);
        let loss = tape.sum_all(scaled);
        let mut grads = tape.backward(loss);
        let cfg = AdamConfig {
            lr: 0.1,
            grad_clip: 5.0,
            ..Default::default()
        };
        store.step(&mut grads, &binding, &cfg);
        // single Adam step magnitude is ~lr regardless, but m/v reflect the clip
        assert!(store.value(w).scalar().abs() <= 0.11);
    }
}

//! Property-based tests for graph topology invariants.

use mg_graph::{gcn_norm, rw_norm, Topology};
use proptest::prelude::*;

/// Strategy: a random simple graph as (n, edges).
fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..20usize).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n)
            .prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric((n, edges) in random_graph()) {
        let g = Topology::from_edges(n, &edges);
        for u in 0..n {
            for v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn degree_sum_is_twice_edges((n, edges) in random_graph()) {
        let g = Topology::from_edges(n, &edges);
        let total: usize = (0..n).map(|i| g.degree(i)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn khop_is_monotone_in_k((n, edges) in random_graph(), start_frac in 0.0..1.0f64) {
        let g = Topology::from_edges(n, &edges);
        let start = ((start_frac * n as f64) as usize).min(n - 1);
        let mut prev = g.khop(start, 0);
        for k in 1..4 {
            let cur = g.khop(start, k);
            prop_assert!(prev.iter().all(|x| cur.contains(x)),
                "k-hop sets must be nested");
            prop_assert!(cur.contains(&start));
            prev = cur;
        }
    }

    #[test]
    fn khop_n_covers_component((n, edges) in random_graph()) {
        let g = Topology::from_edges(n, &edges);
        let comp = g.connected_components();
        let reach = g.khop(0, n);
        let same_comp: Vec<usize> =
            (0..n).filter(|&i| comp[i] == comp[0]).collect();
        prop_assert_eq!(reach, same_comp);
    }

    #[test]
    fn components_partition_nodes((n, edges) in random_graph()) {
        let g = Topology::from_edges(n, &edges);
        let comp = g.connected_components();
        prop_assert_eq!(comp.len(), n);
        // edges never cross components
        for &(u, v) in g.edges() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
    }

    #[test]
    fn gcn_norm_is_symmetric_matrix((n, edges) in random_graph()) {
        let g = Topology::from_edges(n, &edges);
        let norm = gcn_norm(&g);
        let dense = norm.csr.to_dense(&norm.values);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((dense[(i, j)] - dense[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rw_norm_is_row_stochastic((n, edges) in random_graph()) {
        let g = Topology::from_edges(n, &edges);
        let norm = rw_norm(&g);
        let dense = norm.csr.to_dense(&norm.values);
        for i in 0..n {
            let sum: f64 = (0..n).map(|j| dense[(i, j)]).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn induced_subgraph_edge_subset((n, edges) in random_graph()) {
        let g = Topology::from_edges(n, &edges);
        let take: Vec<usize> = (0..n).step_by(2).collect();
        let (sub, map) = g.induced_subgraph(&take);
        for &(u, v) in sub.edges() {
            prop_assert!(g.has_edge(map[u as usize], map[v as usize]));
        }
    }
}

//! Adjacency normalisation for graph convolutions.
//!
//! Implements the symmetric GCN normalisation `D̂^{-1/2} Â D̂^{-1/2}` with
//! `Â = A + I` (Kipf & Welling 2017, the paper's Eq. 1), both for the
//! original topology and for weighted coarsened hyper-graphs.

use crate::topology::Topology;
use mg_tensor::Csr;

/// A normalised adjacency: structure plus values, ready for `spmm`.
#[derive(Clone, Debug)]
pub struct NormAdj {
    /// Sparsity pattern including self-loops.
    ///
    /// Shared behind an `Rc` so every tape op referencing this adjacency
    /// points at the *same* `Csr` instance: its lazily-built transpose
    /// cache (used by the parallel `spmm_t` family) is built once on the
    /// first backward pass and reused across all subsequent epochs.
    pub csr: std::rc::Rc<Csr>,
    /// Symmetric-normalised values aligned with `csr`.
    pub values: Vec<f64>,
}

/// Symmetric GCN normalisation of an unweighted topology.
pub fn gcn_norm(g: &Topology) -> NormAdj {
    let n = g.n();
    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges() * 2 + n);
    for r in 0..n {
        for c in g.neighbors(r) {
            entries.push((r as u32, c as u32));
        }
        entries.push((r as u32, r as u32));
    }
    let csr = Csr::from_coo(n, n, &entries);
    let deg: Vec<f64> = (0..n).map(|i| (g.degree(i) + 1) as f64).collect();
    let mut values = vec![0.0; csr.nnz()];
    for (r, c, k) in csr.iter() {
        values[k] = 1.0 / (deg[r] * deg[c]).sqrt();
    }
    NormAdj {
        csr: std::rc::Rc::new(csr),
        values,
    }
}

/// Row-normalised (random-walk) adjacency `D̂^{-1} Â` — used by the
/// mean-aggregating GraphSAGE layer.
pub fn rw_norm(g: &Topology) -> NormAdj {
    let n = g.n();
    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges() * 2 + n);
    for r in 0..n {
        for c in g.neighbors(r) {
            entries.push((r as u32, c as u32));
        }
        entries.push((r as u32, r as u32));
    }
    let csr = Csr::from_coo(n, n, &entries);
    let mut values = vec![0.0; csr.nnz()];
    for (r, _c, k) in csr.iter() {
        values[k] = 1.0 / (g.degree(r) + 1) as f64;
    }
    NormAdj {
        csr: std::rc::Rc::new(csr),
        values,
    }
}

/// Mean-over-neighbours (no self-loop) adjacency — `D^{-1} A`. Rows with
/// no neighbours are all-zero.
pub fn neighbor_mean(g: &Topology) -> NormAdj {
    let n = g.n();
    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges() * 2);
    for r in 0..n {
        for c in g.neighbors(r) {
            entries.push((r as u32, c as u32));
        }
    }
    let csr = Csr::from_coo(n, n, &entries);
    let mut values = vec![0.0; csr.nnz()];
    for (r, _c, k) in csr.iter() {
        values[k] = 1.0 / g.degree(r) as f64;
    }
    NormAdj {
        csr: std::rc::Rc::new(csr),
        values,
    }
}

/// Plain (unnormalised) adjacency with unit values and no self-loops —
/// GIN's sum aggregation.
pub fn unit_adj(g: &Topology) -> NormAdj {
    let n = g.n();
    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges() * 2);
    for r in 0..n {
        for c in g.neighbors(r) {
            entries.push((r as u32, c as u32));
        }
    }
    let csr = Csr::from_coo(n, n, &entries);
    let values = vec![1.0; csr.nnz()];
    NormAdj {
        csr: std::rc::Rc::new(csr),
        values,
    }
}

/// Symmetric GCN normalisation of a *weighted* adjacency given as
/// structure + values (used for coarsened hyper-graphs `A_k`).
///
/// Self-loops of weight 1 are added where missing; weighted degrees are
/// clamped away from zero for numerical safety.
pub fn gcn_norm_weighted(csr: &Csr, values: &[f64]) -> NormAdj {
    assert_eq!(
        csr.rows(),
        csr.cols(),
        "gcn_norm_weighted: square matrix required"
    );
    let n = csr.rows();
    // union of the pattern with the diagonal
    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(csr.nnz() + n);
    let mut vals: Vec<(u32, u32, f64)> = Vec::with_capacity(csr.nnz() + n);
    let mut has_diag = vec![false; n];
    for (r, c, k) in csr.iter() {
        if r == c {
            has_diag[r] = true;
            vals.push((r as u32, c as u32, values[k] + 1.0));
        } else {
            vals.push((r as u32, c as u32, values[k]));
        }
        entries.push((r as u32, c as u32));
    }
    for (r, has) in has_diag.iter().enumerate() {
        if !has {
            entries.push((r as u32, r as u32));
            vals.push((r as u32, r as u32, 1.0));
        }
    }
    let out = Csr::from_coo(n, n, &entries);
    // weighted degree of Â
    let mut deg = vec![0.0f64; n];
    for &(r, _c, v) in &vals {
        deg[r as usize] += v.abs();
    }
    for d in &mut deg {
        *d = d.max(1e-12);
    }
    let mut out_values = vec![0.0; out.nnz()];
    for &(r, c, v) in &vals {
        // locate entry position in the sorted row
        let row = out.row_indices(r as usize);
        let off = row.binary_search(&c).expect("entry must exist");
        let k = out.row_range(r as usize).start + off;
        out_values[k] = v / (deg[r as usize] * deg[c as usize]).sqrt();
    }
    NormAdj {
        csr: std::rc::Rc::new(out),
        values: out_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn gcn_norm_rows_include_self() {
        let norm = gcn_norm(&triangle());
        assert_eq!(norm.csr.nnz(), 9); // complete + diag
                                       // all degrees are 3 (2 neighbours + self), so every value is 1/3
        for &v in &norm.values {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gcn_norm_spectral_bound() {
        // symmetric normalised adjacency has spectral radius <= 1:
        // repeated application to a vector must not blow up
        let g = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let norm = gcn_norm(&g);
        let mut x = mg_tensor::Matrix::full(5, 1, 1.0);
        let initial = x.frobenius_norm();
        for _ in 0..50 {
            x = norm.csr.spmm(&norm.values, &x);
            // the symmetric normalised adjacency has eigenvalues in [-1, 1],
            // so it is non-expansive in the 2-norm
            assert!(x.frobenius_norm() <= initial + 1e-9);
        }
    }

    #[test]
    fn rw_norm_rows_sum_to_one() {
        let norm = rw_norm(&triangle());
        let ones = mg_tensor::Matrix::full(3, 1, 1.0);
        let out = norm.csr.spmm(&norm.values, &ones);
        for i in 0..3 {
            assert!((out[(i, 0)] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn neighbor_mean_excludes_self() {
        let g = Topology::from_edges(3, &[(0, 1)]);
        let norm = neighbor_mean(&g);
        let x = mg_tensor::Matrix::from_vec(3, 1, vec![1.0, 5.0, 9.0]);
        let out = norm.csr.spmm(&norm.values, &x);
        assert_eq!(out[(0, 0)], 5.0); // mean of neighbour {1}
        assert_eq!(out[(1, 0)], 1.0);
        assert_eq!(out[(2, 0)], 0.0); // isolated
    }

    #[test]
    fn unit_adj_sums_neighbors() {
        let g = triangle();
        let norm = unit_adj(&g);
        let x = mg_tensor::Matrix::from_vec(3, 1, vec![1.0, 2.0, 4.0]);
        let out = norm.csr.spmm(&norm.values, &x);
        assert_eq!(out[(0, 0)], 6.0);
        assert_eq!(out[(1, 0)], 5.0);
        assert_eq!(out[(2, 0)], 3.0);
    }

    #[test]
    fn weighted_norm_matches_unweighted_on_unit_graph() {
        let g = triangle();
        let plain = gcn_norm(&g);
        let unit = unit_adj(&g);
        let weighted = gcn_norm_weighted(&unit.csr, &unit.values);
        assert_eq!(weighted.csr.nnz(), plain.csr.nnz());
        for (a, b) in weighted.values.iter().zip(&plain.values) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_norm_handles_existing_diagonal() {
        let csr = mg_tensor::Csr::from_coo(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let norm = gcn_norm_weighted(&csr, &[2.0, 1.0, 1.0]);
        // diag of node 0 becomes 2+1=3; degree0 = 3+1 = 4, degree1 = 1+1 = 2
        assert_eq!(norm.csr.nnz(), 4);
        let dense = norm.csr.to_dense(&norm.values);
        assert!((dense[(0, 0)] - 3.0 / 4.0).abs() < 1e-12);
        assert!((dense[(0, 1)] - 1.0 / (4.0f64 * 2.0).sqrt()).abs() < 1e-12);
        assert!((dense[(1, 1)] - 1.0 / 2.0).abs() < 1e-12);
    }
}

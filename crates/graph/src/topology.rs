//! Undirected graph topology backed by a CSR adjacency pattern.

use mg_tensor::Csr;

/// Reusable BFS workspace: epoch-stamped visited marks plus a queue.
///
/// [`Topology::khop`] historically allocated a fresh `vec![usize::MAX; n]`
/// distance array per call, making per-node ego formation O(n²) — fatal at
/// 10⁶ nodes. A `BfsScratch` is allocated once and reused across calls:
/// each traversal bumps `epoch`, so "visited" is `stamp[v] == epoch` and
/// clearing between calls costs nothing. The same marks double as a
/// generic visited set for the neighbour sampler ([`BfsScratch::begin`] /
/// [`BfsScratch::mark`]).
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    stamp: Vec<u64>,
    dist: Vec<usize>,
    epoch: u64,
    queue: std::collections::VecDeque<usize>,
}

impl BfsScratch {
    /// An empty scratch; arrays grow on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// A scratch pre-sized for graphs of `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        BfsScratch {
            stamp: vec![0; n],
            dist: vec![0; n],
            epoch: 0,
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Start a fresh traversal over a graph of `n` nodes: grows the mark
    /// arrays if needed and invalidates all previous marks in O(1).
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
        self.epoch += 1;
        self.queue.clear();
    }

    /// Mark `v` visited in the current traversal; returns `true` if the
    /// node was not yet marked (i.e. this call marked it).
    #[inline]
    pub fn mark(&mut self, v: usize) -> bool {
        if self.stamp[v] == self.epoch {
            return false;
        }
        self.stamp[v] = self.epoch;
        true
    }

    /// Whether `v` is marked in the current traversal.
    #[inline]
    pub fn is_marked(&self, v: usize) -> bool {
        self.stamp[v] == self.epoch
    }
}

/// An undirected, simple graph (no self-loops, no multi-edges).
///
/// The adjacency is stored as a symmetric CSR *pattern*; edge weights, when
/// needed (GCN normalisation, coarsened hyper-graphs), live in separate
/// value vectors so they can be tape variables.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    adj: Csr,
    /// Unique undirected edges with `u < v`.
    edges: Vec<(u32, u32)>,
}

impl Topology {
    /// Build from an edge list. Self-loops are dropped, duplicates and
    /// reversed duplicates are merged.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, raw: &[(u32, u32)]) -> Self {
        let mut edges: Vec<(u32, u32)> = raw
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        for &(u, v) in &edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        let mut sym: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in &edges {
            sym.push((u, v));
            sym.push((v, u));
        }
        let adj = Csr::from_coo(n, n, &sym);
        Topology { n, adj, edges }
    }

    /// Build from an already-symmetric CSR adjacency pattern (sorted
    /// per-row indices, no self-loops, no duplicates — the invariants a
    /// streaming CSR builder establishes directly). Unlike
    /// [`Topology::from_edges`], this never materializes a symmetric
    /// `Vec<(u32, u32)>` of length 2m or re-sorts: the only allocation is
    /// the m-entry unique-edge list the struct carries anyway.
    ///
    /// # Panics
    /// Panics if the matrix is not square, carries a self-loop, or (in
    /// debug builds) is not symmetric.
    pub fn from_symmetric_csr(adj: Csr) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        let n = adj.rows();
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(adj.nnz() / 2);
        for r in 0..n {
            for &c in adj.row_indices(r) {
                assert!(c as usize != r, "self-loop at node {r}");
                if (r as u32) < c {
                    edges.push((r as u32, c));
                }
            }
        }
        assert_eq!(
            edges.len() * 2,
            adj.nnz(),
            "adjacency pattern is not symmetric"
        );
        #[cfg(debug_assertions)]
        for &(u, v) in &edges {
            debug_assert!(
                adj.row_indices(v as usize).binary_search(&u).is_ok(),
                "missing reverse edge ({v},{u})"
            );
        }
        Topology { n, adj, edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Unique undirected edges (`u < v`).
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Symmetric adjacency pattern (no self-loops).
    #[inline]
    pub fn adj(&self) -> &Csr {
        &self.adj
    }

    /// Degree of node `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.adj.row_indices(i).len()
    }

    /// Neighbours of node `i`, sorted.
    #[inline]
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj.row_indices(i).iter().map(|&c| c as usize)
    }

    /// True if `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.row_indices(u).binary_search(&(v as u32)).is_ok()
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.n as f64
    }

    /// All nodes within `k` hops of `start` (including `start` itself),
    /// sorted ascending.
    ///
    /// Thin wrapper over [`Topology::khop_with`] that pays a one-off
    /// scratch allocation; hot loops (per-node ego formation, neighbour
    /// sampling) should hold a [`BfsScratch`] and call `khop_with`.
    pub fn khop(&self, start: usize, k: usize) -> Vec<usize> {
        let mut scratch = BfsScratch::with_capacity(self.n);
        self.khop_with(&mut scratch, start, k)
    }

    /// As [`Topology::khop`], reusing `scratch` instead of allocating a
    /// distance array per call. Output is byte-identical to `khop`.
    pub fn khop_with(&self, scratch: &mut BfsScratch, start: usize, k: usize) -> Vec<usize> {
        scratch.begin(self.n);
        scratch.stamp[start] = scratch.epoch;
        scratch.dist[start] = 0;
        scratch.queue.push_back(start);
        let mut out = vec![start];
        while let Some(u) = scratch.queue.pop_front() {
            if scratch.dist[u] == k {
                continue;
            }
            for v in self.neighbors(u) {
                if scratch.stamp[v] != scratch.epoch {
                    scratch.stamp[v] = scratch.epoch;
                    scratch.dist[v] = scratch.dist[u] + 1;
                    out.push(v);
                    scratch.queue.push_back(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Connected-component id per node (0-based, in discovery order).
    pub fn connected_components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut stack = Vec::new();
        for s in 0..self.n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = next;
            stack.push(s);
            while let Some(u) = stack.pop() {
                for v in self.neighbors(u) {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.connected_components()
            .iter()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Directed edge arrays `(src, dst)` covering both directions of every
    /// edge plus one self-loop per node — the canonical message-passing
    /// index used by attention layers (GAT, AdamGNN fitness scoring).
    pub fn directed_edges_with_self_loops(&self) -> (Vec<usize>, Vec<usize>) {
        let mut src = Vec::with_capacity(self.edges.len() * 2 + self.n);
        let mut dst = Vec::with_capacity(self.edges.len() * 2 + self.n);
        for r in 0..self.n {
            for c in self.neighbors(r) {
                src.push(c);
                dst.push(r);
            }
            src.push(r);
            dst.push(r);
        }
        (src, dst)
    }

    /// Induced subgraph over `nodes` (which must be unique); returns the
    /// subgraph and the mapping from new index to old index.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Topology, Vec<usize>) {
        let mut new_of = vec![usize::MAX; self.n];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(
                new_of[old] == usize::MAX,
                "induced_subgraph: duplicate node {old}"
            );
            new_of[old] = new;
        }
        let mut edges = Vec::new();
        for &(u, v) in &self.edges {
            let (nu, nv) = (new_of[u as usize], new_of[v as usize]);
            if nu != usize::MAX && nv != usize::MAX {
                edges.push((nu as u32, nv as u32));
            }
        }
        (Topology::from_edges(nodes.len(), &edges), nodes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Topology {
        Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn dedup_and_symmetry() {
        let g = Topology::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(2), 0); // self loop dropped
    }

    #[test]
    fn khop_path() {
        let g = path4();
        assert_eq!(g.khop(0, 1), vec![0, 1]);
        assert_eq!(g.khop(0, 2), vec![0, 1, 2]);
        assert_eq!(g.khop(1, 1), vec![0, 1, 2]);
        assert_eq!(g.khop(0, 0), vec![0]);
    }

    /// The pre-scratch `khop` implementation, kept verbatim as the
    /// regression reference: `khop`/`khop_with` must match it byte for
    /// byte on arbitrary graphs.
    fn khop_reference(g: &Topology, start: usize, k: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; g.n()];
        let mut queue = std::collections::VecDeque::new();
        dist[start] = 0;
        queue.push_back(start);
        let mut out = vec![start];
        while let Some(u) = queue.pop_front() {
            if dist[u] == k {
                continue;
            }
            for v in g.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    out.push(v);
                    queue.push_back(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn khop_with_matches_reference_bytewise() {
        // deterministic pseudo-random graph, all (start, k) combinations,
        // one shared scratch across every call
        let mut edges = Vec::new();
        let mut x = 0x243f6a8885a308d3u64;
        let n = 37;
        for _ in 0..90 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((x >> 33) % n as u64) as u32;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = ((x >> 33) % n as u64) as u32;
            edges.push((u, v));
        }
        let g = Topology::from_edges(n, &edges);
        let mut scratch = BfsScratch::new();
        for start in 0..n {
            for k in 0..5 {
                let want = khop_reference(&g, start, k);
                assert_eq!(g.khop(start, k), want, "khop({start},{k})");
                assert_eq!(
                    g.khop_with(&mut scratch, start, k),
                    want,
                    "khop_with({start},{k})"
                );
            }
        }
    }

    #[test]
    fn scratch_marks_reset_per_traversal() {
        let mut s = BfsScratch::new();
        s.begin(4);
        assert!(s.mark(2));
        assert!(!s.mark(2), "second mark in same traversal");
        assert!(s.is_marked(2));
        assert!(!s.is_marked(1));
        s.begin(4);
        assert!(!s.is_marked(2), "begin() invalidates old marks");
        assert!(s.mark(2));
        // growing to a larger graph keeps working
        s.begin(10);
        assert!(s.mark(9));
    }

    #[test]
    fn from_symmetric_csr_matches_from_edges() {
        let g = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let rebuilt = Topology::from_symmetric_csr(g.adj().clone());
        assert_eq!(rebuilt.n(), g.n());
        assert_eq!(rebuilt.edges(), g.edges());
        for u in 0..5 {
            assert_eq!(
                rebuilt.neighbors(u).collect::<Vec<_>>(),
                g.neighbors(u).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_symmetric_csr_rejects_self_loops() {
        let adj = Csr::from_coo(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let _ = Topology::from_symmetric_csr(adj);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Topology::from_edges(5, &[(0, 1), (2, 3)]);
        let comp = g.connected_components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(g.num_components(), 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn directed_edges_include_self_loops() {
        let g = path4();
        let (src, dst) = g.directed_edges_with_self_loops();
        assert_eq!(src.len(), 2 * 3 + 4);
        // every node has a self loop
        for i in 0..4 {
            assert!(src.iter().zip(&dst).any(|(&s, &d)| s == i && d == i));
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = path4();
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![1, 2, 3]);
        assert!(sub.has_edge(0, 1)); // old (1,2)
    }

    #[test]
    fn mean_degree_path() {
        let g = path4();
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }
}

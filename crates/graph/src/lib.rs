//! # mg-graph
//!
//! Graph topology substrate for the AdamGNN reproduction: undirected CSR
//! graphs, k-hop ego networks, GCN/random-walk normalisation and the
//! weighted normalisation needed for coarsened hyper-graphs.

pub mod norm;
pub mod topology;

pub use norm::{gcn_norm, gcn_norm_weighted, neighbor_mean, rw_norm, unit_adj, NormAdj};
pub use topology::{BfsScratch, Topology};

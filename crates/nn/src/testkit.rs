//! Shared fixtures for tests and benchmarks: tiny structured graphs and a
//! minimal graph-classification training loop.
//!
//! Lives in the library (not `#[cfg(test)]`) so integration tests, the
//! AdamGNN crate's tests and the benchmark harness can reuse it.

use crate::ctx::GraphCtx;
use crate::gc::GraphClassifier;
use mg_graph::Topology;
use mg_tensor::{AdamConfig, Matrix, ParamStore, Tape};

/// Named deterministic RNG constructors, one per fixture seed.
///
/// Tests across the workspace share a handful of magic seeds; naming them
/// here records *why* each value is what it is (some were re-tuned when
/// the vendored xoshiro256++ PRNG replaced upstream `rand`, because the
/// old seeds produced dead-ReLU initialisations) and gives every fixture
/// one place to change. New tests should call these instead of writing
/// `StdRng::seed_from_u64(<literal>)`.
pub mod seeds {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Default model-initialisation stream (seed 0).
    pub fn model_init() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Initialisation stream for fixtures where seed 0 yields degenerate
    /// (dead-ReLU) weights under the vendored PRNG (seed 7).
    pub fn model_init_alt() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Initialisation stream re-seeded from 0/3 to 1 when the vendored
    /// PRNG landed, for the same dead-ReLU reason (seed 1).
    pub fn model_init_stable() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    /// Forward-pass stream — dropout masks and other in-forward draws
    /// (seed 1).
    pub fn forward_rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    /// Second independent forward-pass stream, for tests that need two
    /// distinct forwards (seed 2).
    pub fn forward_rng_alt() -> StdRng {
        StdRng::seed_from_u64(2)
    }

    /// Training-loop stream used by [`super::train_graph_classifier`]
    /// (seed 5).
    pub fn training_rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    /// Evaluation stream used by [`super::graph_classifier_accuracy`]
    /// (seed 99).
    pub fn eval_rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }
}

/// Rings (label 1) versus stars (label 0) of a few sizes, with constant
/// node features — separable only through structure.
pub fn ring_vs_star_samples() -> Vec<(GraphCtx, usize)> {
    let mut out = Vec::new();
    for size in [6usize, 8, 10] {
        let ring: Vec<(u32, u32)> = (0..size as u32)
            .map(|i| (i, (i + 1) % size as u32))
            .collect();
        let star: Vec<(u32, u32)> = (1..size as u32).map(|i| (0, i)).collect();
        let feat = |n: usize| Matrix::full(n, 3, 1.0);
        out.push((
            GraphCtx::new(Topology::from_edges(size, &ring), feat(size)),
            1,
        ));
        out.push((
            GraphCtx::new(Topology::from_edges(size, &star), feat(size)),
            0,
        ));
    }
    out
}

/// A graph with two dense communities joined by one bridge, plus identity
/// features — the canonical node-classification fixture.
pub fn two_community_ctx() -> (GraphCtx, Vec<usize>) {
    let g = Topology::from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (0, 3),
            (4, 5),
            (5, 6),
            (4, 6),
            (6, 7),
            (4, 7),
            (3, 4),
        ],
    );
    let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
    (GraphCtx::new(g, Matrix::eye(8)), labels)
}

/// Full-batch training of a graph classifier on fixed samples; returns the
/// final mean loss (CE + any auxiliary loss).
pub fn train_graph_classifier(
    model: &dyn GraphClassifier,
    store: &mut ParamStore,
    samples: &[(GraphCtx, usize)],
    epochs: usize,
    lr: f64,
) -> f64 {
    let cfg = AdamConfig::with_lr(lr);
    let mut rng = seeds::training_rng();
    let mut last = f64::INFINITY;
    for _ in 0..epochs {
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let mut losses = Vec::new();
        for (ctx, label) in samples {
            let out = model.forward(&tape, &bind, ctx, false, &mut rng);
            let ce = tape.cross_entropy(
                out.logits,
                std::rc::Rc::new(vec![*label]),
                std::rc::Rc::new(vec![0]),
            );
            let total = match out.aux_loss {
                Some(aux) => tape.add(ce, aux),
                None => ce,
            };
            losses.push(total);
        }
        let mut sum = losses[0];
        for &l in &losses[1..] {
            sum = tape.add(sum, l);
        }
        let loss = tape.scale(sum, 1.0 / losses.len() as f64);
        last = tape.value(loss).scalar();
        let mut grads = tape.backward(loss);
        store.step(&mut grads, &bind, &cfg);
    }
    last
}

/// Accuracy of a classifier on labelled graph samples.
pub fn graph_classifier_accuracy(
    model: &dyn GraphClassifier,
    store: &ParamStore,
    samples: &[(GraphCtx, usize)],
) -> f64 {
    let mut rng = seeds::eval_rng();
    let mut correct = 0;
    for (ctx, label) in samples {
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, ctx, false, &mut rng);
        if tape.value(out.logits).row_argmax(0) == *label {
            correct += 1;
        }
    }
    correct as f64 / samples.len() as f64
}

//! Graph-classification model interface and the flat GIN baseline.

use crate::ctx::GraphCtx;
use crate::layers::{GinLayer, Mlp};
use crate::readout::Readout;
use mg_tensor::{Binding, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// Output of a graph-classification forward pass.
pub struct GcOutput {
    /// `1 x num_classes` logits.
    pub logits: Var,
    /// Model-specific auxiliary loss (e.g. DiffPool's link-prediction and
    /// entropy regularisers), already scaled, to be added to the CE loss.
    pub aux_loss: Option<Var>,
}

/// A model that classifies whole graphs.
pub trait GraphClassifier {
    /// Compute logits (and optional auxiliary loss) for one graph.
    fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> GcOutput;

    /// Display name for result tables.
    fn name(&self) -> &'static str;
}

/// Flat GIN graph classifier (Xu et al. 2019): 3 GIN layers, sum readout
/// after every layer, concatenated into an MLP head.
pub struct GinGc {
    layers: Vec<GinLayer>,
    head: Mlp,
    dropout: f64,
}

impl GinGc {
    /// Standard 3-layer GIN with jumping-knowledge sum readouts.
    pub fn new(
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        let layers = vec![
            GinLayer::new(store, "GINgc.l1", in_dim, hidden, rng),
            GinLayer::new(store, "GINgc.l2", hidden, hidden, rng),
            GinLayer::new(store, "GINgc.l3", hidden, hidden, rng),
        ];
        let head = Mlp::new(store, "GINgc.head", &[3 * hidden, hidden, classes], rng);
        GinGc {
            layers,
            head,
            dropout: 0.3,
        }
    }
}

impl GraphClassifier for GinGc {
    fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> GcOutput {
        let mut h = ctx.x_var(tape);
        let mut readouts = Vec::new();
        for layer in &self.layers {
            // graph-norm in place of the original's batch norm: GIN's sum
            // aggregation grows activations with depth and degree otherwise
            h = tape.relu(tape.col_normalize(layer.forward(tape, bind, ctx, h)));
            // mean readout keeps the representation scale independent of
            // graph size; with graph-norm'd features the sum variant blows
            // up the first optimisation steps and stalls Adam
            readouts.push(Readout::Mean.apply(tape, h));
        }
        let mut cat = tape.concat_cols(&readouts);
        if train {
            cat = tape.dropout(cat, self.dropout, rng);
        }
        GcOutput {
            logits: self.head.forward(tape, bind, cat),
            aux_loss: None,
        }
    }

    fn name(&self) -> &'static str {
        "GIN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ring_vs_star_samples, train_graph_classifier};
    use rand::SeedableRng;

    #[test]
    fn gin_gc_separates_ring_from_star() {
        let mut store = ParamStore::new();
        let model = GinGc::new(&mut store, 3, 16, 2, &mut StdRng::seed_from_u64(0));
        let loss = train_graph_classifier(&model, &mut store, &ring_vs_star_samples(), 200, 0.02);
        assert!(loss < 0.1, "final loss = {loss}");
    }

    #[test]
    fn gin_gc_logits_shape() {
        let mut store = ParamStore::new();
        let model = GinGc::new(&mut store, 3, 8, 2, &mut StdRng::seed_from_u64(0));
        let samples = ring_vs_star_samples();
        let (ctx, _) = &samples[0];
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, ctx, false, &mut StdRng::seed_from_u64(1));
        assert_eq!(tape.shape(out.logits), (1, 2));
        assert!(out.aux_loss.is_none());
    }
}

//! Individual GNN layers: GCN, GraphSAGE (mean), GAT (single head), GIN,
//! and a plain MLP. Each layer owns its parameters as [`ParamId`]s inside
//! a shared [`ParamStore`] and is invoked with a per-pass [`Binding`].

use crate::ctx::GraphCtx;
use mg_tensor::{Binding, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::rc::Rc;

/// Activation applied by a layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    None,
    Relu,
    Tanh,
}

fn apply_act(tape: &Tape, v: Var, act: Activation) -> Var {
    match act {
        Activation::None => v,
        Activation::Relu => tape.relu(v),
        Activation::Tanh => tape.tanh(v),
    }
}

/// Graph Convolutional Network layer (Kipf & Welling 2017):
/// `H' = act(D̂^{-1/2} Â D̂^{-1/2} H W + b)` — the paper's Eq. 1.
pub struct GcnLayer {
    w: ParamId,
    b: ParamId,
    act: Activation,
}

impl GcnLayer {
    /// Create with Glorot-initialised weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        GcnLayer {
            w: store.add(format!("{name}.w"), Matrix::glorot(in_dim, out_dim, rng)),
            b: store.add(format!("{name}.b"), Matrix::zeros(1, out_dim)),
            act,
        }
    }

    /// Forward with an explicit (possibly coarsened/weighted) adjacency.
    ///
    /// ReLU layers run the aggregate → bias → activation chain as the
    /// fused `spmm_bias_relu` kernel (one pass, no materialised
    /// intermediates); the fusion is bitwise identical to the unfused
    /// chain in both forward and backward, so traces do not change.
    pub fn forward_adj(
        &self,
        tape: &Tape,
        bind: &Binding,
        csr: Rc<mg_tensor::Csr>,
        adj_values: Var,
        h: Var,
    ) -> Var {
        let hw = tape.matmul(h, bind.var(self.w));
        if self.act == Activation::Relu {
            return tape.spmm_bias_relu(csr, adj_values, hw, bind.var(self.b));
        }
        let agg = tape.spmm(csr, adj_values, hw);
        let z = tape.add_bias(agg, bind.var(self.b));
        apply_act(tape, z, self.act)
    }

    /// Forward on a graph context using its GCN-normalised adjacency.
    pub fn forward(&self, tape: &Tape, bind: &Binding, ctx: &GraphCtx, h: Var) -> Var {
        let (csr, vals) = ctx.adj_var(tape, &ctx.gcn);
        self.forward_adj(tape, bind, csr, vals, h)
    }
}

/// GraphSAGE layer with mean aggregation:
/// `H' = act([H ‖ mean_neigh(H)] W + b)`.
pub struct SageLayer {
    w: ParamId,
    b: ParamId,
    act: Activation,
}

impl SageLayer {
    /// Create with Glorot-initialised weights (input is `2 * in_dim` wide
    /// after concatenation).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        SageLayer {
            w: store.add(
                format!("{name}.w"),
                Matrix::glorot(2 * in_dim, out_dim, rng),
            ),
            b: store.add(format!("{name}.b"), Matrix::zeros(1, out_dim)),
            act,
        }
    }

    /// Forward on a graph context.
    pub fn forward(&self, tape: &Tape, bind: &Binding, ctx: &GraphCtx, h: Var) -> Var {
        let (csr, vals) = ctx.adj_var(tape, &ctx.nmean);
        let neigh = tape.spmm(csr, vals, h);
        let cat = tape.concat_cols(&[h, neigh]);
        let z = tape.add_bias(tape.matmul(cat, bind.var(self.w)), bind.var(self.b));
        apply_act(tape, z, self.act)
    }
}

/// Graph Attention layer, single head (Velickovic et al. 2018):
/// `e_ij = LeakyReLU(aᵀ [W h_i ‖ W h_j])`, `α = softmax_j(e_ij)`,
/// `h'_i = act(Σ_j α_ij W h_j)`.
pub struct GatLayer {
    w: ParamId,
    /// Attention vector split into source and destination halves so the
    /// per-edge score is a sum of two per-node projections.
    a_src: ParamId,
    a_dst: ParamId,
    b: ParamId,
    act: Activation,
    slope: f64,
}

impl GatLayer {
    /// Create with Glorot-initialised weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        GatLayer {
            w: store.add(format!("{name}.w"), Matrix::glorot(in_dim, out_dim, rng)),
            a_src: store.add(format!("{name}.a_src"), Matrix::glorot(out_dim, 1, rng)),
            a_dst: store.add(format!("{name}.a_dst"), Matrix::glorot(out_dim, 1, rng)),
            b: store.add(format!("{name}.b"), Matrix::zeros(1, out_dim)),
            act,
            slope: 0.2,
        }
    }

    /// Forward on a graph context (edges include self loops).
    pub fn forward(&self, tape: &Tape, bind: &Binding, ctx: &GraphCtx, h: Var) -> Var {
        let n = ctx.n();
        let hw = tape.matmul(h, bind.var(self.w));
        // per-node halves of the attention logit
        let s_src = tape.matmul(hw, bind.var(self.a_src)); // n x 1
        let s_dst = tape.matmul(hw, bind.var(self.a_dst)); // n x 1
        let e_src = tape.gather_rows(s_src, ctx.edge_src.clone());
        let e_dst = tape.gather_rows(s_dst, ctx.edge_dst.clone());
        let e = tape.leaky_relu(tape.add(e_src, e_dst), self.slope);
        let alpha = tape.segment_softmax(e, ctx.edge_dst.clone(), n);
        // message = alpha_ij * (W h_src)
        let msg_src = tape.gather_rows(hw, ctx.edge_src.clone());
        let weighted = tape.mul_col(msg_src, alpha);
        let agg = tape.segment_sum(weighted, ctx.edge_dst.clone(), n);
        let z = tape.add_bias(agg, bind.var(self.b));
        apply_act(tape, z, self.act)
    }
}

/// Graph Isomorphism Network layer (Xu et al. 2019):
/// `H' = MLP((1 + ε) H + Σ_neigh H)` with fixed `ε = 0`.
pub struct GinLayer {
    mlp: Mlp,
}

impl GinLayer {
    /// Create with a two-layer MLP, hidden width = `out_dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        GinLayer {
            mlp: Mlp::new(
                store,
                &format!("{name}.mlp"),
                &[in_dim, out_dim, out_dim],
                rng,
            ),
        }
    }

    /// Forward on a graph context.
    pub fn forward(&self, tape: &Tape, bind: &Binding, ctx: &GraphCtx, h: Var) -> Var {
        let (csr, vals) = ctx.adj_var(tape, &ctx.unit);
        let neigh_sum = tape.spmm(csr, vals, h);
        let combined = tape.add(h, neigh_sum); // (1 + eps) h with eps = 0
        self.mlp.forward(tape, bind, combined)
    }
}

/// Multi-layer perceptron with ReLU between layers (none after the last).
pub struct Mlp {
    ws: Vec<ParamId>,
    bs: Vec<ParamId>,
}

impl Mlp {
    /// `dims = [in, hidden..., out]`; requires at least one linear layer.
    pub fn new(store: &mut ParamStore, name: &str, dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out]");
        let mut ws = Vec::new();
        let mut bs = Vec::new();
        for (l, w) in dims.windows(2).enumerate() {
            ws.push(store.add(format!("{name}.w{l}"), Matrix::glorot(w[0], w[1], rng)));
            bs.push(store.add(format!("{name}.b{l}"), Matrix::zeros(1, w[1])));
        }
        Mlp { ws, bs }
    }

    /// Apply to any `n x in` matrix.
    pub fn forward(&self, tape: &Tape, bind: &Binding, mut h: Var) -> Var {
        let last = self.ws.len() - 1;
        for (l, (&w, &b)) in self.ws.iter().zip(&self.bs).enumerate() {
            h = tape.add_bias(tape.matmul(h, bind.var(w)), bind.var(b));
            if l < last {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::Topology;
    use mg_tensor::AdamConfig;
    use rand::SeedableRng;

    fn ctx() -> GraphCtx {
        let g = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        GraphCtx::new(g, Matrix::eye(5))
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn gcn_layer_shapes() {
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "gcn", 5, 3, Activation::Relu, &mut rng());
        let ctx = ctx();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = ctx.x_var(&tape);
        let out = layer.forward(&tape, &bind, &ctx, x);
        assert_eq!(tape.shape(out), (5, 3));
        assert!(
            tape.value(out).data().iter().all(|&v| v >= 0.0),
            "relu output"
        );
    }

    #[test]
    fn sage_layer_shapes() {
        let mut store = ParamStore::new();
        let layer = SageLayer::new(&mut store, "sage", 5, 4, Activation::None, &mut rng());
        let ctx = ctx();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = ctx.x_var(&tape);
        let out = layer.forward(&tape, &bind, &ctx, x);
        assert_eq!(tape.shape(out), (5, 4));
    }

    #[test]
    fn gat_layer_shapes_and_finite() {
        let mut store = ParamStore::new();
        let layer = GatLayer::new(&mut store, "gat", 5, 4, Activation::None, &mut rng());
        let ctx = ctx();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = ctx.x_var(&tape);
        let out = layer.forward(&tape, &bind, &ctx, x);
        assert_eq!(tape.shape(out), (5, 4));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn gin_layer_shapes() {
        let mut store = ParamStore::new();
        let layer = GinLayer::new(&mut store, "gin", 5, 4, &mut rng());
        let ctx = ctx();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = ctx.x_var(&tape);
        let out = layer.forward(&tape, &bind, &ctx, x);
        assert_eq!(tape.shape(out), (5, 4));
    }

    #[test]
    fn mlp_identity_dims() {
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 8, 2], &mut rng());
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = tape.constant(Matrix::eye(3));
        let out = mlp.forward(&tape, &bind, x);
        assert_eq!(tape.shape(out), (3, 2));
    }

    /// End-to-end: a single GCN layer can overfit a 2-class labelling of a
    /// tiny graph.
    #[test]
    fn gcn_layer_learns() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GcnLayer::new(&mut store, "gcn", 5, 2, Activation::None, &mut r);
        let ctx = ctx();
        let targets = std::rc::Rc::new(vec![0usize, 0, 1, 1, 0]);
        let nodes = std::rc::Rc::new(vec![0usize, 1, 2, 3, 4]);
        let cfg = AdamConfig::with_lr(0.1);
        let mut last = f64::INFINITY;
        for _ in 0..100 {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let x = ctx.x_var(&tape);
            let logits = layer.forward(&tape, &bind, &ctx, x);
            let loss = tape.cross_entropy(logits, targets.clone(), nodes.clone());
            last = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &cfg);
        }
        assert!(last < 0.3, "final loss = {last}");
    }
}

//! Layer extensions beyond the paper's baseline configurations:
//! multi-head GAT and smooth-max-pooling GraphSAGE — the variants the
//! original papers describe but the AdamGNN evaluation runs with default
//! settings (1 head, mean pooling).

use crate::ctx::GraphCtx;
use crate::layers::{Activation, GatLayer};
use mg_tensor::{Binding, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// Multi-head GAT: `H' = ‖_heads GAT_head(H)` (concatenation, as in
/// Velickovic et al. 2018 for hidden layers).
pub struct MultiHeadGat {
    heads: Vec<GatLayer>,
}

impl MultiHeadGat {
    /// `num_heads` independent heads of width `out_dim` each; output width
    /// is `num_heads * out_dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        num_heads: usize,
        act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(num_heads >= 1, "need at least one head");
        let heads = (0..num_heads)
            .map(|h| GatLayer::new(store, &format!("{name}.h{h}"), in_dim, out_dim, act, rng))
            .collect();
        MultiHeadGat { heads }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Forward on a graph context; output is `n x (heads * out_dim)`.
    pub fn forward(&self, tape: &Tape, bind: &Binding, ctx: &GraphCtx, h: Var) -> Var {
        let outs: Vec<Var> = self
            .heads
            .iter()
            .map(|head| head.forward(tape, bind, ctx, h))
            .collect();
        if outs.len() == 1 {
            outs[0]
        } else {
            tape.concat_cols(&outs)
        }
    }
}

/// GraphSAGE with (smooth) max-pooling aggregation (Hamilton et al. 2017):
/// `H' = act([H ‖ smoothmax_neigh(relu(H W_pool))] W + b)`, where the
/// per-neighbourhood max is realised as the differentiable LogSumExp
/// `ln(Σ_j exp(m_j))` over incoming messages — a standard smooth
/// relaxation that equals the max in the low-temperature limit.
pub struct SageMaxPool {
    w_pool: ParamId,
    w: ParamId,
    b: ParamId,
    act: Activation,
}

impl SageMaxPool {
    /// Create with Glorot-initialised weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        SageMaxPool {
            w_pool: store.add(
                format!("{name}.w_pool"),
                Matrix::glorot(in_dim, in_dim, rng),
            ),
            w: store.add(
                format!("{name}.w"),
                Matrix::glorot(2 * in_dim, out_dim, rng),
            ),
            b: store.add(format!("{name}.b"), Matrix::zeros(1, out_dim)),
            act,
        }
    }

    /// Forward on a graph context. The edge index includes self loops, so
    /// every node aggregates at least its own message (no empty LSE).
    pub fn forward(&self, tape: &Tape, bind: &Binding, ctx: &GraphCtx, h: Var) -> Var {
        // tanh keeps messages in [-1, 1] so exp never overflows
        let transformed = tape.tanh(tape.matmul(h, bind.var(self.w_pool)));
        let msg = tape.gather_rows(transformed, ctx.edge_src.clone());
        let lse = tape.ln(tape.segment_sum(tape.exp(msg), ctx.edge_dst.clone(), ctx.n()));
        let cat = tape.concat_cols(&[h, lse]);
        let z = tape.add_bias(tape.matmul(cat, bind.var(self.w)), bind.var(self.b));
        match self.act {
            Activation::None => z,
            Activation::Relu => tape.relu(z),
            Activation::Tanh => tape.tanh(z),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::Topology;
    use mg_tensor::AdamConfig;
    use rand::SeedableRng;

    fn ctx() -> GraphCtx {
        let g = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        GraphCtx::new(g, Matrix::eye(5))
    }

    #[test]
    fn multi_head_gat_width() {
        let mut store = ParamStore::new();
        let gat = MultiHeadGat::new(
            &mut store,
            "mh",
            5,
            4,
            3,
            Activation::Relu,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(gat.num_heads(), 3);
        let ctx = ctx();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = ctx.x_var(&tape);
        let out = gat.forward(&tape, &bind, &ctx, x);
        assert_eq!(tape.shape(out), (5, 12));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn single_head_matches_plain_gat_shape() {
        let mut store = ParamStore::new();
        let gat = MultiHeadGat::new(
            &mut store,
            "mh1",
            5,
            4,
            1,
            Activation::None,
            &mut StdRng::seed_from_u64(0),
        );
        let ctx = ctx();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = ctx.x_var(&tape);
        let out = gat.forward(&tape, &bind, &ctx, x);
        assert_eq!(tape.shape(out), (5, 4));
    }

    #[test]
    fn sage_maxpool_runs_and_is_finite() {
        let mut store = ParamStore::new();
        let layer = SageMaxPool::new(
            &mut store,
            "smp",
            5,
            4,
            Activation::Relu,
            &mut StdRng::seed_from_u64(0),
        );
        let ctx = ctx();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = ctx.x_var(&tape);
        let out = layer.forward(&tape, &bind, &ctx, x);
        assert_eq!(tape.shape(out), (5, 4));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn sage_maxpool_learns() {
        // two-community fixture: the layer must be trainable end to end
        let (ctx, labels) = crate::testkit::two_community_ctx();
        let mut store = ParamStore::new();
        let l1 = SageMaxPool::new(
            &mut store,
            "smp1",
            8,
            8,
            Activation::Relu,
            &mut StdRng::seed_from_u64(0),
        );
        let l2 = SageMaxPool::new(
            &mut store,
            "smp2",
            8,
            2,
            Activation::None,
            &mut StdRng::seed_from_u64(1),
        );
        let targets = std::rc::Rc::new(labels);
        let nodes = std::rc::Rc::new((0..8).collect::<Vec<_>>());
        let cfg = AdamConfig::with_lr(0.05);
        let mut last = f64::INFINITY;
        for _ in 0..200 {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let x = ctx.x_var(&tape);
            let h = l1.forward(&tape, &bind, &ctx, x);
            let logits = l2.forward(&tape, &bind, &ctx, h);
            let loss = tape.cross_entropy(logits, targets.clone(), nodes.clone());
            last = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &cfg);
        }
        assert!(last < 0.3, "final loss = {last}");
    }

    #[test]
    fn multi_head_gat_learns() {
        let (ctx, labels) = crate::testkit::two_community_ctx();
        let mut store = ParamStore::new();
        let gat = MultiHeadGat::new(
            &mut store,
            "mhl",
            8,
            4,
            2,
            Activation::Relu,
            &mut StdRng::seed_from_u64(0),
        );
        let head = crate::layers::Mlp::new(
            &mut store,
            "mhl.head",
            &[8, 2],
            &mut StdRng::seed_from_u64(1),
        );
        let targets = std::rc::Rc::new(labels);
        let nodes = std::rc::Rc::new((0..8).collect::<Vec<_>>());
        let cfg = AdamConfig::with_lr(0.05);
        let mut last = f64::INFINITY;
        for _ in 0..200 {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let x = ctx.x_var(&tape);
            let h = gat.forward(&tape, &bind, &ctx, x);
            let logits = head.forward(&tape, &bind, h);
            let loss = tape.cross_entropy(logits, targets.clone(), nodes.clone());
            last = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &cfg);
        }
        assert!(last < 0.3, "final loss = {last}");
    }
}

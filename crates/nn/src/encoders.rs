//! Node-task baseline models (Table 2): GCN, GraphSAGE, GAT, GIN.
//!
//! Each is a two-layer encoder with dropout between layers; the output
//! width is the task head — number of classes for node classification,
//! embedding width for link prediction (decoded with inner products).

use crate::ctx::GraphCtx;
use crate::layers::{Activation, GatLayer, GcnLayer, GinLayer, SageLayer};
use mg_tensor::{Binding, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// A model that turns a graph + features into node representations.
pub trait NodeEncoder {
    /// Produce `n x out_dim` node representations.
    ///
    /// `train` enables dropout; `rng` draws the dropout masks.
    fn encode(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> Var;

    /// Display name for result tables.
    fn name(&self) -> &'static str;
}

/// Dropout probability used between the two layers of every baseline.
const DROPOUT: f64 = 0.5;

macro_rules! two_layer_encoder {
    ($(#[$doc:meta])* $model:ident, $layer:ty, $disp:expr, |$store:ident, $name:ident, $in:ident, $out:ident, $act:ident, $rng:ident| $mk:expr) => {
        $(#[$doc])*
        pub struct $model {
            l1: $layer,
            l2: $layer,
            dropout: f64,
        }

        impl $model {
            /// Two-layer encoder: `in_dim -> hidden -> out_dim`.
            pub fn new(
                store: &mut ParamStore,
                in_dim: usize,
                hidden: usize,
                out_dim: usize,
                rng: &mut StdRng,
            ) -> Self {
                let l1 = {
                    let ($store, $name, $in, $out, $act, $rng) =
                        (&mut *store, concat!($disp, ".l1"), in_dim, hidden, Activation::Relu, &mut *rng);
                    $mk
                };
                let l2 = {
                    let ($store, $name, $in, $out, $act, $rng) =
                        (&mut *store, concat!($disp, ".l2"), hidden, out_dim, Activation::None, &mut *rng);
                    $mk
                };
                $model { l1, l2, dropout: DROPOUT }
            }
        }

        impl NodeEncoder for $model {
            fn encode(
                &self,
                tape: &Tape,
                bind: &Binding,
                ctx: &GraphCtx,
                train: bool,
                rng: &mut StdRng,
            ) -> Var {
                let x = ctx.x_var(tape);
                let mut h = self.l1.forward(tape, bind, ctx, x);
                if train {
                    h = tape.dropout(h, self.dropout, rng);
                }
                self.l2.forward(tape, bind, ctx, h)
            }

            fn name(&self) -> &'static str {
                $disp
            }
        }
    };
}

two_layer_encoder!(
    /// Two-layer GCN (Kipf & Welling 2017).
    GcnNet,
    GcnLayer,
    "GCN",
    |store, name, in_dim, out_dim, act, rng| GcnLayer::new(store, name, in_dim, out_dim, act, rng)
);

two_layer_encoder!(
    /// Two-layer GraphSAGE with mean aggregation.
    SageNet,
    SageLayer,
    "GraphSAGE",
    |store, name, in_dim, out_dim, act, rng| SageLayer::new(store, name, in_dim, out_dim, act, rng)
);

two_layer_encoder!(
    /// Two-layer single-head GAT.
    GatNet,
    GatLayer,
    "GAT",
    |store, name, in_dim, out_dim, act, rng| GatLayer::new(store, name, in_dim, out_dim, act, rng)
);

/// Two-layer GIN with a linear head.
///
/// Each GIN layer runs at `hidden` width internally; a narrow task head
/// would otherwise bottleneck the layer's own MLP (with `out_dim = 2`
/// and ReLU in between, the whole network can initialise dead).
pub struct GinNet {
    l1: GinLayer,
    l2: GinLayer,
    head: crate::layers::Mlp,
    dropout: f64,
}

impl GinNet {
    /// Two-layer encoder: `in_dim -> hidden -> hidden -> out_dim`.
    pub fn new(
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        GinNet {
            l1: GinLayer::new(store, "GIN.l1", in_dim, hidden, rng),
            l2: GinLayer::new(store, "GIN.l2", hidden, hidden, rng),
            head: crate::layers::Mlp::new(store, "GIN.head", &[hidden, out_dim], rng),
            dropout: DROPOUT,
        }
    }
}

impl NodeEncoder for GinNet {
    fn encode(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = ctx.x_var(tape);
        let mut h = self.l1.forward(tape, bind, ctx, x);
        h = tape.relu(h);
        if train {
            h = tape.dropout(h, self.dropout, rng);
        }
        h = self.l2.forward(tape, bind, ctx, h);
        h = tape.relu(h);
        self.head.forward(tape, bind, h)
    }

    fn name(&self) -> &'static str {
        "GIN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::Topology;
    use mg_tensor::{AdamConfig, Matrix};
    use rand::SeedableRng;

    fn ctx() -> GraphCtx {
        // two triangles joined by a bridge: clear 2-community structure
        let g = Topology::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        GraphCtx::new(g, Matrix::eye(6))
    }

    fn train_encoder(enc: &dyn NodeEncoder, store: &mut ParamStore) -> f64 {
        let ctx = ctx();
        let targets = std::rc::Rc::new(vec![0usize, 0, 0, 1, 1, 1]);
        let nodes = std::rc::Rc::new((0..6).collect::<Vec<_>>());
        let cfg = AdamConfig::with_lr(0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let mut last = f64::INFINITY;
        for _ in 0..400 {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let logits = enc.encode(&tape, &bind, &ctx, false, &mut rng);
            let loss = tape.cross_entropy(logits, targets.clone(), nodes.clone());
            last = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &cfg);
        }
        last
    }

    #[test]
    fn gcn_net_learns_communities() {
        let mut store = ParamStore::new();
        // seed 1: seed 0's first 48 draws from the vendored PRNG are
        // negative-heavy, giving a dead-ReLU init that cannot train
        let enc = GcnNet::new(&mut store, 6, 8, 2, &mut StdRng::seed_from_u64(1));
        {
            let l = train_encoder(&enc, &mut store);
            assert!(l < 0.2, "final loss = {l}");
        }
    }

    #[test]
    fn sage_net_learns_communities() {
        let mut store = ParamStore::new();
        let enc = SageNet::new(&mut store, 6, 8, 2, &mut StdRng::seed_from_u64(0));
        {
            let l = train_encoder(&enc, &mut store);
            assert!(l < 0.2, "final loss = {l}");
        }
    }

    #[test]
    fn gat_net_learns_communities() {
        let mut store = ParamStore::new();
        let enc = GatNet::new(&mut store, 6, 8, 2, &mut StdRng::seed_from_u64(0));
        {
            let l = train_encoder(&enc, &mut store);
            assert!(l < 0.2, "final loss = {l}");
        }
    }

    #[test]
    fn gin_net_learns_communities() {
        let mut store = ParamStore::new();
        let enc = GinNet::new(&mut store, 6, 8, 2, &mut StdRng::seed_from_u64(1));
        {
            let l = train_encoder(&enc, &mut store);
            assert!(l < 0.2, "final loss = {l}");
        }
    }

    #[test]
    fn dropout_changes_training_output_only() {
        let mut store = ParamStore::new();
        let enc = GcnNet::new(&mut store, 6, 8, 2, &mut StdRng::seed_from_u64(1));
        let ctx = ctx();
        let eval = |train: bool, seed: u64| {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = enc.encode(&tape, &bind, &ctx, train, &mut rng);
            tape.value_cloned(out)
        };
        // eval mode is deterministic regardless of rng seed
        assert_eq!(eval(false, 1), eval(false, 2));
        // train mode differs from eval mode (dropout active)
        assert_ne!(eval(true, 1), eval(false, 1));
    }
}

//! Pre-computed per-graph context shared by all models.
//!
//! Building CSR normalisations and edge indices is deterministic and
//! gradient-free, so it happens once per graph rather than once per
//! forward pass.

use mg_graph::{gcn_norm, neighbor_mean, unit_adj, NormAdj, Topology};
use mg_tensor::{Matrix, Tape, Var};
use std::rc::Rc;

/// Everything a GNN forward pass needs about one graph.
#[derive(Clone)]
pub struct GraphCtx {
    pub graph: Rc<Topology>,
    /// Dense node features.
    pub x: Matrix,
    /// Symmetric GCN normalisation of `A + I`.
    pub gcn: NormAdj,
    /// Mean over neighbours (no self loop) — GraphSAGE aggregation.
    pub nmean: NormAdj,
    /// Unit adjacency (no self loop) — GIN sum aggregation.
    pub unit: NormAdj,
    /// Directed edge endpoints including self loops — attention layers.
    pub edge_src: Rc<Vec<usize>>,
    pub edge_dst: Rc<Vec<usize>>,
}

impl GraphCtx {
    /// Precompute all adjacency forms for `graph` with features `x`.
    ///
    /// # Panics
    /// Panics if `x.rows() != graph.n()`.
    pub fn new(graph: Topology, x: Matrix) -> Self {
        assert_eq!(x.rows(), graph.n(), "GraphCtx: feature/node count mismatch");
        let gcn = gcn_norm(&graph);
        let nmean = neighbor_mean(&graph);
        let unit = unit_adj(&graph);
        let (src, dst) = graph.directed_edges_with_self_loops();
        GraphCtx {
            graph: Rc::new(graph),
            x,
            gcn,
            nmean,
            unit,
            edge_src: Rc::new(src),
            edge_dst: Rc::new(dst),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Feature dimension.
    pub fn feat_dim(&self) -> usize {
        self.x.cols()
    }

    /// Put the feature matrix on a tape as a constant.
    pub fn x_var(&self, tape: &Tape) -> Var {
        tape.constant(self.x.clone())
    }

    /// Put an adjacency's values on the tape as a constant and return the
    /// pieces `spmm` needs.
    pub fn adj_var(&self, tape: &Tape, adj: &NormAdj) -> (Rc<mg_tensor::Csr>, Var) {
        let vals = tape.constant(Matrix::from_vec(1, adj.values.len(), adj.values.clone()));
        (adj.csr.clone(), vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_builds_all_forms() {
        let g = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let x = Matrix::eye(4);
        let ctx = GraphCtx::new(g, x);
        assert_eq!(ctx.n(), 4);
        assert_eq!(ctx.feat_dim(), 4);
        assert_eq!(ctx.gcn.csr.nnz(), 2 * 3 + 4);
        assert_eq!(ctx.unit.csr.nnz(), 2 * 3);
        assert_eq!(ctx.edge_src.len(), 2 * 3 + 4);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn ctx_rejects_bad_features() {
        let g = Topology::from_edges(3, &[(0, 1)]);
        let _ = GraphCtx::new(g, Matrix::eye(2));
    }
}

//! 3WL-GNN baseline (Maron et al. 2019, "Provably Powerful Graph
//! Networks"), adapted to this engine's 2-D tensors.
//!
//! PPGN operates on `n x n x d` tensors; here the `d` channels are a list
//! of `n x n` matrices. A block mixes channels with two learnable `1 x 1`
//! convolutions (realised as a matmul over flattened channels) and
//! multiplies the two mixed stacks channel-wise — the matrix product that
//! gives the model its 3-WL expressive power. Input channels are the
//! adjacency, the identity, and diagonal embeddings of the first few node
//! features. Readout takes the trace and total sum of every channel.

use crate::ctx::GraphCtx;
use crate::gc::{GcOutput, GraphClassifier};
use crate::layers::Mlp;
use crate::pool::dense::dense_adj;
use mg_tensor::{Binding, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// One PPGN block: two channel mixers and a channel-wise matrix product.
struct Block {
    mix_a: ParamId,
    mix_b: ParamId,
    out_channels: usize,
}

impl Block {
    fn new(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        rng: &mut StdRng,
    ) -> Self {
        Block {
            mix_a: store.add(
                format!("{name}.mix_a"),
                Matrix::glorot(in_channels, out_channels, rng),
            ),
            mix_b: store.add(
                format!("{name}.mix_b"),
                Matrix::glorot(in_channels, out_channels, rng),
            ),
            out_channels,
        }
    }

    /// Apply to a list of `n x n` channels, producing `out_channels` new
    /// channels (plus the skip connection appended by the caller).
    fn forward(&self, tape: &Tape, bind: &Binding, channels: &[Var], n: usize) -> Vec<Var> {
        // flatten channels into an n² x C matrix for cheap 1x1 mixing
        let flats: Vec<Var> = channels
            .iter()
            .map(|&c| tape.reshape(c, n * n, 1))
            .collect();
        let stack = tape.concat_cols(&flats); // n² x C_in
        let mixed_a = tape.matmul(stack, bind.var(self.mix_a)); // n² x C_out
        let mixed_b = tape.matmul(stack, bind.var(self.mix_b));
        let mut out = Vec::with_capacity(self.out_channels);
        for c in 0..self.out_channels {
            let a = tape.reshape(tape.slice_cols(mixed_a, c, c + 1), n, n);
            let b = tape.reshape(tape.slice_cols(mixed_b, c, c + 1), n, n);
            out.push(tape.matmul(a, b));
        }
        out
    }
}

/// 3WL-GNN graph classifier.
pub struct ThreeWlGc {
    block1: Block,
    block2: Block,
    head: Mlp,
    channels: usize,
    /// How many leading node-feature columns become diagonal channels.
    feat_channels: usize,
}

impl ThreeWlGc {
    /// Two PPGN blocks with `channels` hidden channels each.
    pub fn new(
        store: &mut ParamStore,
        in_dim: usize,
        channels: usize,
        classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        let feat_channels = in_dim.min(3);
        let in_channels = 2 + feat_channels; // A, I, diag(features)
        let block1 = Block::new(store, "3WL.b1", in_channels, channels, rng);
        // skip connections double the channel count feeding block 2
        let block2 = Block::new(store, "3WL.b2", channels + in_channels, channels, rng);
        // readout: (trace, sum) per channel of block2 output + skips
        let ro_channels = channels + channels + in_channels;
        let head = Mlp::new(
            store,
            "3WL.head",
            &[2 * ro_channels, channels, classes],
            rng,
        );
        ThreeWlGc {
            block1,
            block2,
            head,
            channels,
            feat_channels,
        }
    }
}

impl GraphClassifier for ThreeWlGc {
    fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> GcOutput {
        let n = ctx.n();
        let _ = self.channels;
        // input channels
        let mut channels: Vec<Var> =
            vec![tape.constant(dense_adj(ctx)), tape.constant(Matrix::eye(n))];
        for f in 0..self.feat_channels {
            let mut d = Matrix::zeros(n, n);
            for i in 0..n {
                d[(i, i)] = ctx.x[(i, f)];
            }
            channels.push(tape.constant(d));
        }
        let in_channels = channels.clone();
        let mut h = self.block1.forward(tape, bind, &channels, n);
        h.extend_from_slice(&in_channels); // skip
        let mut h2 = self.block2.forward(tape, bind, &h, n);
        h2.extend_from_slice(&h); // skip
                                  // readout: trace + total sum per channel
        let eye = tape.constant(Matrix::eye(n));
        let mut feats: Vec<Var> = Vec::with_capacity(2 * h2.len());
        for &c in &h2 {
            feats.push(tape.sum_all(tape.mul_elem(c, eye)));
            feats.push(tape.sum_all(c));
        }
        let mut rep = tape.concat_cols(&feats); // 1 x 2C
        rep = tape.scale(rep, 1.0 / (n as f64 * n as f64)); // size normalisation
        if train {
            rep = tape.dropout(rep, 0.2, rng);
        }
        GcOutput {
            logits: self.head.forward(tape, bind, rep),
            aux_loss: None,
        }
    }

    fn name(&self) -> &'static str {
        "3WL-GNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ring_vs_star_samples, train_graph_classifier};
    use rand::SeedableRng;

    #[test]
    fn threewl_trains() {
        let mut store = ParamStore::new();
        let model = ThreeWlGc::new(&mut store, 3, 6, 2, &mut StdRng::seed_from_u64(0));
        let loss = train_graph_classifier(&model, &mut store, &ring_vs_star_samples(), 200, 0.02);
        assert!(loss < 0.3, "final loss = {loss}");
    }

    #[test]
    fn threewl_output_shape() {
        let mut store = ParamStore::new();
        let model = ThreeWlGc::new(&mut store, 3, 4, 2, &mut StdRng::seed_from_u64(0));
        let samples = ring_vs_star_samples();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(
            &tape,
            &bind,
            &samples[0].0,
            false,
            &mut StdRng::seed_from_u64(1),
        );
        assert_eq!(tape.shape(out.logits), (1, 2));
        assert!(tape.value(out.logits).all_finite());
    }

    /// The defining property: 3WL can separate two triangles from a
    /// 6-cycle (same degree sequence, different triangle counts) without
    /// node features — a pair 1-WL message passing cannot distinguish.
    #[test]
    fn threewl_separates_c3c3_from_c6() {
        use mg_graph::Topology;
        let two_triangles =
            Topology::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let hexagon = Topology::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let feat = Matrix::full(6, 3, 1.0);
        let samples = vec![
            (GraphCtx::new(two_triangles, feat.clone()), 0usize),
            (GraphCtx::new(hexagon, feat), 1usize),
        ];
        let mut store = ParamStore::new();
        let model = ThreeWlGc::new(&mut store, 3, 6, 2, &mut StdRng::seed_from_u64(0));
        let loss = train_graph_classifier(&model, &mut store, &samples, 300, 0.02);
        assert!(loss < 0.1, "3WL must separate C3+C3 from C6; loss = {loss}");
    }
}

//! Dense-assignment pooling: DIFFPOOL and STRUCTPOOL.
//!
//! Both learn a soft cluster-assignment matrix `S ∈ R^{n x K}` and coarsen
//! `X' = Sᵀ Z`, `A' = Sᵀ A S` with dense algebra — the "dense" design the
//! paper contrasts with sparse Top-k selection (and which shows up as the
//! slowest rows of its running-time Table 4). STRUCTPOOL additionally
//! refines the assignment with mean-field iterations of a CRF whose
//! pairwise potentials couple neighbouring nodes' assignments
//! (Yuan & Ji 2020).

use crate::ctx::GraphCtx;
use crate::gc::{GcOutput, GraphClassifier};
use crate::layers::{Activation, GcnLayer, Mlp};
use crate::readout::Readout;
use mg_tensor::{Binding, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// Which dense-assignment flavour to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenseFlavor {
    DiffPool,
    StructPool,
}

/// Dense-assignment graph classifier.
pub struct DensePoolGc {
    embed: GcnLayer,
    assign: GcnLayer,
    /// Coarse-level dense GCN weight.
    w2: ParamId,
    b2: ParamId,
    head: Mlp,
    /// CRF compatibility matrix (StructPool only).
    compat: Option<ParamId>,
    /// Number of coarse clusters `K`.
    pub clusters: usize,
    mean_field_iters: usize,
    flavor: DenseFlavor,
}

impl DensePoolGc {
    /// Build with `clusters` hyper-nodes at the coarse level.
    pub fn new(
        store: &mut ParamStore,
        flavor: DenseFlavor,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        clusters: usize,
        rng: &mut StdRng,
    ) -> Self {
        let tag = match flavor {
            DenseFlavor::DiffPool => "DIFF",
            DenseFlavor::StructPool => "STRUCT",
        };
        let embed = GcnLayer::new(
            store,
            &format!("{tag}.embed"),
            in_dim,
            hidden,
            Activation::Relu,
            rng,
        );
        let assign = GcnLayer::new(
            store,
            &format!("{tag}.assign"),
            in_dim,
            clusters,
            Activation::None,
            rng,
        );
        let w2 = store.add(format!("{tag}.w2"), Matrix::glorot(hidden, hidden, rng));
        let b2 = store.add(format!("{tag}.b2"), Matrix::zeros(1, hidden));
        let compat = match flavor {
            DenseFlavor::StructPool => Some(store.add(
                format!("{tag}.compat"),
                Matrix::glorot(clusters, clusters, rng),
            )),
            DenseFlavor::DiffPool => None,
        };
        let head = Mlp::new(
            store,
            &format!("{tag}.head"),
            &[2 * hidden, hidden, classes],
            rng,
        );
        DensePoolGc {
            embed,
            assign,
            w2,
            b2,
            head,
            compat,
            clusters,
            mean_field_iters: 2,
            flavor,
        }
    }

    /// The soft assignment matrix for a graph (used by tests).
    pub fn assignment(&self, tape: &Tape, bind: &Binding, ctx: &GraphCtx) -> Var {
        let x = ctx.x_var(tape);
        let logits = self.assign.forward(tape, bind, ctx, x);
        let refined = self.refine(tape, bind, ctx, logits);
        tape.softmax_rows(refined)
    }

    /// StructPool mean-field refinement; identity for DiffPool.
    ///
    /// Messages flow over the *row-normalised* adjacency so the pairwise
    /// term stays on the same scale as the unary logits regardless of
    /// degree (raw-adjacency messages saturate the softmax and kill the
    /// gradient).
    fn refine(&self, tape: &Tape, bind: &Binding, ctx: &GraphCtx, logits0: Var) -> Var {
        let Some(compat) = self.compat else {
            return logits0;
        };
        let n = ctx.n();
        let mut a = dense_adj(ctx);
        for i in 0..n {
            let deg: f64 = a.row(i).iter().sum();
            if deg > 0.0 {
                for v in a.row_mut(i) {
                    *v /= deg;
                }
            }
        }
        let a_norm = tape.constant(a);
        let mut logits = logits0;
        for _ in 0..self.mean_field_iters {
            let s = tape.softmax_rows(logits);
            // pairwise message: neighbours' assignments mapped through the
            // compatibility matrix
            let msg = tape.matmul(a_norm, tape.matmul(s, bind.var(compat)));
            logits = tape.add(logits0, msg);
        }
        logits
    }
}

/// Dense `n x n` unweighted adjacency of a context's graph.
pub fn dense_adj(ctx: &GraphCtx) -> Matrix {
    let n = ctx.n();
    let mut a = Matrix::zeros(n, n);
    for &(u, v) in ctx.graph.edges() {
        a[(u as usize, v as usize)] = 1.0;
        a[(v as usize, u as usize)] = 1.0;
    }
    a
}

impl GraphClassifier for DensePoolGc {
    fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> GcOutput {
        let n = ctx.n();
        let x = ctx.x_var(tape);
        let z = self.embed.forward(tape, bind, ctx, x); // n x hidden
        let logits = self.assign.forward(tape, bind, ctx, x); // n x K
        let refined = self.refine(tape, bind, ctx, logits);
        let log_s = tape.log_softmax_rows(refined);
        let s = tape.softmax_rows(refined); // n x K
        let st = tape.transpose(s);
        // coarse features and adjacency
        let x2 = tape.matmul(st, z); // K x hidden
        let a_dense = tape.constant(dense_adj(ctx));
        let a2 = tape.matmul(st, tape.matmul(a_dense, s)); // K x K
                                                           // coarse dense GCN. A2 entries are sums over O(n) soft memberships,
                                                           // so they are rescaled by 1/n to keep the pre-activation bounded;
                                                           // tanh avoids the dead-ReLU collapse an exploding first step causes.
        let a2n = tape.scale(a2, 1.0 / n as f64);
        let h2 = tape.tanh(tape.add_bias(
            tape.matmul(a2n, tape.matmul(x2, bind.var(self.w2))),
            bind.var(self.b2),
        ));
        let mut rep = Readout::MeanMax.apply(tape, h2);
        if train {
            rep = tape.dropout(rep, 0.3, rng);
        }
        let logits_out = self.head.forward(tape, bind, rep);
        // auxiliary losses (Ying et al. 2018): link prediction + entropy
        let ss_t = tape.matmul_nt_like(s); // n x n via S Sᵀ
        let diff = tape.sub(a_dense, ss_t);
        let lp = tape.mean_all(tape.mul_elem(diff, diff));
        let ent_terms = tape.mul_elem(s, log_s);
        let ent = tape.scale(tape.sum_all(ent_terms), -1.0 / n as f64);
        let aux = tape.add(tape.scale(lp, 0.05), tape.scale(ent, 0.05));
        GcOutput {
            logits: logits_out,
            aux_loss: Some(aux),
        }
    }

    fn name(&self) -> &'static str {
        match self.flavor {
            DenseFlavor::DiffPool => "DIFFPOOL",
            DenseFlavor::StructPool => "STRUCTPOOL",
        }
    }
}

/// Small extension trait: `S Sᵀ` as tape ops.
trait MatmulNtExt {
    fn matmul_nt_like(&self, s: Var) -> Var;
}

impl MatmulNtExt for Tape {
    fn matmul_nt_like(&self, s: Var) -> Var {
        let st = self.transpose(s);
        self.matmul(s, st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ring_vs_star_samples, train_graph_classifier};
    use rand::SeedableRng;

    #[test]
    fn assignment_rows_are_distributions() {
        let mut store = ParamStore::new();
        let model = DensePoolGc::new(
            &mut store,
            DenseFlavor::DiffPool,
            3,
            8,
            2,
            4,
            &mut StdRng::seed_from_u64(0),
        );
        let samples = ring_vs_star_samples();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let s = model.assignment(&tape, &bind, &samples[0].0);
        let sv = tape.value(s);
        assert_eq!(sv.cols(), 4);
        for i in 0..sv.rows() {
            let sum: f64 = sv.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn diffpool_trains() {
        let mut store = ParamStore::new();
        let model = DensePoolGc::new(
            &mut store,
            DenseFlavor::DiffPool,
            3,
            16,
            2,
            4,
            &mut StdRng::seed_from_u64(0),
        );
        let loss = train_graph_classifier(&model, &mut store, &ring_vs_star_samples(), 250, 0.02);
        // aux loss keeps total above zero; CE should still collapse
        assert!(loss < 0.6, "final loss = {loss}");
    }

    #[test]
    fn structpool_trains() {
        let mut store = ParamStore::new();
        let model = DensePoolGc::new(
            &mut store,
            DenseFlavor::StructPool,
            3,
            16,
            2,
            4,
            &mut StdRng::seed_from_u64(0),
        );
        let loss = train_graph_classifier(&model, &mut store, &ring_vs_star_samples(), 400, 0.02);
        assert!(loss < 0.6, "final loss = {loss}");
    }

    #[test]
    fn structpool_refinement_changes_assignment() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = DensePoolGc::new(&mut store, DenseFlavor::StructPool, 3, 8, 2, 4, &mut rng);
        let samples = ring_vs_star_samples();
        let ctx = &samples[0].0;
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let x = ctx.x_var(&tape);
        let raw = tape.softmax_rows(model.assign.forward(&tape, &bind, ctx, x));
        let refined = model.assignment(&tape, &bind, ctx);
        assert_ne!(*tape.value(raw), *tape.value(refined));
    }

    #[test]
    fn dense_adj_is_symmetric() {
        let samples = ring_vs_star_samples();
        let a = dense_adj(&samples[0].0);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }
}

//! Top-k-selection hierarchical pooling (TOPKPOOL and SAGPOOL).
//!
//! Both follow the SAGPool pipeline the paper adopts for graph
//! classification: `[GCN -> pool]` repeated, a `[mean ‖ max]` readout per
//! level, readouts summed, MLP head. They differ only in how nodes are
//! scored: TOPKPOOL projects features onto a learnable vector (Gao & Ji
//! 2019), SAGPOOL scores with a one-output GCN layer (Lee et al. 2019).
//! The pre-defined pooling ratio `k` is exactly the hyper-parameter
//! AdamGNN's adaptive selection removes.

use crate::ctx::GraphCtx;
use crate::gc::{GcOutput, GraphClassifier};
use crate::layers::{Activation, GcnLayer, Mlp};
use crate::readout::Readout;
use mg_graph::{gcn_norm, NormAdj, Topology};
use mg_tensor::{Binding, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::rc::Rc;

/// How a pooling level scores nodes.
enum Scorer {
    /// Learnable projection vector (TOPKPOOL).
    Projection(ParamId),
    /// One-output GCN layer (SAGPOOL).
    SelfAttention(GcnLayer),
}

impl Scorer {
    fn score(
        &self,
        tape: &Tape,
        bind: &Binding,
        csr: Rc<mg_tensor::Csr>,
        adj_values: Var,
        h: Var,
    ) -> Var {
        match self {
            Scorer::Projection(p) => tape.matmul(h, bind.var(*p)),
            Scorer::SelfAttention(gcn) => gcn.forward_adj(tape, bind, csr, adj_values, h),
        }
    }
}

/// Which Top-k flavour to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopKFlavor {
    TopK,
    SagPool,
}

/// Hierarchical Top-k graph classifier.
pub struct TopKGc {
    convs: Vec<GcnLayer>,
    scorers: Vec<Scorer>,
    head: Mlp,
    ratio: f64,
    flavor: TopKFlavor,
}

impl TopKGc {
    /// `levels` rounds of conv+pool with pooling ratio `ratio`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        flavor: TopKFlavor,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        levels: usize,
        ratio: f64,
        rng: &mut StdRng,
    ) -> Self {
        assert!(levels >= 1, "TopKGc needs at least one level");
        assert!((0.0..=1.0).contains(&ratio), "ratio must be in (0, 1]");
        let tag = match flavor {
            TopKFlavor::TopK => "TOPK",
            TopKFlavor::SagPool => "SAG",
        };
        let mut convs = Vec::new();
        let mut scorers = Vec::new();
        for l in 0..levels {
            let dim_in = if l == 0 { in_dim } else { hidden };
            convs.push(GcnLayer::new(
                store,
                &format!("{tag}.conv{l}"),
                dim_in,
                hidden,
                Activation::Relu,
                rng,
            ));
            scorers.push(match flavor {
                TopKFlavor::TopK => Scorer::Projection(
                    store.add(format!("{tag}.p{l}"), Matrix::glorot(hidden, 1, rng)),
                ),
                TopKFlavor::SagPool => Scorer::SelfAttention(GcnLayer::new(
                    store,
                    &format!("{tag}.score{l}"),
                    hidden,
                    1,
                    Activation::None,
                    rng,
                )),
            });
        }
        let head = Mlp::new(
            store,
            &format!("{tag}.head"),
            &[2 * hidden, hidden, classes],
            rng,
        );
        TopKGc {
            convs,
            scorers,
            head,
            ratio,
            flavor,
        }
    }
}

/// Select the indices of the top `ceil(ratio * n)` scores (at least one).
pub fn top_ratio_indices(scores: &Matrix, ratio: f64) -> Vec<usize> {
    let n = scores.rows();
    let k = ((ratio * n as f64).ceil() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[(b, 0)]
            .partial_cmp(&scores[(a, 0)])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut keep = idx[..k].to_vec();
    keep.sort_unstable();
    keep
}

impl GraphClassifier for TopKGc {
    fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> GcOutput {
        let mut topo: Rc<Topology> = ctx.graph.clone();
        let mut adj: NormAdj = ctx.gcn.clone();
        let mut h = ctx.x_var(tape);
        let mut readout_sum: Option<Var> = None;
        for (conv, scorer) in self.convs.iter().zip(&self.scorers) {
            let vals = tape.constant(Matrix::from_vec(1, adj.values.len(), adj.values.clone()));
            h = conv.forward_adj(tape, bind, adj.csr.clone(), vals, h);
            let vals2 = tape.constant(Matrix::from_vec(1, adj.values.len(), adj.values.clone()));
            let score = scorer.score(tape, bind, adj.csr.clone(), vals2, h);
            // discrete top-k selection on the score values; gradients flow
            // through the tanh gate on the surviving nodes
            let keep = top_ratio_indices(&tape.value(score), self.ratio);
            let keep_rc = Rc::new(keep.clone());
            let h_kept = tape.gather_rows(h, keep_rc.clone());
            let gate = tape.tanh(tape.gather_rows(score, keep_rc));
            h = tape.mul_col(h_kept, gate);
            let (sub, _) = topo.induced_subgraph(&keep);
            adj = gcn_norm(&sub);
            topo = Rc::new(sub);
            let r = Readout::MeanMax.apply(tape, h);
            readout_sum = Some(match readout_sum {
                Some(acc) => tape.add(acc, r),
                None => r,
            });
        }
        let mut rep = readout_sum.expect("at least one level");
        if train {
            rep = tape.dropout(rep, 0.3, rng);
        }
        GcOutput {
            logits: self.head.forward(tape, bind, rep),
            aux_loss: None,
        }
    }

    fn name(&self) -> &'static str {
        match self.flavor {
            TopKFlavor::TopK => "TOPKPOOL",
            TopKFlavor::SagPool => "SAGPOOL",
        }
    }
}

/// Figure 3: fraction of the graph's nodes covered when the top
/// `ratio * n` nodes by score are selected together with their `lambda`-hop
/// neighbourhoods. Scores nodes by degree, the structural analogue of a
/// trained projection score.
pub fn topk_coverage(g: &Topology, ratio: f64, lambda: usize) -> f64 {
    let n = g.n();
    if n == 0 {
        return 0.0;
    }
    let scores = Matrix::from_fn(n, 1, |i, _| g.degree(i) as f64);
    let keep = top_ratio_indices(&scores, ratio);
    let mut covered = vec![false; n];
    for &s in &keep {
        for v in g.khop(s, lambda) {
            covered[v] = true;
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ring_vs_star_samples, train_graph_classifier};
    use rand::SeedableRng;

    #[test]
    fn top_ratio_indices_selects_best() {
        let scores = Matrix::from_vec(4, 1, vec![0.1, 0.9, 0.5, 0.2]);
        assert_eq!(top_ratio_indices(&scores, 0.5), vec![1, 2]);
        assert_eq!(top_ratio_indices(&scores, 0.01), vec![1]);
        assert_eq!(top_ratio_indices(&scores, 1.0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn topk_gc_trains() {
        let mut store = ParamStore::new();
        let model = TopKGc::new(
            &mut store,
            TopKFlavor::TopK,
            3,
            16,
            2,
            2,
            0.5,
            &mut StdRng::seed_from_u64(1),
        );
        let loss = train_graph_classifier(&model, &mut store, &ring_vs_star_samples(), 250, 0.02);
        assert!(loss < 0.3, "final loss = {loss}");
    }

    #[test]
    fn sagpool_gc_trains() {
        let mut store = ParamStore::new();
        let model = TopKGc::new(
            &mut store,
            TopKFlavor::SagPool,
            3,
            16,
            2,
            2,
            0.5,
            &mut StdRng::seed_from_u64(1),
        );
        let loss = train_graph_classifier(&model, &mut store, &ring_vs_star_samples(), 250, 0.02);
        assert!(loss < 0.3, "final loss = {loss}");
    }

    #[test]
    fn coverage_increases_with_ratio() {
        let g = {
            let edges: Vec<(u32, u32)> = (0..30u32).map(|i| (i, (i + 1) % 30)).collect();
            Topology::from_edges(30, &edges)
        };
        let mut prev = 0.0;
        for ratio in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let c = topk_coverage(&g, ratio, 1);
            assert!(c >= prev, "coverage must be monotone");
            prev = c;
        }
        assert!((topk_coverage(&g, 1.0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_low_ratio_misses_nodes() {
        // star graph: selecting the hub covers everything; a path misses
        let path: Vec<(u32, u32)> = (0..29u32).map(|i| (i, i + 1)).collect();
        let g = Topology::from_edges(30, &path);
        let c = topk_coverage(&g, 0.1, 1);
        assert!(c < 0.5, "coverage = {c}");
    }
}

//! Pooling operators: the competing methods of the paper's evaluation.

pub mod dense;
pub mod hierarchy;
pub mod sortpool;
pub mod threewl;
pub mod unet;

pub use dense::{dense_adj, DenseFlavor, DensePoolGc};
pub use hierarchy::{top_ratio_indices, topk_coverage, TopKFlavor, TopKGc};
pub use sortpool::SortPoolGc;
pub use threewl::ThreeWlGc;
pub use unet::GraphUNet;

//! SORTPOOL (DGCNN, Zhang et al. 2018): GCN layers with tanh, nodes sorted
//! by their last feature channel, the top `k` kept (zero-padded when the
//! graph is smaller) and the flattened `k x d` block fed to an MLP — the
//! "1-D convolution over sorted nodes" of the original, realised as a
//! dense layer over the flattened window.

use crate::ctx::GraphCtx;
use crate::gc::{GcOutput, GraphClassifier};
use crate::layers::{Activation, GcnLayer, Mlp};
use mg_tensor::{Binding, Csr, Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use std::rc::Rc;

/// SortPool graph classifier.
pub struct SortPoolGc {
    convs: Vec<GcnLayer>,
    head: Mlp,
    k: usize,
    hidden: usize,
}

impl SortPoolGc {
    /// Two tanh GCN layers, a `k`-node sorted window, and an MLP head.
    pub fn new(
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        k: usize,
        rng: &mut StdRng,
    ) -> Self {
        let convs = vec![
            GcnLayer::new(store, "SORT.conv0", in_dim, hidden, Activation::Tanh, rng),
            GcnLayer::new(store, "SORT.conv1", hidden, hidden, Activation::Tanh, rng),
        ];
        let head = Mlp::new(store, "SORT.head", &[k * hidden, hidden, classes], rng);
        SortPoolGc {
            convs,
            head,
            k,
            hidden,
        }
    }
}

impl GraphClassifier for SortPoolGc {
    fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> GcOutput {
        let mut h = ctx.x_var(tape);
        for conv in &self.convs {
            h = conv.forward(tape, bind, ctx, h);
        }
        let n = ctx.n();
        // sort nodes by the last channel, descending
        let order: Vec<usize> = {
            let hv = tape.value(h);
            let last = self.hidden - 1;
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| {
                hv[(b, last)]
                    .partial_cmp(&hv[(a, last)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            idx
        };
        // selection matrix with zero rows as padding when n < k
        let take = self.k.min(n);
        let entries: Vec<(u32, u32)> = (0..take).map(|i| (i as u32, order[i] as u32)).collect();
        let sel = Rc::new(Csr::from_coo(self.k, n, &entries));
        let ones = tape.constant(Matrix::full(1, take, 1.0));
        let window = tape.spmm(sel, ones, h); // k x hidden, zero-padded
        let mut flat = tape.reshape(window, 1, self.k * self.hidden);
        if train {
            flat = tape.dropout(flat, 0.3, rng);
        }
        GcOutput {
            logits: self.head.forward(tape, bind, flat),
            aux_loss: None,
        }
    }

    fn name(&self) -> &'static str {
        "SORTPOOL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ring_vs_star_samples, train_graph_classifier};
    use rand::SeedableRng;

    #[test]
    fn sortpool_trains() {
        let mut store = ParamStore::new();
        let model = SortPoolGc::new(&mut store, 3, 16, 2, 8, &mut StdRng::seed_from_u64(0));
        let loss = train_graph_classifier(&model, &mut store, &ring_vs_star_samples(), 250, 0.02);
        assert!(loss < 0.3, "final loss = {loss}");
    }

    #[test]
    fn sortpool_pads_small_graphs() {
        // k larger than every graph: forward must still produce logits
        let mut store = ParamStore::new();
        let model = SortPoolGc::new(&mut store, 3, 8, 2, 64, &mut StdRng::seed_from_u64(0));
        let samples = ring_vs_star_samples();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(
            &tape,
            &bind,
            &samples[0].0,
            false,
            &mut StdRng::seed_from_u64(1),
        );
        assert_eq!(tape.shape(out.logits), (1, 2));
        assert!(tape.value(out.logits).all_finite());
    }
}

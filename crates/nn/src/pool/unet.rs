//! Graph U-Net node encoder (TOPKPOOL for node-wise tasks, Gao & Ji 2019).
//!
//! Encoder path: GCN → top-k pool → GCN on the pooled graph; decoder path:
//! unpool (scatter pooled rows back to their original positions, zeros
//! elsewhere) → skip connection → GCN. This is the only pooling baseline
//! in the paper that supports node-level tasks, because it has an
//! unpooling operator.

use crate::ctx::GraphCtx;
use crate::encoders::NodeEncoder;
use crate::layers::{Activation, GcnLayer};
use crate::pool::hierarchy::top_ratio_indices;
use mg_graph::gcn_norm;
use mg_tensor::{Binding, Csr, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::rc::Rc;

/// Graph U-Net with one pooling level.
pub struct GraphUNet {
    enc: GcnLayer,
    bottom: GcnLayer,
    dec: GcnLayer,
    proj: ParamId,
    ratio: f64,
    dropout: f64,
}

impl GraphUNet {
    /// `in_dim -> hidden -> hidden -> out_dim` with a pool/unpool pair.
    pub fn new(
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        ratio: f64,
        rng: &mut StdRng,
    ) -> Self {
        GraphUNet {
            enc: GcnLayer::new(store, "UNET.enc", in_dim, hidden, Activation::Relu, rng),
            bottom: GcnLayer::new(store, "UNET.bottom", hidden, hidden, Activation::Relu, rng),
            dec: GcnLayer::new(store, "UNET.dec", hidden, out_dim, Activation::None, rng),
            proj: store.add("UNET.proj", Matrix::glorot(hidden, 1, rng)),
            ratio,
            dropout: 0.5,
        }
    }
}

impl NodeEncoder for GraphUNet {
    fn encode(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        let n = ctx.n();
        let x = ctx.x_var(tape);
        let mut h1 = self.enc.forward(tape, bind, ctx, x); // n x hidden
        if train {
            h1 = tape.dropout(h1, self.dropout, rng);
        }
        // top-k pooling on a learnable projection score
        let score = tape.matmul(h1, bind.var(self.proj)); // n x 1
        let keep = top_ratio_indices(&tape.value(score), self.ratio);
        let keep_rc = Rc::new(keep.clone());
        let gate = tape.tanh(tape.gather_rows(score, keep_rc.clone()));
        let h_kept = tape.mul_col(tape.gather_rows(h1, keep_rc), gate);
        // coarse-level convolution on the induced subgraph
        let (sub, _) = ctx.graph.induced_subgraph(&keep);
        let sub_adj = gcn_norm(&sub);
        let vals = tape.constant(Matrix::from_vec(
            1,
            sub_adj.values.len(),
            sub_adj.values.clone(),
        ));
        let h2 = self
            .bottom
            .forward_adj(tape, bind, sub_adj.csr.clone(), vals, h_kept);
        // unpool: scatter rows back to their original indices
        let entries: Vec<(u32, u32)> = keep
            .iter()
            .enumerate()
            .map(|(i, &node)| (node as u32, i as u32))
            .collect();
        let scatter = Rc::new(Csr::from_coo(n, keep.len(), &entries));
        let ones = tape.constant(Matrix::full(1, keep.len(), 1.0));
        let restored = tape.spmm(scatter, ones, h2); // n x hidden, zeros elsewhere
                                                     // skip connection then decode on the original graph
        let merged = tape.add(h1, restored);
        self.dec.forward(tape, bind, ctx, merged)
    }

    fn name(&self) -> &'static str {
        "TOPKPOOL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::two_community_ctx;
    use mg_tensor::AdamConfig;
    use rand::SeedableRng;

    #[test]
    fn unet_output_shape() {
        let (ctx, _) = two_community_ctx();
        let mut store = ParamStore::new();
        let model = GraphUNet::new(&mut store, 8, 16, 2, 0.5, &mut StdRng::seed_from_u64(0));
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.encode(&tape, &bind, &ctx, false, &mut StdRng::seed_from_u64(1));
        assert_eq!(tape.shape(out), (8, 2));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn unet_learns_node_classification() {
        let (ctx, labels) = two_community_ctx();
        let mut store = ParamStore::new();
        let model = GraphUNet::new(&mut store, 8, 16, 2, 0.5, &mut StdRng::seed_from_u64(0));
        let targets = Rc::new(labels);
        let nodes = Rc::new((0..8).collect::<Vec<_>>());
        let cfg = AdamConfig::with_lr(0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let logits = model.encode(&tape, &bind, &ctx, false, &mut rng);
            let loss = tape.cross_entropy(logits, targets.clone(), nodes.clone());
            last = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &cfg);
        }
        assert!(last < 0.2, "final loss = {last}");
    }

    #[test]
    fn unpool_restores_positions() {
        // structural check of the scatter matrix: rows outside `keep` are 0
        let (ctx, _) = two_community_ctx();
        let mut store = ParamStore::new();
        let model = GraphUNet::new(&mut store, 8, 4, 4, 0.25, &mut StdRng::seed_from_u64(0));
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.encode(&tape, &bind, &ctx, false, &mut StdRng::seed_from_u64(1));
        // with ratio 0.25 only 2 of 8 nodes carry coarse information; the
        // output must still be defined (skip connection) for all nodes
        assert_eq!(tape.shape(out), (8, 4));
    }
}

//! # mg-nn
//!
//! GNN layers, baseline encoders and pooling operators used as competing
//! methods in the AdamGNN evaluation.

pub mod ctx;
pub mod encoders;
pub mod gc;
pub mod layers;
pub mod layers_ext;
pub mod pool;
pub mod readout;
pub mod testkit;

pub use ctx::GraphCtx;
pub use encoders::{GatNet, GcnNet, GinNet, NodeEncoder, SageNet};
pub use gc::{GcOutput, GinGc, GraphClassifier};
pub use layers::{Activation, GatLayer, GcnLayer, GinLayer, Mlp, SageLayer};
pub use layers_ext::{MultiHeadGat, SageMaxPool};
pub use pool::{
    dense_adj, top_ratio_indices, topk_coverage, DenseFlavor, DensePoolGc, GraphUNet, SortPoolGc,
    ThreeWlGc, TopKFlavor, TopKGc,
};
pub use readout::Readout;

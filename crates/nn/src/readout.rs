//! Graph-level readouts: permutation-invariant reductions of node
//! embeddings into a single `1 x d` (or concatenated) representation.

use mg_tensor::{Tape, Var};

/// Which reduction a readout applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Readout {
    Mean,
    Max,
    Sum,
    /// `[mean ‖ max]` — the readout used by the SAGPool pipeline the
    /// paper's graph-classification protocol follows.
    MeanMax,
}

impl Readout {
    /// Output width given node-embedding width `d`.
    pub fn out_dim(&self, d: usize) -> usize {
        match self {
            Readout::MeanMax => 2 * d,
            _ => d,
        }
    }

    /// Apply to an `n x d` node-embedding matrix, producing `1 x out_dim`.
    pub fn apply(&self, tape: &Tape, h: Var) -> Var {
        match self {
            Readout::Mean => tape.mean_rows(h),
            Readout::Max => tape.max_rows(h),
            Readout::Sum => tape.sum_rows(h),
            Readout::MeanMax => {
                let mean = tape.mean_rows(h);
                let max = tape.max_rows(h);
                tape.concat_cols(&[mean, max])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_tensor::Matrix;

    #[test]
    fn readout_shapes() {
        let tape = Tape::new();
        let h = tape.constant(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        assert_eq!(tape.shape(Readout::Mean.apply(&tape, h)), (1, 2));
        assert_eq!(tape.shape(Readout::Max.apply(&tape, h)), (1, 2));
        assert_eq!(tape.shape(Readout::Sum.apply(&tape, h)), (1, 2));
        assert_eq!(tape.shape(Readout::MeanMax.apply(&tape, h)), (1, 4));
    }

    #[test]
    fn readout_values() {
        let tape = Tape::new();
        let h = tape.constant(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        assert_eq!(tape.value(Readout::Mean.apply(&tape, h)).data(), &[3., 4.]);
        assert_eq!(tape.value(Readout::Max.apply(&tape, h)).data(), &[5., 6.]);
        assert_eq!(tape.value(Readout::Sum.apply(&tape, h)).data(), &[9., 12.]);
    }

    #[test]
    fn out_dim_matches_apply() {
        let tape = Tape::new();
        let h = tape.constant(Matrix::zeros(4, 3));
        for r in [Readout::Mean, Readout::Max, Readout::Sum, Readout::MeanMax] {
            assert_eq!(tape.shape(r.apply(&tape, h)).1, r.out_dim(3));
        }
    }
}

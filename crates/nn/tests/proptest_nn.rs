//! Property-based tests of GNN layer semantics: permutation equivariance
//! of message passing, permutation invariance of readouts, and attention
//! normalisation.

use mg_graph::Topology;
use mg_nn::{Activation, GatLayer, GcnLayer, GraphCtx, Readout};
use mg_tensor::{Matrix, ParamStore, Tape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random graph + node features.
fn graph_and_features() -> impl Strategy<Value = (Topology, Matrix)> {
    (3..12usize).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 1..3 * n),
            proptest::collection::vec(-1.0..1.0f64, n * 4),
        )
            .prop_map(move |(edges, feat)| {
                (
                    Topology::from_edges(n, &edges),
                    Matrix::from_vec(n, 4, feat),
                )
            })
    })
}

/// A permutation of `0..n` derived from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    use rand::RngExt;
    let mut p: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

fn permute_graph(g: &Topology, p: &[usize]) -> Topology {
    let edges: Vec<(u32, u32)> = g
        .edges()
        .iter()
        .map(|&(u, v)| (p[u as usize] as u32, p[v as usize] as u32))
        .collect();
    Topology::from_edges(g.n(), &edges)
}

/// `out[p[i]] = in[i]`: node `i` moves to position `p[i]`.
fn permute_rows(m: &Matrix, p: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for (i, &pi) in p.iter().enumerate() {
        out.row_mut(pi).copy_from_slice(m.row(i));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GCN is permutation-equivariant: relabelling nodes permutes outputs.
    #[test]
    fn gcn_is_permutation_equivariant((g, x) in graph_and_features(), seed in 0u64..100) {
        let n = g.n();
        let p = permutation(n, seed);
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(
            &mut store, "eq", 4, 3, Activation::Relu, &mut StdRng::seed_from_u64(7),
        );
        let run = |g: Topology, x: Matrix| {
            let ctx = GraphCtx::new(g, x);
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let xv = ctx.x_var(&tape);
            let out = layer.forward(&tape, &bind, &ctx, xv);
            tape.value_cloned(out)
        };
        let direct = run(g.clone(), x.clone());
        let permuted = run(permute_graph(&g, &p), permute_rows(&x, &p));
        for i in 0..n {
            for j in 0..3 {
                prop_assert!(
                    (direct[(i, j)] - permuted[(p[i], j)]).abs() < 1e-9,
                    "equivariance violated at node {}", i
                );
            }
        }
    }

    /// Mean/Max/Sum readouts are permutation-invariant.
    #[test]
    fn readouts_are_permutation_invariant((g, x) in graph_and_features(), seed in 0u64..100) {
        let p = permutation(g.n(), seed);
        let xp = permute_rows(&x, &p);
        for r in [Readout::Mean, Readout::Max, Readout::Sum, Readout::MeanMax] {
            let tape = Tape::new();
            let a = tape.constant(x.clone());
            let b = tape.constant(xp.clone());
            let ra = tape.value_cloned(r.apply(&tape, a));
            let rb = tape.value_cloned(r.apply(&tape, b));
            for j in 0..ra.cols() {
                prop_assert!((ra[(0, j)] - rb[(0, j)]).abs() < 1e-9);
            }
        }
    }

    /// GAT produces finite outputs on arbitrary graphs (including graphs
    /// with isolated nodes, which aggregate only their self loop).
    #[test]
    fn gat_is_finite_everywhere((g, x) in graph_and_features()) {
        let mut store = ParamStore::new();
        let layer = GatLayer::new(
            &mut store, "fin", 4, 3, Activation::None, &mut StdRng::seed_from_u64(3),
        );
        let ctx = GraphCtx::new(g, x);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let xv = ctx.x_var(&tape);
        let out = layer.forward(&tape, &bind, &ctx, xv);
        prop_assert!(tape.value(out).all_finite());
    }

    /// Training one GCN step never produces non-finite parameters.
    #[test]
    fn one_training_step_keeps_parameters_finite((g, x) in graph_and_features()) {
        use mg_tensor::AdamConfig;
        let n = g.n();
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(
            &mut store, "step", 4, 2, Activation::None, &mut StdRng::seed_from_u64(5),
        );
        let ctx = GraphCtx::new(g, x);
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let xv = ctx.x_var(&tape);
        let logits = layer.forward(&tape, &bind, &ctx, xv);
        let targets = std::rc::Rc::new(vec![0usize; n]);
        let nodes = std::rc::Rc::new((0..n).collect::<Vec<_>>());
        let loss = tape.cross_entropy(logits, targets, nodes);
        let mut grads = tape.backward(loss);
        store.step(&mut grads, &bind, &AdamConfig::with_lr(0.1));
        let tape2 = Tape::new();
        let bind2 = store.bind(&tape2);
        let out2 = layer.forward(&tape2, &bind2, &ctx, ctx.x_var(&tape2));
        prop_assert!(tape2.value(out2).all_finite());
    }
}

//! Process-wide per-kernel timing registry.
//!
//! Kernels wrap their bodies in [`timed`]; the registry accumulates call
//! counts and cumulative nanoseconds per op name and can be dumped as
//! JSON at any point (training loops print it when `MG_KERNEL_STATS` is
//! set). The registry is always on — one uncontended mutex lock plus two
//! `Instant` reads per kernel call, which is noise next to the kernels
//! it measures.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Accumulated statistics for one kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Number of recorded calls.
    pub calls: u64,
    /// Total time across calls, in nanoseconds.
    pub total_ns: u64,
}

impl OpStat {
    /// Mean nanoseconds per call (0 when never called).
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

static REGISTRY: OnceLock<Mutex<HashMap<&'static str, OpStat>>> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<&'static str, OpStat>> {
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The per-kernel timing registry. All methods are associated functions
/// on a unit struct so call sites read `KernelStats::snapshot()`.
pub struct KernelStats;

impl KernelStats {
    /// Record one call of `name` taking `ns` nanoseconds.
    pub fn record(name: &'static str, ns: u64) {
        let mut map = registry().lock().expect("KernelStats lock poisoned");
        let stat = map.entry(name).or_default();
        stat.calls += 1;
        stat.total_ns += ns;
    }

    /// Snapshot of all stats, sorted by descending total time.
    pub fn snapshot() -> Vec<(&'static str, OpStat)> {
        let map = registry().lock().expect("KernelStats lock poisoned");
        let mut v: Vec<_> = map.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        v
    }

    /// Clear all recorded stats (tests, or per-epoch reporting).
    pub fn reset() {
        registry()
            .lock()
            .expect("KernelStats lock poisoned")
            .clear();
    }

    /// Dump the registry as a JSON object:
    ///
    /// ```json
    /// {"kernels": [
    ///   {"op": "matmul", "calls": 12, "total_ns": 34, "mean_ns": 2.8}
    /// ]}
    /// ```
    pub fn to_json() -> String {
        let entries: Vec<String> = Self::snapshot()
            .iter()
            .map(|(name, s)| {
                format!(
                    "    {{\"op\": \"{}\", \"calls\": {}, \"total_ns\": {}, \
                     \"mean_ns\": {:.1}}}",
                    name,
                    s.calls,
                    s.total_ns,
                    s.mean_ns()
                )
            })
            .collect();
        format!("{{\n  \"kernels\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
    }
}

thread_local! {
    /// Nesting depth of [`timed`] scopes on this thread.
    static TIMED_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Restores the thread-local depth even if `f` unwinds, so a panicking
/// kernel cannot permanently mute the registry on its thread.
struct DepthGuard;

impl Drop for DepthGuard {
    fn drop(&mut self) {
        TIMED_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Time `f` and record it under `name`.
///
/// Only the *outermost* timed scope on a thread records: when a timed
/// kernel calls another timed kernel (a fused op wrapping the primitive
/// it fuses, say), the inner call runs unrecorded instead of counting
/// the same nanoseconds under two names. The registry thus stays a
/// partition of wall time — summing `total_ns` over ops never exceeds
/// the time actually spent in kernels.
#[inline]
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let depth = TIMED_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let _guard = DepthGuard;
    if depth > 0 {
        return f();
    }
    let start = Instant::now();
    let out = f();
    KernelStats::record(name, start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run concurrently, so each
    // test uses its own op names instead of resetting.

    #[test]
    fn record_accumulates() {
        KernelStats::record("test_op_a", 10);
        KernelStats::record("test_op_a", 30);
        let snap = KernelStats::snapshot();
        let (_, s) = snap.iter().find(|(n, _)| *n == "test_op_a").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_ns, 40);
        assert!((s.mean_ns() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn timed_returns_value_and_records() {
        let v = timed("test_op_b", || 7 * 6);
        assert_eq!(v, 42);
        let snap = KernelStats::snapshot();
        assert!(snap.iter().any(|(n, s)| *n == "test_op_b" && s.calls >= 1));
    }

    #[test]
    fn nested_timed_records_outermost_only() {
        timed("test_op_outer", || timed("test_op_inner", || 1 + 1));
        let snap = KernelStats::snapshot();
        assert!(
            snap.iter()
                .any(|(n, s)| *n == "test_op_outer" && s.calls == 1),
            "outermost scope must record"
        );
        assert!(
            !snap.iter().any(|(n, _)| *n == "test_op_inner"),
            "nested scope must not double-count into the registry"
        );
    }

    #[test]
    fn sibling_timed_calls_both_record() {
        timed("test_op_sib1", || ());
        timed("test_op_sib2", || ());
        let snap = KernelStats::snapshot();
        assert!(snap
            .iter()
            .any(|(n, s)| *n == "test_op_sib1" && s.calls == 1));
        assert!(snap
            .iter()
            .any(|(n, s)| *n == "test_op_sib2" && s.calls == 1));
    }

    #[test]
    fn panicking_timed_scope_does_not_mute_thread() {
        let r = std::panic::catch_unwind(|| timed("test_op_panics", || panic!("boom")));
        assert!(r.is_err());
        timed("test_op_after_panic", || ());
        let snap = KernelStats::snapshot();
        assert!(
            snap.iter()
                .any(|(n, s)| *n == "test_op_after_panic" && s.calls == 1),
            "depth must unwind back to zero after a panic"
        );
    }

    #[test]
    fn json_shape() {
        KernelStats::record("test_op_c", 5);
        let json = KernelStats::to_json();
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"op\": \"test_op_c\""));
        assert!(json.contains("\"calls\""));
    }
}

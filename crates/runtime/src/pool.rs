//! The thread pool and deterministic row partitioning.
//!
//! ## Execution model
//!
//! A parallel region ([`Pool::run`]) publishes one job — a `Fn(usize)`
//! over chunk indices `0..n_chunks` — to all workers. Chunks live in a
//! single shared counter ("work-stealing-lite": there is one queue, and
//! idle workers steal from it by bumping the counter), so a worker that
//! finishes early keeps claiming chunks while slower ones are busy. The
//! calling thread claims chunks too, then blocks until every chunk has
//! *completed* (not merely been claimed). That completion barrier is what
//! makes the borrowed-closure lifetime erasure sound: the job pointer
//! never outlives `run`.
//!
//! ## Determinism
//!
//! Scheduling order is nondeterministic, but [`chunk_bounds`] assigns
//! each chunk a fixed contiguous range, and kernels built on
//! [`parallel_rows`] compute each output row entirely within one chunk
//! using the serial code's inner loops. Floating-point reduction order
//! per output element is therefore independent of thread count and
//! scheduling — results are bitwise identical to the serial path.

use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Type-erased pointer to the current job's task closure.
///
/// Lifetime is erased from the caller's borrow; soundness is argued in
/// the module docs (the completion barrier in [`Pool::run`]).
#[derive(Clone, Copy)]
struct RawTask(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and the pointer is only dereferenced while the originating
// `run` call is blocked, keeping the borrow alive.
unsafe impl Send for RawTask {}

struct JobState {
    /// Monotonic job id; workers use it to detect fresh work.
    seq: u64,
    /// Total chunks of the current job.
    n_chunks: usize,
    /// Next chunk index to claim.
    next: usize,
    /// Chunks fully executed.
    completed: usize,
    /// The active task, if a job is in flight.
    task: Option<RawTask>,
}

struct Shared {
    /// Serialises job submission: [`Pool::run`] holds this for its whole
    /// duration, so two threads sharing one pool cannot overwrite each
    /// other's [`JobState`] (which would lose chunks or hang the first
    /// caller). Workers never take this lock.
    job: Mutex<()>,
    state: Mutex<JobState>,
    /// Workers wait here for a new job.
    work_cv: Condvar,
    /// The caller waits here for job completion.
    done_cv: Condvar,
    shutdown: AtomicBool,
}

/// A persistent pool of `threads - 1` workers; the thread calling
/// [`Pool::run`] acts as the final worker.
///
/// A pool with `threads <= 1` spawns nothing and runs everything inline
/// on the caller — the guaranteed serial degradation path for
/// `MG_NUM_THREADS=1`.
pub struct Pool {
    threads: usize,
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Create a pool with the given parallelism degree (total threads,
    /// including the caller of [`Pool::run`]).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        if threads == 1 {
            return Pool {
                threads,
                shared: None,
                handles: Vec::new(),
            };
        }
        let shared = Arc::new(Shared {
            job: Mutex::new(()),
            state: Mutex::new(JobState {
                seq: 0,
                n_chunks: 0,
                next: 0,
                completed: 0,
                task: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mg-runtime-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("mg-runtime: failed to spawn worker thread")
            })
            .collect();
        Pool {
            threads,
            shared: Some(shared),
            handles,
        }
    }

    /// The pool's parallelism degree.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True if [`Pool::run`] may execute tasks on more than one thread.
    #[inline]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Execute `task(chunk)` for every `chunk in 0..n_chunks`, using all
    /// pool threads plus the calling thread. Returns after **all**
    /// chunks have completed.
    ///
    /// Chunks must be independent: the task may not call back into the
    /// same pool (parallel regions do not nest; kernels built on this
    /// never invoke other kernels inside a task).
    ///
    /// `run` may be called from several threads concurrently — jobs are
    /// serialised internally, so later callers block until earlier jobs
    /// complete rather than corrupting them.
    pub fn run(&self, n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        let Some(shared) = &self.shared else {
            for chunk in 0..n_chunks {
                task(chunk);
            }
            return;
        };
        if n_chunks <= 1 {
            if n_chunks == 1 {
                task(0);
            }
            return;
        }

        // One job at a time: held until the completion barrier passes. A
        // poisoned guard only means a previous job's task panicked on its
        // calling thread; the () payload carries no state, so recover.
        let _job = match shared.job.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };

        // SAFETY: erase the borrow lifetime; `run` does not return until
        // `completed == n_chunks`, so no worker touches the pointer after
        // the borrow ends.
        let raw: RawTask = unsafe {
            RawTask(std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task as *const (dyn Fn(usize) + Sync)))
        };

        let mut st = shared.state.lock().expect("mg-runtime: poisoned pool lock");
        st.seq += 1;
        st.n_chunks = n_chunks;
        st.next = 0;
        st.completed = 0;
        st.task = Some(raw);
        shared.work_cv.notify_all();

        // The caller participates in chunk claiming.
        loop {
            if st.next >= st.n_chunks {
                break;
            }
            let chunk = st.next;
            st.next += 1;
            drop(st);
            task(chunk);
            st = shared.state.lock().expect("mg-runtime: poisoned pool lock");
            st.completed += 1;
        }
        // Completion barrier: wait until in-flight chunks on workers end.
        while st.completed < st.n_chunks {
            st = shared
                .done_cv
                .wait(st)
                .expect("mg-runtime: poisoned pool lock");
        }
        st.task = None;
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_seq = 0u64;
    let mut st = shared.state.lock().expect("mg-runtime: poisoned pool lock");
    loop {
        // Wait for a job newer than the last one we served.
        while !(st.task.is_some() && st.seq != seen_seq) {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            st = shared
                .work_cv
                .wait(st)
                .expect("mg-runtime: poisoned pool lock");
        }
        let seq = st.seq;
        seen_seq = seq;
        // Claim chunks until the job is exhausted or replaced.
        loop {
            if st.seq != seq || st.task.is_none() || st.next >= st.n_chunks {
                break;
            }
            let chunk = st.next;
            st.next += 1;
            let task = st.task.expect("task present while claiming");
            drop(st);
            // SAFETY: see RawTask — the publishing `run` call is blocked
            // until `completed == n_chunks`, keeping the closure alive.
            unsafe { (*task.0)(chunk) };
            st = shared.state.lock().expect("mg-runtime: poisoned pool lock");
            if st.seq == seq {
                st.completed += 1;
                if st.completed == st.n_chunks {
                    shared.done_cv.notify_all();
                }
            }
        }
    }
}

/// Deterministic bounds of chunk `i` when `rows` rows are split into
/// `chunks` contiguous ranges: sizes differ by at most one, earlier
/// chunks take the remainder. Pure function of `(rows, chunks, i)`.
#[inline]
pub fn chunk_bounds(rows: usize, chunks: usize, i: usize) -> Range<usize> {
    debug_assert!(i < chunks);
    let base = rows / chunks;
    let rem = rows % chunks;
    let start = i * base + i.min(rem);
    let end = start + base + usize::from(i < rem);
    start..end
}

/// Split `rows` into contiguous ranges and run `body` on each, in
/// parallel over `pool`. `min_rows` bounds how small a chunk may get so
/// tiny matrices don't pay scheduling overhead.
///
/// Each row index is passed to exactly one invocation of `body`, and the
/// union of all ranges is `0..rows` — callers may write disjoint row
/// ranges of a shared output buffer (see [`SendPtr`]).
pub fn parallel_rows_in(
    pool: &Pool,
    rows: usize,
    min_rows: usize,
    body: &(dyn Fn(Range<usize>) + Sync),
) {
    if rows == 0 {
        return;
    }
    // Oversubscribe 4x threads so fast threads steal remaining chunks
    // from slow ones, capped so chunks never go below min_rows.
    let max_chunks = (rows / min_rows.max(1)).max(1);
    let chunks = (pool.threads() * 4).min(max_chunks);
    if !pool.is_parallel() || chunks <= 1 {
        body(0..rows);
        return;
    }
    pool.run(chunks, &|i| body(chunk_bounds(rows, chunks, i)));
}

/// [`parallel_rows_in`] on the ambient pool ([`current_threads`]
/// resolution order: `with_pool` override, then the global pool).
///
/// The override stack's `RefCell` borrow is resolved *before* the kernel
/// body runs: `body` executes on the calling thread too, and may itself
/// call [`with_pool`] (which needs a mutable borrow) — holding the borrow
/// across the parallel region would panic on that re-entry.
pub fn parallel_rows(rows: usize, min_rows: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
    let over: Option<Arc<Pool>> = OVERRIDE.with(|ov| ov.borrow().last().cloned());
    match over {
        Some(pool) => parallel_rows_in(&pool, rows, min_rows, body),
        None => parallel_rows_in(global(), rows, min_rows, body),
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool. Sized by `MG_NUM_THREADS` if set, else
/// [`std::thread::available_parallelism`]; created on first use.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads =
            crate::parse_threads(std::env::var("MG_NUM_THREADS").ok().as_deref(), available);
        Pool::new(threads)
    })
}

thread_local! {
    static OVERRIDE: RefCell<Vec<Arc<Pool>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with `pool` as the ambient pool on this thread (nestable;
/// restored on exit). Lets tests and benchmarks sweep thread counts
/// without touching the environment.
pub fn with_pool<R>(pool: Arc<Pool>, f: impl FnOnce() -> R) -> R {
    OVERRIDE.with(|ov| ov.borrow_mut().push(pool));
    // Pop even on unwind so a panicking test doesn't poison the thread.
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|ov| {
                ov.borrow_mut().pop();
            });
        }
    }
    let _guard = Guard;
    f()
}

/// Parallelism degree of the ambient pool.
pub fn current_threads() -> usize {
    OVERRIDE.with(|ov| match ov.borrow().last() {
        Some(p) => p.threads(),
        None => global().threads(),
    })
}

/// A raw mutable pointer that may cross threads. Used by kernels to let
/// parallel chunks write *disjoint* regions of one output buffer; the
/// caller is responsible for disjointness (which [`parallel_rows_in`]
/// guarantees for row-partitioned writes).
#[derive(Clone, Copy)]
pub struct SendPtr<T>(*mut T);

// SAFETY: the pointer itself is plain data; dereferencing it is what
// requires care, and every dereference site is `unsafe` with a
// disjointness argument.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap a raw pointer.
    pub fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// The wrapped pointer.
    ///
    /// # Safety
    /// The caller must ensure all concurrent accesses through copies of
    /// this pointer target disjoint memory.
    #[inline]
    pub unsafe fn get(self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunk_bounds_partition_exactly() {
        for rows in [0usize, 1, 2, 7, 64, 1000] {
            for chunks in 1..=9usize {
                if rows == 0 {
                    continue;
                }
                let mut covered = vec![false; rows];
                let mut prev_end = 0;
                for i in 0..chunks {
                    let r = chunk_bounds(rows, chunks, i);
                    assert_eq!(r.start, prev_end, "contiguous at chunk {i}");
                    prev_end = r.end;
                    for j in r {
                        assert!(!covered[j], "row {j} covered twice");
                        covered[j] = true;
                    }
                }
                assert_eq!(prev_end, rows);
                assert!(covered.iter().all(|&c| c));
            }
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::new(1);
        assert!(!pool.is_parallel());
        let hits = AtomicUsize::new(0);
        pool.run(5, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn parallel_pool_executes_every_chunk_once() {
        let pool = Pool::new(4);
        let flags: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|i| {
            flags[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = Pool::new(3);
        for round in 1..=10usize {
            let sum = AtomicUsize::new(0);
            pool.run(round * 3, &|i| {
                sum.fetch_add(i + 1, Ordering::SeqCst);
            });
            let n = round * 3;
            assert_eq!(sum.load(Ordering::SeqCst), n * (n + 1) / 2);
        }
    }

    #[test]
    fn parallel_rows_covers_all_rows_disjointly() {
        let pool = Pool::new(4);
        let mut out = vec![0u8; 997];
        let ptr = SendPtr::new(out.as_mut_ptr());
        parallel_rows_in(&pool, 997, 8, &|range| {
            for i in range {
                // SAFETY: ranges from parallel_rows_in are disjoint.
                unsafe { *ptr.get().add(i) += 1 };
            }
        });
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        let outer = current_threads();
        with_pool(Arc::new(Pool::new(7)), || {
            assert_eq!(current_threads(), 7);
            with_pool(Arc::new(Pool::new(2)), || {
                assert_eq!(current_threads(), 2);
            });
            assert_eq!(current_threads(), 7);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn borrowed_state_is_visible_to_tasks() {
        // The lifetime-erasure path: tasks read a stack-local slice and
        // write a stack-local output through SendPtr.
        let pool = Pool::new(4);
        let input: Vec<usize> = (0..1000).collect();
        let mut output = vec![0usize; 1000];
        let out = SendPtr::new(output.as_mut_ptr());
        parallel_rows_in(&pool, input.len(), 1, &|range| {
            for i in range {
                // SAFETY: row ranges are disjoint.
                unsafe { *out.get().add(i) = input[i] * 2 };
            }
        });
        assert!(output.iter().enumerate().all(|(i, &v)| v == 2 * i));
    }

    #[test]
    fn with_pool_inside_a_task_body_does_not_panic() {
        // Regression: parallel_rows used to hold the override stack's
        // RefCell borrow across the kernel body, so any with_pool call
        // from a task on the calling thread double-borrowed and panicked.
        let pool = Arc::new(Pool::new(2));
        with_pool(pool, || {
            parallel_rows(8, 1, &|_range| {
                with_pool(Arc::new(Pool::new(1)), || {
                    assert_eq!(current_threads(), 1);
                });
            });
        });
    }

    #[test]
    fn concurrent_run_callers_are_serialised() {
        // Two threads hammering one pool: without job serialisation the
        // second caller's JobState reset loses the first job's chunks.
        let pool = Arc::new(Pool::new(3));
        std::thread::scope(|s| {
            for seed in 0..2usize {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for round in 0..200usize {
                        let n = 2 + (round + seed * 7) % 13;
                        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                        pool.run(n, &|c| {
                            hits[c].fetch_add(1, Ordering::SeqCst);
                        });
                        for (c, h) in hits.iter().enumerate() {
                            assert_eq!(
                                h.load(Ordering::SeqCst),
                                1,
                                "chunk {c} of round {round} (caller {seed})"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn dropping_a_pool_joins_workers() {
        for _ in 0..20 {
            let pool = Pool::new(3);
            pool.run(8, &|_| {});
            drop(pool); // must not hang or leak
        }
    }
}

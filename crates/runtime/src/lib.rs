//! # mg-runtime
//!
//! Std-only parallel execution substrate for the AdamGNN reproduction.
//!
//! Everything above this crate (tensor kernels, GNN layers, the full
//! training loop) funnels data-parallel work through two primitives:
//!
//! * [`Pool`] — a persistent "work-stealing-lite" thread pool: one shared
//!   chunk queue per parallel region, claimed by atomic increment under a
//!   mutex, with the calling thread participating as a worker. No
//!   external dependencies, no per-region thread spawning.
//! * [`parallel_rows`] — deterministic contiguous row-range partitioning.
//!   Every output row is computed wholly by one task, with the same
//!   per-row reduction order as the serial code, so parallel results are
//!   **bitwise identical** to serial results for any thread count.
//!
//! Thread count resolution, in order of precedence:
//! 1. a scoped override installed with [`with_pool`] (used by tests to
//!    sweep thread counts deterministically),
//! 2. the `MG_NUM_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one thread, every entry point degrades to a plain loop on the
//! calling thread — no workers are spawned, no locks are taken.
//!
//! The crate also hosts [`KernelStats`], a process-wide registry of call
//! counts and cumulative nanoseconds per kernel, dumpable as JSON (see
//! `DESIGN.md` for the schema).

mod pool;
mod stats;

pub use pool::{
    chunk_bounds, current_threads, global, parallel_rows, parallel_rows_in, with_pool, Pool,
    SendPtr,
};
pub use stats::{timed, KernelStats, OpStat};

/// Parse an `MG_NUM_THREADS`-style override.
///
/// `None`, empty, unparsable, or `0` fall back to `available`; anything
/// else is used as-is (values larger than the machine are allowed — the
/// partitioning stays deterministic regardless).
pub fn parse_threads(var: Option<&str>, available: usize) -> usize {
    match var.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => available.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_override_and_fallbacks() {
        assert_eq!(parse_threads(Some("4"), 8), 4);
        assert_eq!(parse_threads(Some(" 2 "), 8), 2);
        assert_eq!(parse_threads(Some("0"), 8), 8);
        assert_eq!(parse_threads(Some("nope"), 8), 8);
        assert_eq!(parse_threads(None, 8), 8);
        assert_eq!(parse_threads(None, 0), 1);
        assert_eq!(parse_threads(Some("16"), 1), 16);
    }
}

//! Concurrency stress tests for the shared pool.
//!
//! These are the tests CI runs under `MG_NUM_THREADS=4`: they exercise
//! the one configuration unit tests miss — several *caller* threads
//! sharing one pool, each submitting jobs while the others' jobs are in
//! flight. `Pool::run` serialises submissions internally; every chunk of
//! every job must still execute exactly once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mg_runtime::{current_threads, parallel_rows, with_pool, Pool, SendPtr};

/// Two threads submitting raw `run` jobs to one pool, with chunk counts
/// that differ per round so job boundaries never line up.
#[test]
fn two_threads_share_one_pool_without_losing_chunks() {
    let pool = Arc::new(Pool::new(4));
    std::thread::scope(|s| {
        for seed in 0..2usize {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                for round in 0..500usize {
                    let n = 2 + (round + seed * 11) % 17;
                    let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                    let sum = AtomicUsize::new(0);
                    pool.run(n, &|c| {
                        hits[c].fetch_add(1, Ordering::SeqCst);
                        sum.fetch_add(c + 1, Ordering::SeqCst);
                    });
                    for (c, h) in hits.iter().enumerate() {
                        assert_eq!(
                            h.load(Ordering::SeqCst),
                            1,
                            "chunk {c} of round {round} (caller {seed}) ran wrong number of times"
                        );
                    }
                    assert_eq!(sum.load(Ordering::SeqCst), n * (n + 1) / 2);
                }
            });
        }
    });
}

/// Two threads running `parallel_rows` kernels (the shape every tensor
/// kernel uses) against the same pool via thread-local overrides; each
/// caller's output buffer must be filled exactly once per row.
#[test]
fn concurrent_parallel_rows_fill_disjoint_buffers() {
    let pool = Arc::new(Pool::new(4));
    std::thread::scope(|s| {
        for seed in 0..2usize {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                with_pool(pool, || {
                    for round in 0..200usize {
                        let rows = 64 + (round + seed * 31) % 97;
                        let mut out = vec![0u32; rows];
                        let ptr = SendPtr::new(out.as_mut_ptr());
                        parallel_rows(rows, 1, &|range| {
                            for i in range {
                                // SAFETY: row ranges are disjoint.
                                unsafe { *ptr.get().add(i) += 1 };
                            }
                        });
                        assert!(
                            out.iter().all(|&v| v == 1),
                            "round {round} (caller {seed}): {out:?}"
                        );
                    }
                });
            });
        }
    });
}

/// A task body may install its own pool override on whichever thread it
/// runs on (regression for the `RefCell` double-borrow in
/// `parallel_rows`), including while another thread drives jobs.
#[test]
fn nested_overrides_inside_tasks_under_contention() {
    let pool = Arc::new(Pool::new(3));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                with_pool(pool, || {
                    for _ in 0..100 {
                        parallel_rows(16, 1, &|_range| {
                            with_pool(Arc::new(Pool::new(1)), || {
                                assert_eq!(current_threads(), 1);
                            });
                        });
                    }
                });
            });
        }
    });
}

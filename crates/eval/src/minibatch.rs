//! Sampled ego-subgraph minibatch trainers for the node-level tasks.
//!
//! Each optimizer step draws a batch of seed nodes (NC) or training
//! edges (LP), expands a fanout-bounded neighborhood with
//! [`mg_data::NeighborSampler`], gathers the sampled nodes' features
//! into a small dense matrix, and runs the full model — including
//! AdamGNN's fitness→pooling→flyback stack — on the induced subgraph.
//! The loss is restricted to the seed rows, so backward naturally
//! scatters gradients onto the *global* parameter matrices (AdamGNN has
//! no per-node parameters; everything is weight matrices shared across
//! nodes).
//!
//! Evaluation stays full-graph: validation/test metrics are computed by
//! a whole-graph eval-mode forward on the same fixture, which keeps the
//! minibatch numbers directly comparable to the full-batch trainers.
//! The million-node path ([`sampled_epoch_streamed`]) never builds a
//! full-graph context at all — it trains purely on sampled subgraphs
//! over a [`NodeFeatureSource`].
//!
//! Sampling draws from the same `StdRng` stream as everything else in
//! the epoch, so checkpoint/resume (which snapshots the RNG state at
//! epoch boundaries) replays the exact seed shuffles, fanout choices and
//! negative draws of an uninterrupted run.

use crate::metrics::{accuracy, pair_scores, roc_auc};
use crate::models::NodeModelKind;
use crate::node_tasks::{run_meta, RunResult, TrainConfig};
use crate::session::{self, CkptHooks};
use crate::trace::TrainTrace;
use adamgnn_core::{kl_loss, reconstruction_loss, total_loss};
use mg_ckpt::{CkptMeta, TrainState};
use mg_data::{LinkSplit, NeighborSampler, NodeDataset, NodeFeatureSource, SampledSubgraph, Split};
use mg_nn::GraphCtx;
use mg_obs::{SampleStepRecord, Stopwatch, Trace};
use mg_tensor::{AdamConfig, Matrix, MgError, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// Sampled-minibatch options, attached to a session with
/// [`crate::TrainSession::minibatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinibatchConfig {
    /// Seed nodes (NC) or training edges (LP) per optimizer step.
    pub batch_size: usize,
    /// Neighbors kept per node per hop; the length is the sampled
    /// receptive-field depth. `[12, 12]` matches a 2-level model.
    pub fanouts: Vec<usize>,
}

impl Default for MinibatchConfig {
    fn default() -> Self {
        MinibatchConfig {
            batch_size: 64,
            fanouts: vec![12, 12],
        }
    }
}

impl MinibatchConfig {
    /// Stable identity string, embedded in checkpoint metadata so a
    /// full-batch checkpoint cannot silently resume a sampled run (or
    /// vice versa, or across different sampling configurations).
    pub(crate) fn task_tag(&self, base: &str) -> String {
        let fans = self
            .fanouts
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("-");
        format!("{base}_minibatch/b{}/f{}", self.batch_size, fans)
    }
}

/// Deterministic in-place Fisher–Yates, drawing from the trainer RNG.
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Gather the sampled nodes' feature rows and labels into batch-local
/// arrays (row `l` of the matrix is global node `sub.nodes[l]`).
fn gather_batch(src: &dyn NodeFeatureSource, sub: &SampledSubgraph) -> (Matrix, Vec<usize>) {
    let d = src.feat_dim();
    let k = sub.nodes.len();
    let mut x = Matrix::zeros(k, d);
    let mut labels = Vec::with_capacity(k);
    for (l, &g) in sub.nodes.iter().enumerate() {
        src.fill_features(g, x.row_mut(l));
        labels.push(src.label(g));
    }
    (x, labels)
}

/// The sampled node-classification trainer behind
/// `TrainSession::minibatch`. Splits, model construction and metric
/// protocol are identical to the full-batch trainer; only the training
/// forward runs on sampled subgraphs.
pub(crate) fn node_classification_minibatch(
    kind: NodeModelKind,
    ds: &NodeDataset,
    cfg: &TrainConfig,
    mb: &MinibatchConfig,
    hooks: &CkptHooks<'_>,
) -> Result<(RunResult, TrainTrace), MgError> {
    if mb.batch_size == 0 || mb.fanouts.is_empty() {
        return Err(MgError::InvalidInput {
            detail: "minibatch needs batch_size >= 1 and at least one fanout".into(),
        });
    }
    let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
    let split = Split::random_80_10_10(ds.n(), cfg.seed ^ 0x5eed)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let model = kind.build(
        &mut store,
        ds.feat_dim(),
        cfg.hidden,
        ds.num_classes,
        cfg,
        &mut rng,
    );
    let adam = AdamConfig::with_lr(cfg.lr);
    let weights = cfg.weights;
    let mut sampler = NeighborSampler::new(ds.n());

    let meta = CkptMeta {
        task: mb.task_tag("node_classification"),
        model: kind.name().into(),
        dataset: ds.name.clone(),
        in_dim: ds.feat_dim(),
        out_dim: ds.num_classes,
        n_nodes: ds.n(),
    };
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0;
    let mut bad_epochs = 0;
    let mut epochs_run = 0;
    let mut trace = TrainTrace::new();
    let mut start_epoch = 0;
    if let Some(ck) = hooks.resume {
        session::check_resume(ck, &meta, cfg)?;
        store.import_state(&ck.params, ck.adam_t)?;
        rng = StdRng::from_state(ck.rng);
        best_val = ck.state.best_val;
        best_test = ck.state.best_test;
        bad_epochs = ck.state.bad_epochs;
        epochs_run = ck.state.epochs_run;
        start_epoch = if bad_epochs >= cfg.patience {
            cfg.epochs
        } else {
            ck.state.next_epoch
        };
        trace = session::restored_trace(ck);
    }

    let mut obs = Trace::from_env("node_classification");
    obs.run_start(&run_meta(kind, ds, cfg));

    for epoch in start_epoch..cfg.epochs {
        epochs_run = epoch + 1;
        let sw = Stopwatch::start();
        // shuffle a fresh clone so the epoch's batch order is a function
        // of the RNG position alone — a resumed run (which restores the
        // RNG but not the previous epoch's permutation) then replays the
        // uninterrupted run's batches exactly
        let mut order = split.train.clone();
        shuffle(&mut order, &mut rng);
        let mut loss_sum = 0.0;
        let mut steps = 0usize;
        let mut peak_tape = 0u64;
        for (step, seeds) in order.chunks(mb.batch_size).enumerate() {
            let sub = sampler.sample(&ds.graph, seeds, &mb.fanouts, &mut rng);
            let (sub_x, sub_labels) = gather_batch(ds, &sub);
            let sub_ctx = GraphCtx::new(sub.topo.clone(), sub_x);
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (logits, internals) = model.forward(&tape, &bind, &sub_ctx, true, &mut rng);
            let seed_locals: Vec<usize> = sub.seed_locals().collect();
            let task = tape.cross_entropy(logits, Rc::new(sub_labels), Rc::new(seed_locals));
            let mut loss = match &internals {
                Some(out) => {
                    let kl = if weights.gamma != 0.0 {
                        kl_loss(&tape, out.h, &out.egos_l1)
                    } else {
                        tape.constant(Matrix::zeros(1, 1))
                    };
                    let recon = if weights.delta != 0.0 {
                        reconstruction_loss(&tape, out.h, &sub_ctx.graph, &mut rng)
                    } else {
                        tape.constant(Matrix::zeros(1, 1))
                    };
                    total_loss(&tape, task, kl, recon, &weights)
                }
                None => task,
            };
            // operator-specific auxiliary term (None for the default
            // operator, keeping the historical composition unchanged)
            if let Some(aux) = internals.as_ref().and_then(|o| o.aux) {
                loss = tape.add(loss, aux);
            }
            let loss_value = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &adam);
            loss_sum += loss_value;
            steps += 1;
            peak_tape = peak_tape.max(tape.peak_tape_bytes() as u64);
            if obs.enabled() {
                obs.sample_step(&SampleStepRecord {
                    epoch,
                    step,
                    seeds: sub.num_seeds,
                    sampled_nodes: sub.nodes.len(),
                    sampled_edges: sub.topo.num_edges(),
                    truncated: sub.truncated,
                    loss: loss_value,
                });
            }
        }
        let train_loss = loss_sum / steps.max(1) as f64;
        let train_ns = sw.elapsed_ns();
        // full-graph evaluation, as in the full-batch trainer
        let sw = Stopwatch::start();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (logits, _) = model.forward(&tape, &bind, &ctx, false, &mut rng);
        let lv = tape.value_cloned(logits);
        let val = accuracy(&lv, &ds.labels, &split.val);
        let eval_ns = sw.elapsed_ns();
        trace.push(epoch, train_loss, val);
        if obs.enabled() {
            obs.epoch(&mg_obs::EpochRecord {
                epoch,
                loss_total: train_loss,
                loss_task: None,
                loss_kl: None,
                loss_recon: None,
                val_metric: Some(val),
                train_ns,
                eval_ns,
                grad_norms: vec![],
                beta: None,
                level_sizes: vec![],
                peak_tape_bytes: peak_tape,
            });
        }
        let mut stop = false;
        if val > best_val {
            best_val = val;
            best_test = accuracy(&lv, &ds.labels, &split.test);
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
            if bad_epochs >= cfg.patience {
                stop = true;
            }
        }
        if hooks.due(epoch + 1, stop || epoch + 1 == cfg.epochs) {
            session::write_checkpoint(
                hooks.path.expect("due() implies a destination"),
                &meta,
                cfg,
                TrainState {
                    next_epoch: epoch + 1,
                    epochs_run,
                    best_val,
                    best_test,
                    bad_epochs,
                },
                &store,
                &rng,
                &trace,
                &[],
                // the pooling structure is per-subgraph and resampled
                // every step; there is no single structure to pin
                None,
            )?;
        }
        if stop {
            break;
        }
    }
    crate::maybe_dump_kernel_stats("node_classification");
    obs.kernel_stats();
    obs.run_end(epochs_run, Some(best_val), Some(best_test));
    Ok((
        RunResult {
            test_metric: best_test,
            val_metric: best_val,
            epochs_run,
        },
        trace,
    ))
}

/// The sampled link-prediction trainer: each step takes a batch of
/// training edges, seeds the sampler with their endpoints, scores the
/// batch's positive pairs plus an equal number of sampled non-edges
/// inside the subgraph, and steps on the BCE (+ γ·KL for AdamGNN).
pub(crate) fn link_prediction_minibatch(
    kind: NodeModelKind,
    ds: &NodeDataset,
    cfg: &TrainConfig,
    mb: &MinibatchConfig,
    hooks: &CkptHooks<'_>,
) -> Result<(RunResult, TrainTrace), MgError> {
    if mb.batch_size == 0 || mb.fanouts.is_empty() {
        return Err(MgError::InvalidInput {
            detail: "minibatch needs batch_size >= 1 and at least one fanout".into(),
        });
    }
    let link = LinkSplit::new(&ds.graph, cfg.seed ^ 0x11bb)?;
    let ctx = GraphCtx::new(link.train_graph.clone(), ds.features.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let embed_dim = cfg.hidden;
    let model = kind.build(
        &mut store,
        ds.feat_dim(),
        cfg.hidden,
        embed_dim,
        cfg,
        &mut rng,
    );
    let adam = AdamConfig::with_lr(cfg.lr);
    let weights = cfg.weights;
    let mut sampler = NeighborSampler::new(ds.n());

    let meta = CkptMeta {
        task: mb.task_tag("link_prediction"),
        model: kind.name().into(),
        dataset: ds.name.clone(),
        in_dim: ds.feat_dim(),
        out_dim: embed_dim,
        n_nodes: ds.n(),
    };
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0;
    let mut bad_epochs = 0;
    let mut epochs_run = 0;
    let mut trace = TrainTrace::new();
    let mut start_epoch = 0;
    if let Some(ck) = hooks.resume {
        session::check_resume(ck, &meta, cfg)?;
        store.import_state(&ck.params, ck.adam_t)?;
        rng = StdRng::from_state(ck.rng);
        best_val = ck.state.best_val;
        best_test = ck.state.best_test;
        bad_epochs = ck.state.bad_epochs;
        epochs_run = ck.state.epochs_run;
        start_epoch = if bad_epochs >= cfg.patience {
            cfg.epochs
        } else {
            ck.state.next_epoch
        };
        trace = session::restored_trace(ck);
    }

    let mut obs = Trace::from_env("link_prediction");
    obs.run_start(&run_meta(kind, ds, cfg));

    for epoch in start_epoch..cfg.epochs {
        epochs_run = epoch + 1;
        let sw = Stopwatch::start();
        // fresh clone per epoch: batch order must be a function of the
        // RNG position alone so resume replays it (see the NC trainer)
        let mut order = link.train_pos.clone();
        shuffle(&mut order, &mut rng);
        let mut loss_sum = 0.0;
        let mut steps = 0usize;
        let mut peak_tape = 0u64;
        for (step, batch) in order.chunks(mb.batch_size).enumerate() {
            let mut seeds = Vec::with_capacity(batch.len() * 2);
            for &(u, v) in batch {
                seeds.push(u);
                seeds.push(v);
            }
            let sub = sampler.sample(&link.train_graph, &seeds, &mb.fanouts, &mut rng);
            // endpoints are seeds, so they occupy the remap's prefix:
            // recover each one's local id from the prefix positions
            let mut local: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for l in sub.seed_locals() {
                local.insert(sub.nodes[l], l);
            }
            let (sub_x, _) = gather_batch(ds, &sub);
            let sub_ctx = GraphCtx::new(sub.topo.clone(), sub_x);
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (h, internals) = model.forward(&tape, &bind, &sub_ctx, true, &mut rng);
            let mut pairs: Vec<(usize, usize)> =
                batch.iter().map(|&(u, v)| (local[&u], local[&v])).collect();
            let mut labels = vec![1.0; pairs.len()];
            // negatives: random local pairs whose global endpoints are
            // non-adjacent in the *full* graph (same criterion as the
            // full-batch trainer)
            let k = sub.nodes.len();
            let mut added = 0;
            let mut guard = 0;
            while added < batch.len() && guard < 200 * batch.len() {
                guard += 1;
                let lu = rng.random_range(0..k);
                let lv = rng.random_range(0..k);
                if lu != lv && !ds.graph.has_edge(sub.nodes[lu], sub.nodes[lv]) {
                    pairs.push((lu, lv));
                    labels.push(0.0);
                    added += 1;
                }
            }
            let task = tape.bce_pairs(h, Rc::new(pairs), Rc::new(labels));
            let mut loss = match &internals {
                Some(out) if weights.gamma != 0.0 => {
                    let kl = kl_loss(&tape, out.h, &out.egos_l1);
                    tape.add(task, tape.scale(kl, weights.gamma))
                }
                _ => task,
            };
            // operator-specific auxiliary term (None for the default
            // operator, keeping the historical composition unchanged)
            if let Some(aux) = internals.as_ref().and_then(|o| o.aux) {
                loss = tape.add(loss, aux);
            }
            let loss_value = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &adam);
            loss_sum += loss_value;
            steps += 1;
            peak_tape = peak_tape.max(tape.peak_tape_bytes() as u64);
            if obs.enabled() {
                obs.sample_step(&SampleStepRecord {
                    epoch,
                    step,
                    seeds: sub.num_seeds,
                    sampled_nodes: sub.nodes.len(),
                    sampled_edges: sub.topo.num_edges(),
                    truncated: sub.truncated,
                    loss: loss_value,
                });
            }
        }
        let train_loss = loss_sum / steps.max(1) as f64;
        let train_ns = sw.elapsed_ns();
        let sw = Stopwatch::start();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (h, _) = model.forward(&tape, &bind, &ctx, false, &mut rng);
        let hv = tape.value_cloned(h);
        let val = roc_auc(
            &pair_scores(&hv, &link.val_pos),
            &pair_scores(&hv, &link.val_neg),
        );
        let eval_ns = sw.elapsed_ns();
        trace.push(epoch, train_loss, val);
        if obs.enabled() {
            obs.epoch(&mg_obs::EpochRecord {
                epoch,
                loss_total: train_loss,
                loss_task: None,
                loss_kl: None,
                loss_recon: None,
                val_metric: Some(val),
                train_ns,
                eval_ns,
                grad_norms: vec![],
                beta: None,
                level_sizes: vec![],
                peak_tape_bytes: peak_tape,
            });
        }
        let mut stop = false;
        if val > best_val {
            best_val = val;
            best_test = roc_auc(
                &pair_scores(&hv, &link.test_pos),
                &pair_scores(&hv, &link.test_neg),
            );
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
            if bad_epochs >= cfg.patience {
                stop = true;
            }
        }
        if hooks.due(epoch + 1, stop || epoch + 1 == cfg.epochs) {
            session::write_checkpoint(
                hooks.path.expect("due() implies a destination"),
                &meta,
                cfg,
                TrainState {
                    next_epoch: epoch + 1,
                    epochs_run,
                    best_val,
                    best_test,
                    bad_epochs,
                },
                &store,
                &rng,
                &trace,
                &[],
                None,
            )?;
        }
        if stop {
            break;
        }
    }
    crate::maybe_dump_kernel_stats("link_prediction");
    obs.kernel_stats();
    obs.run_end(epochs_run, Some(best_val), Some(best_test));
    Ok((
        RunResult {
            test_metric: best_test,
            val_metric: best_val,
            epochs_run,
        },
        trace,
    ))
}

/// Result of one streamed sampled epoch over a [`NodeFeatureSource`].
#[derive(Clone, Copy, Debug)]
pub struct StreamedEpoch {
    /// Mean composite loss over the epoch's steps.
    pub mean_loss: f64,
    /// Optimizer steps taken.
    pub steps: usize,
    /// Total nodes sampled across all steps.
    pub sampled_nodes: usize,
    /// Total fanout truncation events.
    pub truncated: usize,
}

/// Run sampled node-classification training epochs directly over a
/// [`NodeFeatureSource`] — the million-node path. Unlike the fixture
/// trainers this never builds a full-graph [`GraphCtx`] (whose
/// precomputed normalizations and dense feature matrix are exactly the
/// O(n)+O(m) materializations minibatching exists to avoid); every
/// matrix it touches is batch-sized. `seeds_per_epoch` nodes are drawn
/// uniformly per epoch, in batches of `mb.batch_size`.
pub fn sampled_epochs_streamed(
    src: &dyn NodeFeatureSource,
    kind: NodeModelKind,
    cfg: &TrainConfig,
    mb: &MinibatchConfig,
    seeds_per_epoch: usize,
) -> Result<StreamedEpoch, MgError> {
    if mb.batch_size == 0 || mb.fanouts.is_empty() || seeds_per_epoch == 0 {
        return Err(MgError::InvalidInput {
            detail: "streamed sampling needs batch_size, fanouts and seeds_per_epoch >= 1".into(),
        });
    }
    let n = src.n();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let model = kind.build(
        &mut store,
        src.feat_dim(),
        cfg.hidden,
        src.num_classes(),
        cfg,
        &mut rng,
    );
    let adam = AdamConfig::with_lr(cfg.lr);
    let weights = cfg.weights;
    let mut sampler = NeighborSampler::new(n);
    let mut loss_sum = 0.0;
    let mut steps = 0usize;
    let mut sampled_nodes = 0usize;
    let mut truncated = 0usize;
    for _ in 0..cfg.epochs {
        let mut remaining = seeds_per_epoch;
        while remaining > 0 {
            let take = remaining.min(mb.batch_size);
            remaining -= take;
            let seeds: Vec<usize> = (0..take).map(|_| rng.random_range(0..n)).collect();
            let sub = sampler.sample(src.graph(), &seeds, &mb.fanouts, &mut rng);
            let (sub_x, sub_labels) = gather_batch(src, &sub);
            let sub_ctx = GraphCtx::new(sub.topo.clone(), sub_x);
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (logits, internals) = model.forward(&tape, &bind, &sub_ctx, true, &mut rng);
            let seed_locals: Vec<usize> = sub.seed_locals().collect();
            let task = tape.cross_entropy(logits, Rc::new(sub_labels), Rc::new(seed_locals));
            let mut loss = match &internals {
                Some(out) => {
                    let kl = if weights.gamma != 0.0 {
                        kl_loss(&tape, out.h, &out.egos_l1)
                    } else {
                        tape.constant(Matrix::zeros(1, 1))
                    };
                    let recon = if weights.delta != 0.0 {
                        reconstruction_loss(&tape, out.h, &sub_ctx.graph, &mut rng)
                    } else {
                        tape.constant(Matrix::zeros(1, 1))
                    };
                    total_loss(&tape, task, kl, recon, &weights)
                }
                None => task,
            };
            // operator-specific auxiliary term (None for the default
            // operator, keeping the historical composition unchanged)
            if let Some(aux) = internals.as_ref().and_then(|o| o.aux) {
                loss = tape.add(loss, aux);
            }
            let loss_value = tape.value(loss).scalar();
            if !loss_value.is_finite() {
                return Err(MgError::InvalidInput {
                    detail: format!("non-finite sampled loss at step {steps}; lower lr or fanouts"),
                });
            }
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &adam);
            loss_sum += loss_value;
            steps += 1;
            sampled_nodes += sub.nodes.len();
            truncated += sub.truncated;
        }
    }
    Ok(StreamedEpoch {
        mean_loss: loss_sum / steps as f64,
        steps,
        sampled_nodes,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionKind, TrainSession};
    use mg_data::{make_node_dataset, BigGraph, BigGraphConfig, NodeDatasetKind, NodeGenConfig};

    fn tiny_ds() -> NodeDataset {
        make_node_dataset(
            NodeDatasetKind::Cora,
            &NodeGenConfig {
                scale: 0.08,
                max_feat_dim: 48,
                seed: 11,
            },
        )
    }

    fn fast_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 12,
            lr: 0.02,
            patience: 12,
            hidden: 16,
            levels: 2,
            seed: 1,
            ..Default::default()
        }
    }

    fn small_mb() -> MinibatchConfig {
        MinibatchConfig {
            batch_size: 32,
            fanouts: vec![8, 8],
        }
    }

    #[test]
    fn sampled_nc_beats_chance() {
        let ds = tiny_ds();
        let res = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::Gcn),
            &fast_cfg(),
        )
        .minibatch(small_mb())
        .run(&ds)
        .unwrap();
        let chance = 1.0 / ds.num_classes as f64;
        assert!(res.test_metric > chance + 0.1, "acc = {}", res.test_metric);
        assert_eq!(res.trace.len(), res.epochs_run);
    }

    #[test]
    fn sampled_adamgnn_nc_runs() {
        let ds = tiny_ds();
        let res = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &fast_cfg(),
        )
        .minibatch(small_mb())
        .run(&ds)
        .unwrap();
        let chance = 1.0 / ds.num_classes as f64;
        assert!(res.test_metric > chance, "acc = {}", res.test_metric);
    }

    #[test]
    fn sampled_lp_beats_chance() {
        let ds = tiny_ds();
        let res = TrainSession::new(SessionKind::LinkPrediction(NodeModelKind::Gcn), &fast_cfg())
            .minibatch(small_mb())
            .run(&ds)
            .unwrap();
        assert!(res.test_metric > 0.55, "auc = {}", res.test_metric);
    }

    #[test]
    fn minibatch_is_deterministic() {
        let ds = tiny_ds();
        let run = || {
            TrainSession::new(
                SessionKind::NodeClassification(NodeModelKind::Gcn),
                &fast_cfg(),
            )
            .minibatch(small_mb())
            .run(&ds)
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.test_metric.to_bits(), b.test_metric.to_bits());
        assert_eq!(
            a.val_metric.unwrap().to_bits(),
            b.val_metric.unwrap().to_bits()
        );
    }

    #[test]
    fn minibatch_rejects_graph_tasks_and_bad_config() {
        let ds = tiny_ds();
        let err = TrainSession::new(SessionKind::NodeClustering(NodeModelKind::Gcn), &fast_cfg())
            .minibatch(small_mb())
            .run(&ds);
        assert!(matches!(err, Err(MgError::InvalidInput { .. })));
        let err = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::Gcn),
            &fast_cfg(),
        )
        .minibatch(MinibatchConfig {
            batch_size: 0,
            fanouts: vec![4],
        })
        .run(&ds);
        assert!(matches!(err, Err(MgError::InvalidInput { .. })));
    }

    #[test]
    fn checkpoint_resume_replays_sampled_run_bitwise() {
        let ds = tiny_ds();
        let dir = std::env::temp_dir().join("mg_minibatch_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sampled.mgck");
        let cfg = fast_cfg();
        // uninterrupted reference
        let full = TrainSession::new(SessionKind::NodeClassification(NodeModelKind::Gcn), &cfg)
            .minibatch(small_mb())
            .run(&ds)
            .unwrap();
        // interrupted run: stop at epoch 6, checkpoint, resume
        let short_cfg = TrainConfig { epochs: 6, ..cfg };
        TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::Gcn),
            &short_cfg,
        )
        .minibatch(small_mb())
        .checkpoint_to(&path)
        .run(&ds)
        .unwrap();
        let resumed = TrainSession::new(SessionKind::NodeClassification(NodeModelKind::Gcn), &cfg)
            .minibatch(small_mb())
            .resume_from(&path)
            .run(&ds)
            .unwrap();
        assert_eq!(full.test_metric.to_bits(), resumed.test_metric.to_bits());
        assert_eq!(
            full.val_metric.unwrap().to_bits(),
            resumed.val_metric.unwrap().to_bits()
        );
        assert_eq!(full.epochs_run, resumed.epochs_run);
        // trace prefix + continuation must equal the uninterrupted trace
        assert_eq!(full.trace.records.len(), resumed.trace.records.len());
        for (a, b) in full.trace.records.iter().zip(resumed.trace.records.iter()) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits());
            assert_eq!(a.val.to_bits(), b.val.to_bits());
        }
        // a full-batch checkpoint must not resume a sampled run
        let fb_path = dir.join("fullbatch.mgck");
        TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::Gcn),
            &short_cfg,
        )
        .checkpoint_to(&fb_path)
        .run(&ds)
        .unwrap();
        let err = TrainSession::new(SessionKind::NodeClassification(NodeModelKind::Gcn), &cfg)
            .minibatch(small_mb())
            .resume_from(&fb_path)
            .run(&ds);
        assert!(matches!(err, Err(MgError::Mismatch { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_epoch_trains_without_full_ctx() {
        let big = BigGraph::generate(&BigGraphConfig {
            n: 5000,
            classes: 5,
            avg_degree: 8,
            feat_dim: 20,
            seed: 3,
            byte_budget: 8 << 20,
        });
        let cfg = TrainConfig {
            epochs: 2,
            lr: 0.02,
            hidden: 16,
            levels: 2,
            seed: 2,
            ..Default::default()
        };
        let mb = MinibatchConfig {
            batch_size: 64,
            fanouts: vec![6, 6],
        };
        let out = sampled_epochs_streamed(&big, NodeModelKind::Gcn, &cfg, &mb, 256).unwrap();
        assert_eq!(out.steps, 8); // 2 epochs x ceil(256/64)
        assert!(out.mean_loss.is_finite() && out.mean_loss > 0.0);
        assert!(out.sampled_nodes > 0);
    }
}

//! Collection helpers between the trainers and the mg-obs trace sink.
//!
//! Everything here is *read-only observation*: helpers read tape values
//! that the training step already computed and gradients that backward
//! already produced, and never draw from an RNG — so a traced run is
//! bit-identical to an untraced one (pinned by the mg-verify golden
//! suite). Call sites gate collection on `Trace::enabled()` so disabled
//! runs skip the work entirely.

use adamgnn_core::AdamGnnOutput;
use mg_obs::BetaStats;
use mg_tensor::{Binding, Gradients, ParamStore, Tape, Var};

/// The telemetry of one training step, harvested between `backward` and
/// the optimiser step (gradients are consumed by `ParamStore::step`).
pub(crate) struct StepObs {
    pub loss_task: Option<f64>,
    pub loss_kl: Option<f64>,
    pub loss_recon: Option<f64>,
    pub grad_norms: Vec<(String, f64)>,
    pub beta: Option<BetaStats>,
    pub level_sizes: Vec<usize>,
    /// High-water mark of live tape bytes for this step's tape —
    /// retained runs see the full forward footprint, checkpointed runs
    /// the reduced one (see `Tape::peak_tape_bytes`).
    pub peak_tape_bytes: u64,
}

/// L2 norm per parameter tensor, in registration order. Parameters the
/// backward pass never reached are reported with norm 0 (lazy-gradient
/// semantics: the optimiser leaves them untouched too).
pub(crate) fn grad_norms(
    store: &ParamStore,
    bind: &Binding,
    grads: &Gradients,
) -> Vec<(String, f64)> {
    store
        .param_ids()
        .into_iter()
        .map(|id| {
            let norm = grads
                .get(bind.var(id))
                .map(|g| g.data().iter().map(|x| x * x).sum::<f64>().sqrt())
                .unwrap_or(0.0);
            (store.name(id).to_string(), norm)
        })
        .collect()
}

/// The composite objective's term variables, where the trainer built
/// them (`None` for models or configurations without that term).
#[derive(Clone, Copy, Default)]
pub(crate) struct LossTerms {
    pub task: Option<Var>,
    pub kl: Option<Var>,
    pub recon: Option<Var>,
}

/// Harvest one step's telemetry. `terms` holds the objective's term
/// variables; `internals` is AdamGNN's forward output when the model
/// exposes one.
pub(crate) fn collect_step(
    tape: &Tape,
    store: &ParamStore,
    bind: &Binding,
    grads: &Gradients,
    terms: LossTerms,
    internals: Option<&AdamGnnOutput>,
) -> StepObs {
    let LossTerms { task, kl, recon } = terms;
    let scalar = |v: Var| tape.value(v).scalar();
    let beta = internals.and_then(|out| out.beta).map(|b| {
        let m = tape.value(b);
        BetaStats::from_flat(m.data(), m.shape().1)
    });
    let level_sizes = internals
        .map(|out| out.levels.iter().map(|l| l.size).collect())
        .unwrap_or_default();
    StepObs {
        loss_task: task.map(scalar),
        loss_kl: kl.map(scalar),
        loss_recon: recon.map(scalar),
        grad_norms: grad_norms(store, bind, grads),
        beta,
        level_sizes,
        peak_tape_bytes: tape.peak_tape_bytes() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_tensor::Matrix;

    #[test]
    fn grad_norms_cover_all_params_in_order() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        store.add("unused", Matrix::zeros(1, 1));
        let tape = Tape::new();
        let bind = store.bind(&tape);
        // loss = sum(3 * w): dL/dw = [3, 3], unused never reached
        let loss = tape.sum_all(tape.scale(bind.var(w), 3.0));
        let grads = tape.backward(loss);
        let norms = grad_norms(&store, &bind, &grads);
        assert_eq!(norms.len(), 2);
        assert_eq!(norms[0].0, "w");
        assert!((norms[0].1 - (18.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(norms[1], ("unused".to_string(), 0.0));
    }

    #[test]
    fn collect_step_reads_term_values() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 1, 2.0));
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let task = tape.sum_all(bind.var(w));
        let grads = tape.backward(task);
        let terms = LossTerms {
            task: Some(task),
            ..Default::default()
        };
        let obs = collect_step(&tape, &store, &bind, &grads, terms, None);
        assert_eq!(obs.loss_task, Some(2.0));
        assert_eq!(obs.loss_kl, None);
        assert_eq!(obs.loss_recon, None);
        assert!(obs.beta.is_none());
        assert!(obs.level_sizes.is_empty());
        assert_eq!(obs.grad_norms, vec![("w".to_string(), 1.0)]);
        assert!(obs.peak_tape_bytes > 0, "tape held at least the leaf");
    }
}

//! Plain-text result tables matching the paper's layout.

/// A simple aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with two decimals (paper style).
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Format an AUC with three decimals (paper style).
pub fn auc(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Model", "Acc"]);
        t.row(vec!["GCN".into(), "92.25".into()]);
        t.row(vec!["AdamGNN".into(), "93.61".into()]);
        let s = t.render();
        assert!(s.contains("Model"));
        assert!(s.lines().count() == 4);
        // columns aligned: every line has "  " after the widest model name
        assert!(s.contains("AdamGNN  93.61"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = TextTable::new(&["A", "B"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9361), "93.61");
        assert_eq!(auc(0.9481), "0.948");
    }
}

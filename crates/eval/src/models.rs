//! Model registry: build any evaluated model by name, for both task
//! families. Keeps the bench binaries declarative.

use crate::node_tasks::TrainConfig;
use adamgnn_core::{AdamGnnConfig, AdamGnnGc, AdamGnnNode, AdamGnnOutput, FrozenStructure};
use mg_nn::{
    DenseFlavor, DensePoolGc, GatNet, GcnNet, GinGc, GinNet, GraphClassifier, GraphCtx, GraphUNet,
    NodeEncoder, SageNet, SortPoolGc, ThreeWlGc, TopKFlavor, TopKGc,
};
use mg_tensor::{Binding, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// The node-task models of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeModelKind {
    Gcn,
    GraphSage,
    Gat,
    Gin,
    TopKPool,
    AdamGnn,
}

impl NodeModelKind {
    /// All six, in Table 2 row order.
    pub fn all() -> [NodeModelKind; 6] {
        use NodeModelKind::*;
        [Gcn, GraphSage, Gat, Gin, TopKPool, AdamGnn]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            NodeModelKind::Gcn => "GCN",
            NodeModelKind::GraphSage => "GraphSAGE",
            NodeModelKind::Gat => "GAT",
            NodeModelKind::Gin => "GIN",
            NodeModelKind::TopKPool => "TOPKPOOL",
            NodeModelKind::AdamGnn => "AdamGNN",
        }
    }

    /// Inverse of [`NodeModelKind::name`], used to rebuild a model from
    /// a checkpoint's recorded identity.
    pub fn from_name(name: &str) -> Option<NodeModelKind> {
        NodeModelKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Instantiate with parameters registered in `store`.
    pub fn build(
        &self,
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        cfg: &TrainConfig,
        rng: &mut StdRng,
    ) -> AnyNodeModel {
        let levels = cfg.levels;
        match self {
            NodeModelKind::Gcn => {
                AnyNodeModel::Plain(Box::new(GcnNet::new(store, in_dim, hidden, out_dim, rng)))
            }
            NodeModelKind::GraphSage => {
                AnyNodeModel::Plain(Box::new(SageNet::new(store, in_dim, hidden, out_dim, rng)))
            }
            NodeModelKind::Gat => {
                AnyNodeModel::Plain(Box::new(GatNet::new(store, in_dim, hidden, out_dim, rng)))
            }
            NodeModelKind::Gin => {
                AnyNodeModel::Plain(Box::new(GinNet::new(store, in_dim, hidden, out_dim, rng)))
            }
            NodeModelKind::TopKPool => AnyNodeModel::Plain(Box::new(GraphUNet::new(
                store, in_dim, hidden, out_dim, 0.5, rng,
            ))),
            NodeModelKind::AdamGnn => {
                let mut mcfg = AdamGnnConfig::new(in_dim, hidden, levels);
                mcfg.flyback = cfg.flyback;
                mcfg.pooling = cfg.pooling;
                AnyNodeModel::Adam(Box::new(AdamGnnNode::new(store, mcfg, out_dim, rng)))
            }
        }
    }
}

/// A constructed node-task model; AdamGNN is special-cased because its
/// composite loss needs the forward internals.
pub enum AnyNodeModel {
    Plain(Box<dyn NodeEncoder>),
    Adam(Box<AdamGnnNode>),
}

impl AnyNodeModel {
    /// Forward: task output plus AdamGNN internals when applicable.
    pub fn forward(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        train: bool,
        rng: &mut StdRng,
    ) -> (Var, Option<AdamGnnOutput>) {
        match self {
            AnyNodeModel::Plain(m) => (m.encode(tape, bind, ctx, train, rng), None),
            AnyNodeModel::Adam(m) => {
                let (out, internals) = m.forward_full(tape, bind, ctx, train, rng);
                (out, Some(internals))
            }
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            AnyNodeModel::Plain(m) => m.name(),
            AnyNodeModel::Adam(_) => "AdamGNN",
        }
    }

    /// Record the pooling structure an eval-mode forward would build on
    /// `ctx`, for pinning into a checkpoint. Flat baselines have no
    /// structure. The recording pass draws nothing from the training RNG
    /// stream (eval-mode AdamGNN forwards are deterministic), so calling
    /// this is a pure observation.
    pub fn record_structure(&self, store: &ParamStore, ctx: &GraphCtx) -> Option<FrozenStructure> {
        match self {
            AnyNodeModel::Plain(_) => None,
            AnyNodeModel::Adam(m) => {
                let tape = Tape::new();
                let bind = store.bind_frozen(&tape);
                let (_, _, frozen) = m.forward_full_recorded(&tape, &bind, ctx);
                Some(frozen)
            }
        }
    }

    /// Forward that replays a pinned pooling structure instead of
    /// re-deriving one. Falls back to a plain eval forward for flat
    /// baselines (which have no structure to replay).
    pub fn forward_frozen(
        &self,
        tape: &Tape,
        bind: &Binding,
        ctx: &GraphCtx,
        structure: Option<&FrozenStructure>,
        rng: &mut StdRng,
    ) -> Var {
        match (self, structure) {
            (AnyNodeModel::Adam(m), Some(frozen)) => {
                let (out, _) = m.forward_full_frozen(tape, bind, ctx, frozen);
                out
            }
            _ => self.forward(tape, bind, ctx, false, rng).0,
        }
    }
}

/// The graph-classification models of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphModelKind {
    Gin,
    ThreeWl,
    SortPool,
    DiffPool,
    TopKPool,
    SagPool,
    StructPool,
    AdamGnn,
}

impl GraphModelKind {
    /// All eight, in Table 1 row order.
    pub fn all() -> [GraphModelKind; 8] {
        use GraphModelKind::*;
        [
            Gin, ThreeWl, SortPool, DiffPool, TopKPool, SagPool, StructPool, AdamGnn,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GraphModelKind::Gin => "GIN",
            GraphModelKind::ThreeWl => "3WL-GNN",
            GraphModelKind::SortPool => "SORTPOOL",
            GraphModelKind::DiffPool => "DIFFPOOL",
            GraphModelKind::TopKPool => "TOPKPOOL",
            GraphModelKind::SagPool => "SAGPOOL",
            GraphModelKind::StructPool => "STRUCTPOOL",
            GraphModelKind::AdamGnn => "AdamGNN",
        }
    }

    /// Inverse of [`GraphModelKind::name`], used to rebuild a model from
    /// a checkpoint's recorded identity.
    pub fn from_name(name: &str) -> Option<GraphModelKind> {
        GraphModelKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Instantiate with parameters registered in `store`.
    pub fn build(
        &self,
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        cfg: &TrainConfig,
        rng: &mut StdRng,
    ) -> Box<dyn GraphClassifier> {
        let levels = cfg.levels;
        match self {
            GraphModelKind::Gin => Box::new(GinGc::new(store, in_dim, hidden, classes, rng)),
            GraphModelKind::ThreeWl => {
                // PPGN blocks are dense n x n per channel; a narrow channel
                // budget keeps the baseline tractable, as in the original.
                Box::new(ThreeWlGc::new(
                    store,
                    in_dim,
                    (hidden / 4).max(4),
                    classes,
                    rng,
                ))
            }
            GraphModelKind::SortPool => {
                Box::new(SortPoolGc::new(store, in_dim, hidden, classes, 10, rng))
            }
            GraphModelKind::DiffPool => Box::new(DensePoolGc::new(
                store,
                DenseFlavor::DiffPool,
                in_dim,
                hidden,
                classes,
                10,
                rng,
            )),
            GraphModelKind::TopKPool => Box::new(TopKGc::new(
                store,
                TopKFlavor::TopK,
                in_dim,
                hidden,
                classes,
                levels,
                0.5,
                rng,
            )),
            GraphModelKind::SagPool => Box::new(TopKGc::new(
                store,
                TopKFlavor::SagPool,
                in_dim,
                hidden,
                classes,
                levels,
                0.5,
                rng,
            )),
            GraphModelKind::StructPool => Box::new(DensePoolGc::new(
                store,
                DenseFlavor::StructPool,
                in_dim,
                hidden,
                classes,
                10,
                rng,
            )),
            GraphModelKind::AdamGnn => {
                let mut mcfg = AdamGnnConfig::new(in_dim, hidden, levels);
                mcfg.dropout = 0.2;
                mcfg.flyback = cfg.flyback;
                mcfg.pooling = cfg.pooling;
                Box::new(AdamGnnGc::with_weights(
                    store,
                    mcfg,
                    classes,
                    cfg.weights,
                    rng,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_nn::testkit::seeds;

    #[test]
    fn every_node_model_builds_and_runs() {
        let (ctx, _) = mg_nn::testkit::two_community_ctx();
        let cfg = TrainConfig {
            levels: 2,
            ..Default::default()
        };
        for kind in NodeModelKind::all() {
            let mut store = ParamStore::new();
            let model = kind.build(&mut store, 8, 8, 2, &cfg, &mut seeds::model_init());
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (out, _) = model.forward(&tape, &bind, &ctx, false, &mut seeds::forward_rng());
            assert_eq!(tape.shape(out), (8, 2), "{}", kind.name());
        }
    }

    #[test]
    fn every_graph_model_builds_and_runs() {
        let samples = mg_nn::testkit::ring_vs_star_samples();
        let (ctx, _) = &samples[0];
        let cfg = TrainConfig {
            levels: 2,
            ..Default::default()
        };
        for kind in GraphModelKind::all() {
            let mut store = ParamStore::new();
            let model = kind.build(&mut store, 3, 8, 2, &cfg, &mut seeds::model_init());
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let out = model.forward(&tape, &bind, ctx, false, &mut seeds::forward_rng());
            assert_eq!(tape.shape(out.logits), (1, 2), "{}", kind.name());
            assert!(tape.value(out.logits).all_finite(), "{}", kind.name());
        }
    }
}

//! # mg-eval
//!
//! Training loops, metrics and experiment harness for the AdamGNN
//! reproduction: node classification, link prediction and graph
//! classification trainers with best-validation checkpoint selection,
//! plus text-table rendering for the paper's result tables.

pub mod clustering;
pub mod graph_tasks;
pub mod infer;
pub mod metrics;
pub mod minibatch;
pub mod models;
pub mod node_tasks;
pub mod session;
pub mod tables;
mod telemetry;
pub mod trace;

pub use clustering::{bce_pair_batch, kmeans, nmi};
pub use graph_tasks::{build_contexts, GcRunResult};
pub use infer::FrozenModel;
pub use metrics::{accuracy, mean_std, pair_scores, roc_auc};
pub use minibatch::{sampled_epochs_streamed, MinibatchConfig, StreamedEpoch};
pub use models::{AnyNodeModel, GraphModelKind, NodeModelKind};
pub use node_tasks::{RunResult, TrainConfig};
pub use session::{RunOutcome, SessionInput, SessionKind, TrainSession};
pub use tables::{auc, pct, TextTable};
pub use trace::{EpochRecord, TrainTrace};

/// Print the per-kernel timing registry as JSON to stderr when the
/// `MG_KERNEL_STATS` environment variable is set. No-op in builds
/// without the `parallel` feature (the registry lives in mg-runtime).
pub fn maybe_dump_kernel_stats(label: &str) {
    #[cfg(feature = "parallel")]
    if std::env::var_os("MG_KERNEL_STATS").is_some() {
        eprintln!(
            "MG_KERNEL_STATS [{label}]:\n{}",
            mg_runtime::KernelStats::to_json()
        );
    }
    #[cfg(not(feature = "parallel"))]
    let _ = label;
}

//! Node clustering — the third node-level task the paper's introduction
//! motivates. Embeddings are trained unsupervised (reconstruction +
//! AdamGNN's KL self-optimisation), clustered with k-means, and scored by
//! normalised mutual information against the ground-truth classes.

use crate::models::NodeModelKind;
use crate::node_tasks::{run_meta, TrainConfig};
use crate::session::{self, CkptHooks};
use crate::telemetry;
use crate::trace::TrainTrace;
use adamgnn_core::kl_loss;
use mg_ckpt::{CkptMeta, TrainState};
use mg_data::{sample_non_edges, NodeDataset};
use mg_graph::Topology;
use mg_nn::GraphCtx;
use mg_obs::{Stopwatch, Trace};
use mg_tensor::{AdamConfig, Matrix, MgError, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// Lloyd's k-means with k-means++-style farthest-first seeding; returns
/// the cluster id per row.
pub fn kmeans(data: &Matrix, k: usize, iters: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = data.rows();
    let d = data.cols();
    assert!(k >= 1 && k <= n, "kmeans: bad k");
    // farthest-first seeding
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(data.row(rng.random_range(0..n)).to_vec());
    while centers.len() < k {
        let (mut best, mut best_d) = (0usize, -1.0f64);
        for i in 0..n {
            let dist = centers
                .iter()
                .map(|c| sq_dist(data.row(i), c))
                .fold(f64::INFINITY, f64::min);
            if dist > best_d {
                best_d = dist;
                best = i;
            }
        }
        centers.push(data.row(best).to_vec());
    }
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        let mut changed = false;
        for (i, a) in assign.iter_mut().enumerate() {
            let (mut best, mut best_d) = (0usize, f64::INFINITY);
            for (c, center) in centers.iter().enumerate() {
                let dist = sq_dist(data.row(i), center);
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            if *a != best {
                *a = best;
                changed = true;
            }
        }
        // recompute centres
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assign[i]] += 1;
            for (s, &x) in sums[assign[i]].iter_mut().zip(data.row(i)) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centers[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Normalised mutual information between two labelings, in `[0, 1]`.
pub fn nmi(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "nmi: length mismatch");
    let n = a.len() as f64;
    let ka = a.iter().max().map_or(0, |m| m + 1);
    let kb = b.iter().max().map_or(0, |m| m + 1);
    let mut joint = vec![vec![0.0f64; kb]; ka];
    let mut pa = vec![0.0f64; ka];
    let mut pb = vec![0.0f64; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x][y] += 1.0;
        pa[x] += 1.0;
        pb[y] += 1.0;
    }
    let mut mi = 0.0;
    for x in 0..ka {
        for y in 0..kb {
            if joint[x][y] > 0.0 {
                mi += (joint[x][y] / n) * ((joint[x][y] * n) / (pa[x] * pb[y])).ln();
            }
        }
    }
    let h = |p: &[f64]| -> f64 {
        p.iter()
            .filter(|&&x| x > 0.0)
            .map(|&x| -(x / n) * (x / n).ln())
            .sum()
    };
    let (ha, hb) = (h(&pa), h(&pb));
    if ha == 0.0 || hb == 0.0 {
        return if ha == hb { 1.0 } else { 0.0 };
    }
    (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

/// A class-balanced batch of node pairs and their BCE labels.
pub type PairBatch = (Vec<(usize, usize)>, Vec<f64>);

/// Positives plus an equal number of freshly sampled non-edge negatives
/// with their BCE labels — the supervision of one unsupervised epoch.
///
/// Delegates to [`mg_data::sample_non_edges`], so the batch is always
/// class-balanced (`pairs.len() == 2 * pos.len()`) or the sampler
/// reports [`MgError::TooDense`] on graphs with too few non-edges. The
/// trainer previously re-rolled its own bounded rejection loop here,
/// which on dense graphs silently produced fewer negatives than
/// positives and skewed the BCE labels.
pub fn bce_pair_batch(
    g: &Topology,
    pos: &[(usize, usize)],
    rng: &mut StdRng,
) -> Result<PairBatch, MgError> {
    let neg = sample_non_edges(g, pos.len(), rng)?;
    let mut pairs = pos.to_vec();
    pairs.extend_from_slice(&neg);
    let mut labels = vec![1.0; pos.len()];
    labels.extend(std::iter::repeat_n(0.0, neg.len()));
    Ok((pairs, labels))
}

/// The clustering trainer behind [`crate::TrainSession`]: trains
/// embeddings unsupervised (reconstruction BCE + γ·KL for AdamGNN),
/// clusters with k-means and returns NMI against the class labels. It
/// also reports a per-epoch loss trace whose rows carry `val = NaN`
/// (the unsupervised loop has no validation metric).
pub(crate) fn node_clustering_session(
    kind: NodeModelKind,
    ds: &NodeDataset,
    cfg: &TrainConfig,
    hooks: &CkptHooks<'_>,
) -> Result<(f64, TrainTrace), MgError> {
    let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let model = kind.build(
        &mut store,
        ds.feat_dim(),
        cfg.hidden,
        cfg.hidden,
        cfg,
        &mut rng,
    );
    let adam = AdamConfig::with_lr(cfg.lr);
    let pos: Vec<(usize, usize)> = ds
        .graph
        .edges()
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();

    let meta = CkptMeta {
        task: "node_clustering".into(),
        model: kind.name().into(),
        dataset: ds.name.clone(),
        in_dim: ds.feat_dim(),
        out_dim: cfg.hidden,
        n_nodes: ds.n(),
    };
    let mut trace = TrainTrace::new();
    let mut start_epoch = 0;
    if let Some(ck) = hooks.resume {
        session::check_resume(ck, &meta, cfg)?;
        store.import_state(&ck.params, ck.adam_t)?;
        rng = StdRng::from_state(ck.rng);
        start_epoch = ck.state.next_epoch;
        trace = session::restored_trace(ck);
    }

    let mut obs = Trace::from_env("node_clustering");
    obs.run_start(&run_meta(kind, ds, cfg));
    for epoch in start_epoch..cfg.epochs {
        let sw = Stopwatch::start();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (h, internals) = model.forward(&tape, &bind, &ctx, true, &mut rng);
        let (pairs, labels) = bce_pair_batch(&ds.graph, &pos, &mut rng)?;
        let task = tape.bce_pairs(h, Rc::new(pairs), Rc::new(labels));
        let mut kl_term = None;
        let mut loss = match &internals {
            Some(out) if cfg.weights.gamma != 0.0 => {
                let kl = kl_loss(&tape, out.h, &out.egos_l1);
                kl_term = Some(kl);
                tape.add(task, tape.scale(kl, cfg.weights.gamma))
            }
            _ => task,
        };
        // operator-specific auxiliary term (None for the default
        // operator, keeping the historical composition unchanged)
        if let Some(aux) = internals.as_ref().and_then(|o| o.aux) {
            loss = tape.add(loss, aux);
        }
        let loss_value = tape.value(loss).scalar();
        let mut grads = tape.backward(loss);
        let step_obs = obs.enabled().then(|| {
            // the reconstruction BCE *is* the task term for clustering
            telemetry::collect_step(
                &tape,
                &store,
                &bind,
                &grads,
                telemetry::LossTerms {
                    task: Some(task),
                    kl: kl_term,
                    recon: Some(task),
                },
                internals.as_ref(),
            )
        });
        store.step(&mut grads, &bind, &adam);
        trace.push(epoch, loss_value, f64::NAN);
        if let Some(s) = step_obs {
            obs.epoch(&mg_obs::EpochRecord {
                epoch,
                loss_total: loss_value,
                loss_task: s.loss_task,
                loss_kl: s.loss_kl,
                loss_recon: s.loss_recon,
                val_metric: None,
                train_ns: sw.elapsed_ns(),
                eval_ns: 0,
                grad_norms: s.grad_norms,
                beta: s.beta,
                level_sizes: s.level_sizes,
                peak_tape_bytes: s.peak_tape_bytes,
            });
        }
        if hooks.due(epoch + 1, epoch + 1 == cfg.epochs) {
            // no validation split: the best-checkpoint fields stay at
            // their pre-first-epoch sentinels.
            session::write_checkpoint(
                hooks.path.expect("due() implies a destination"),
                &meta,
                cfg,
                TrainState {
                    next_epoch: epoch + 1,
                    epochs_run: epoch + 1,
                    best_val: f64::NEG_INFINITY,
                    best_test: 0.0,
                    bad_epochs: 0,
                },
                &store,
                &rng,
                &trace,
                &[],
                model.record_structure(&store, &ctx),
            )?;
        }
    }
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let (h, _) = model.forward(&tape, &bind, &ctx, false, &mut rng);
    let emb = tape.value_cloned(h);
    let clusters = kmeans(&emb, ds.num_classes, 50, &mut rng);
    let score = nmi(&clusters, &ds.labels);
    obs.kernel_stats();
    obs.run_end(cfg.epochs, None, Some(score));
    Ok((score, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_data::{make_node_dataset, NodeDatasetKind, NodeGenConfig};

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut data = Matrix::zeros(20, 2);
        for i in 0..10 {
            data[(i, 0)] = 10.0 + (i as f64) * 0.01;
        }
        for i in 10..20 {
            data[(i, 1)] = 10.0 + (i as f64) * 0.01;
        }
        let mut rng = StdRng::seed_from_u64(0);
        let assign = kmeans(&data, 2, 20, &mut rng);
        // all of the first ten share a cluster, all of the second ten the other
        assert!(assign[..10].iter().all(|&c| c == assign[0]));
        assert!(assign[10..].iter().all(|&c| c == assign[10]));
        assert_ne!(assign[0], assign[10]);
    }

    #[test]
    fn nmi_bounds() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12, "identical labelings");
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!(
            (nmi(&a, &b) - 1.0).abs() < 1e-12,
            "permuted labels are equivalent"
        );
        let c = vec![0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &c) < 0.5, "orthogonal labelings score low");
    }

    /// Regression for the silent-shortfall class-imbalance bug: on a
    /// dense graph the old inline rejection loop ran out of guard and
    /// pushed fewer negatives than positives, so the BCE saw a skewed
    /// label mix. The shared sampler must always deliver a balanced
    /// batch.
    #[test]
    fn bce_batch_is_balanced_on_dense_graph() {
        // near-complete graph: 200 nodes, all pairs except (0, 1..=30)
        let mut edges = Vec::new();
        for u in 0..200u32 {
            for v in (u + 1)..200 {
                if !(u == 0 && (1..=30).contains(&v)) {
                    edges.push((u, v));
                }
            }
        }
        let g = Topology::from_edges(200, &edges);
        let pos: Vec<(usize, usize)> = (2..32).map(|v| (1usize, v as usize)).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let (pairs, labels) = bce_pair_batch(&g, &pos, &mut rng).unwrap();
        assert_eq!(pairs.len(), 2 * pos.len());
        assert_eq!(labels.len(), 2 * pos.len());
        assert_eq!(labels.iter().filter(|&&l| l == 1.0).count(), pos.len());
        assert_eq!(labels.iter().filter(|&&l| l == 0.0).count(), pos.len());
        for (&(u, v), &l) in pairs.iter().zip(&labels).skip(pos.len()) {
            assert_eq!(l, 0.0);
            assert!(!g.has_edge(u, v), "negative ({u},{v}) is an edge");
        }
    }

    #[test]
    fn clustering_on_community_graph_beats_random() {
        let ds = make_node_dataset(
            NodeDatasetKind::Emails,
            &NodeGenConfig {
                scale: 0.15,
                max_feat_dim: 32,
                seed: 4,
            },
        );
        let cfg = TrainConfig {
            epochs: 30,
            patience: 30,
            hidden: 24,
            levels: 2,
            ..Default::default()
        };
        let out = crate::session::TrainSession::new(
            crate::session::SessionKind::NodeClustering(NodeModelKind::Gcn),
            &cfg,
        )
        .run(&ds)
        .unwrap();
        assert!(out.test_metric > 0.1, "NMI = {}", out.test_metric);
        assert_eq!(out.val_metric, None, "clustering has no validation");
        assert_eq!(out.trace.len(), cfg.epochs);
        assert!(
            out.trace.records.iter().all(|r| r.val.is_nan()),
            "clustering trace rows carry NaN val"
        );
    }
}

//! Trainer for graph classification (Table 1's task), following the
//! paper's protocol: 80/10/10 graph split, mini-batch training, accuracy
//! at the best-validation checkpoint.

use crate::metrics::mean_std;
use crate::models::GraphModelKind;
use crate::node_tasks::TrainConfig;
use crate::session::{self, CkptHooks};
use crate::telemetry;
use crate::trace::TrainTrace;
use mg_ckpt::{CkptMeta, TrainState};
use mg_data::{GraphDataset, Split};
use mg_nn::{GraphClassifier, GraphCtx};
use mg_obs::{RunMeta, Stopwatch, Trace};
use mg_tensor::{AdamConfig, MgError, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;
use std::time::Instant;

/// Result of one graph-classification run.
#[derive(Clone, Copy, Debug)]
pub struct GcRunResult {
    pub test_accuracy: f64,
    pub val_accuracy: f64,
    /// Mean wall-clock seconds per training epoch (Table 4's metric).
    pub epoch_seconds: f64,
}

/// Pre-build per-graph contexts once (adjacency normalisations are
/// gradient-free and reusable across epochs).
pub fn build_contexts(ds: &GraphDataset) -> Vec<(GraphCtx, usize)> {
    ds.samples
        .iter()
        .map(|s| (GraphCtx::new(s.graph.clone(), s.features.clone()), s.label))
        .collect()
}

/// The graph-classification trainer behind [`crate::TrainSession`]
/// (epoch loss = mean over mini-batches of the batch-mean loss). Also
/// returns the number of epochs actually run.
pub(crate) fn graph_classification_session(
    kind: GraphModelKind,
    contexts: &[(GraphCtx, usize)],
    feat_dim: usize,
    cfg: &TrainConfig,
    hooks: &CkptHooks<'_>,
) -> Result<(GcRunResult, TrainTrace, usize), MgError> {
    let split = Split::random_80_10_10(contexts.len(), cfg.seed ^ 0x9c9c)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let model = kind.build(&mut store, feat_dim, cfg.hidden, 2, cfg, &mut rng);
    let adam = AdamConfig::with_lr(cfg.lr);
    let batch = 32usize;

    let meta = CkptMeta {
        task: "graph_classification".into(),
        model: kind.name().into(),
        dataset: format!("{}_graphs", contexts.len()),
        in_dim: feat_dim,
        out_dim: 2,
        n_nodes: 0,
    };
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0;
    let mut bad_epochs = 0;
    let mut epoch_times = Vec::new();
    let mut trace = TrainTrace::new();
    let mut epochs_run = 0;
    let mut start_epoch = 0;
    if let Some(ck) = hooks.resume {
        session::check_resume(ck, &meta, cfg)?;
        store.import_state(&ck.params, ck.adam_t)?;
        rng = StdRng::from_state(ck.rng);
        best_val = ck.state.best_val;
        best_test = ck.state.best_test;
        bad_epochs = ck.state.bad_epochs;
        epochs_run = ck.state.epochs_run;
        start_epoch = if bad_epochs >= cfg.patience {
            cfg.epochs
        } else {
            ck.state.next_epoch
        };
        trace = session::restored_trace(ck);
        epoch_times = ck.epoch_times.clone();
    }

    let mut obs = Trace::from_env("graph_classification");
    obs.run_start(&RunMeta {
        model: kind.name().to_string(),
        dataset: format!("{}_graphs", contexts.len()),
        n_nodes: contexts.iter().map(|(c, _)| c.graph.n()).sum(),
        n_edges: contexts.iter().map(|(c, _)| c.graph.num_edges()).sum(),
        seed: cfg.seed,
        epochs: cfg.epochs,
        hidden: cfg.hidden,
        levels: cfg.levels,
        gamma: cfg.weights.gamma,
        delta: cfg.weights.delta,
        pooling: cfg.pooling.name().to_string(),
    });

    for epoch in start_epoch..cfg.epochs {
        epochs_run = epoch + 1;
        let started = Instant::now();
        // shuffle training order
        let mut order = split.train.clone();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut batch_losses = Vec::new();
        let mut last_grad_norms = Vec::new();
        let mut epoch_peak_tape_bytes = 0u64;
        for chunk in order.chunks(batch) {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let mut losses = Vec::with_capacity(chunk.len());
            for &gi in chunk {
                let (ctx, label) = &contexts[gi];
                let out = model.forward(&tape, &bind, ctx, true, &mut rng);
                let ce = tape.cross_entropy(out.logits, Rc::new(vec![*label]), Rc::new(vec![0]));
                losses.push(match out.aux_loss {
                    Some(aux) => tape.add(ce, aux),
                    None => ce,
                });
            }
            let mut sum = losses[0];
            for &l in &losses[1..] {
                sum = tape.add(sum, l);
            }
            let loss = tape.scale(sum, 1.0 / losses.len() as f64);
            batch_losses.push(tape.value(loss).scalar());
            let mut grads = tape.backward(loss);
            if obs.enabled() {
                last_grad_norms = telemetry::grad_norms(&store, &bind, &grads);
                epoch_peak_tape_bytes = epoch_peak_tape_bytes.max(tape.peak_tape_bytes() as u64);
            }
            store.step(&mut grads, &bind, &adam);
        }
        epoch_times.push(started.elapsed().as_secs_f64());
        let sw = Stopwatch::start();
        let val = eval_accuracy(model.as_ref(), &store, contexts, &split.val, &mut rng);
        let eval_ns = sw.elapsed_ns();
        let epoch_loss = batch_losses.iter().sum::<f64>() / batch_losses.len().max(1) as f64;
        trace.push(epoch, epoch_loss, val);
        if obs.enabled() {
            // mini-batch trainer: loss terms are not decomposed (the GC
            // objective is CE + model-internal aux), grad norms come
            // from the final batch of the epoch.
            obs.epoch(&mg_obs::EpochRecord {
                epoch,
                loss_total: epoch_loss,
                loss_task: None,
                loss_kl: None,
                loss_recon: None,
                val_metric: Some(val),
                train_ns: (epoch_times.last().copied().unwrap_or(0.0) * 1e9) as u64,
                eval_ns,
                grad_norms: std::mem::take(&mut last_grad_norms),
                beta: None,
                level_sizes: Vec::new(),
                peak_tape_bytes: epoch_peak_tape_bytes,
            });
        }
        let mut stop = false;
        if val > best_val {
            best_val = val;
            best_test = eval_accuracy(model.as_ref(), &store, contexts, &split.test, &mut rng);
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
            if bad_epochs >= cfg.patience {
                stop = true;
            }
        }
        if hooks.due(epoch + 1, stop || epoch + 1 == cfg.epochs) {
            // graph-level pooling is derived per input graph, so there
            // is no persistent structure to pin: structure = None.
            session::write_checkpoint(
                hooks.path.expect("due() implies a destination"),
                &meta,
                cfg,
                TrainState {
                    next_epoch: epoch + 1,
                    epochs_run,
                    best_val,
                    best_test,
                    bad_epochs,
                },
                &store,
                &rng,
                &trace,
                &epoch_times,
                None,
            )?;
        }
        if stop {
            break;
        }
    }
    obs.kernel_stats();
    obs.run_end(epochs_run, Some(best_val), Some(best_test));
    let (epoch_seconds, _) = mean_std(&epoch_times);
    Ok((
        GcRunResult {
            test_accuracy: best_test,
            val_accuracy: best_val,
            epoch_seconds,
        },
        trace,
        epochs_run,
    ))
}

fn eval_accuracy(
    model: &dyn GraphClassifier,
    store: &ParamStore,
    contexts: &[(GraphCtx, usize)],
    idx: &[usize],
    rng: &mut StdRng,
) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let mut correct = 0;
    for &gi in idx {
        let (ctx, label) = &contexts[gi];
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let out = model.forward(&tape, &bind, ctx, false, rng);
        if tape.value(out.logits).row_argmax(0) == *label {
            correct += 1;
        }
    }
    correct as f64 / idx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionKind, TrainSession};
    use mg_data::{make_graph_dataset, GraphDatasetKind, GraphGenConfig};

    fn tiny() -> GraphDataset {
        make_graph_dataset(
            GraphDatasetKind::Mutagenicity,
            &GraphGenConfig {
                scale: 0.04,
                max_nodes: 30,
                seed: 2,
            },
        )
    }

    #[test]
    fn gin_gc_beats_chance_on_motif_data() {
        let cfg = TrainConfig {
            epochs: 25,
            lr: 0.01,
            patience: 25,
            hidden: 32,
            levels: 2,
            seed: 3,
            ..Default::default()
        };
        let res = TrainSession::new(SessionKind::GraphClassification(GraphModelKind::Gin), &cfg)
            .run(&tiny())
            .unwrap();
        assert!(res.test_metric > 0.6, "acc = {}", res.test_metric);
        assert!(res.epoch_seconds.unwrap() > 0.0);
        assert_eq!(res.trace.len(), res.epochs_run);
    }

    #[test]
    fn adamgnn_gc_beats_chance_on_motif_data() {
        let cfg = TrainConfig {
            epochs: 25,
            lr: 0.01,
            patience: 25,
            hidden: 32,
            levels: 2,
            seed: 3,
            ..Default::default()
        };
        let res = TrainSession::new(
            SessionKind::GraphClassification(GraphModelKind::AdamGnn),
            &cfg,
        )
        .run(&tiny())
        .unwrap();
        assert!(res.test_metric > 0.6, "acc = {}", res.test_metric);
    }
}

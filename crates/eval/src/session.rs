//! The unified trainer entry point: one builder for all four tasks.
//!
//! [`TrainSession`] replaces the historical `run_*` / `run_*_traced` /
//! `run_*_prebuilt` function family with a single configurable API:
//!
//! ```no_run
//! # use mg_eval::{SessionKind, NodeModelKind, TrainConfig, TrainSession};
//! # let ds: mg_data::NodeDataset = unimplemented!();
//! let outcome = TrainSession::new(
//!     SessionKind::NodeClassification(NodeModelKind::AdamGnn),
//!     &TrainConfig::default(),
//! )
//! .traced(true)
//! .checkpoint_to("run.mgck")
//! .checkpoint_every(10)
//! .run(&ds)
//! .unwrap();
//! ```
//!
//! The old functions were deprecated in 0.5.0 and removed in 0.10.0 —
//! every caller (including mg-verify's pinned goldens) now routes
//! through `TrainSession`, which reproduces them bit for bit.
//!
//! ## Checkpointing contract
//!
//! Checkpoint writes are *pure observation*: a run with checkpointing
//! enabled performs exactly the same RNG draws and float operations as
//! one without, because state capture happens after each epoch's
//! bookkeeping and the structure-recording forward pass draws nothing
//! from the training stream. Conversely, a run resumed from a
//! checkpoint reproduces the uninterrupted run bit for bit: parameters,
//! Adam moments, the shared step counter, the RNG stream position and
//! the early-stopping counters are all restored exactly, and the
//! remaining epochs replay the identical draw sequence.

use crate::graph_tasks::build_contexts;
use crate::minibatch::MinibatchConfig;
use crate::models::{GraphModelKind, NodeModelKind};
use crate::node_tasks::TrainConfig;
use crate::trace::TrainTrace;
use adamgnn_core::{FrozenStructure, LossWeights};
use mg_ckpt::{Checkpoint, CkptConfig, CkptMeta, TraceRow, TrainState};
use mg_data::{GraphDataset, NodeDataset};
use mg_nn::GraphCtx;
use mg_tensor::{MgError, ParamStore};
use rand::rngs::StdRng;
use std::path::{Path, PathBuf};

/// Which task to train, and with which model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionKind {
    NodeClassification(NodeModelKind),
    LinkPrediction(NodeModelKind),
    GraphClassification(GraphModelKind),
    NodeClustering(NodeModelKind),
}

impl SessionKind {
    /// Stable task identifier, as recorded in checkpoint metadata and
    /// mg-obs trace files.
    pub fn task_name(&self) -> &'static str {
        match self {
            SessionKind::NodeClassification(_) => "node_classification",
            SessionKind::LinkPrediction(_) => "link_prediction",
            SessionKind::GraphClassification(_) => "graph_classification",
            SessionKind::NodeClustering(_) => "node_clustering",
        }
    }

    /// Display name of the model this session trains.
    pub fn model_name(&self) -> &'static str {
        match self {
            SessionKind::NodeClassification(k)
            | SessionKind::LinkPrediction(k)
            | SessionKind::NodeClustering(k) => k.name(),
            SessionKind::GraphClassification(k) => k.name(),
        }
    }
}

/// What a session trains on. Node-level tasks take a [`NodeDataset`];
/// graph classification takes a [`GraphDataset`] or pre-built contexts
/// (so timing harnesses can exclude dataset preparation).
pub enum SessionInput<'a> {
    Node(&'a NodeDataset),
    Graphs(&'a GraphDataset),
    Prebuilt {
        contexts: &'a [(GraphCtx, usize)],
        feat_dim: usize,
    },
}

impl<'a> From<&'a NodeDataset> for SessionInput<'a> {
    fn from(ds: &'a NodeDataset) -> Self {
        SessionInput::Node(ds)
    }
}

impl<'a> From<&'a GraphDataset> for SessionInput<'a> {
    fn from(ds: &'a GraphDataset) -> Self {
        SessionInput::Graphs(ds)
    }
}

/// What every session returns, across all four tasks.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The headline test metric: accuracy, ROC-AUC or NMI depending on
    /// the task, always at the best-validation epoch where the task has
    /// a validation split.
    pub test_metric: f64,
    /// Best validation metric, for tasks that have one (`None` for
    /// unsupervised node clustering).
    pub val_metric: Option<f64>,
    /// Epochs actually run (early stopping may cut this short).
    pub epochs_run: usize,
    /// Per-epoch history; empty when `.traced(false)` (the default is
    /// traced). Clustering rows carry `val = NaN` (no validation).
    pub trace: TrainTrace,
    /// Mean wall-clock seconds per training epoch; graph classification
    /// only (Table 4's metric).
    pub epoch_seconds: Option<f64>,
}

/// Builder for one training run. See the module docs for the contract.
pub struct TrainSession {
    kind: SessionKind,
    cfg: TrainConfig,
    traced: bool,
    minibatch: Option<MinibatchConfig>,
    checkpoint_every: Option<usize>,
    checkpoint_to: Option<PathBuf>,
    resume_from: Option<PathBuf>,
}

impl TrainSession {
    /// A session with tracing on and checkpointing off.
    pub fn new(kind: SessionKind, cfg: &TrainConfig) -> Self {
        TrainSession {
            kind,
            cfg: *cfg,
            traced: true,
            minibatch: None,
            checkpoint_every: None,
            checkpoint_to: None,
            resume_from: None,
        }
    }

    /// Train with sampled ego-subgraph minibatches instead of full-batch
    /// epochs. Node classification and link prediction only — graph
    /// classification already iterates over (small, whole) graphs, and
    /// clustering's unsupervised objective is defined on the full graph.
    /// Evaluation stays full-graph, so metrics remain comparable to the
    /// full-batch trainers; see [`MinibatchConfig`].
    pub fn minibatch(mut self, mb: MinibatchConfig) -> Self {
        self.minibatch = Some(mb);
        self
    }

    /// Collect the per-epoch trace in the outcome (default `true`).
    /// Tracing is pure observation either way.
    pub fn traced(mut self, on: bool) -> Self {
        self.traced = on;
        self
    }

    /// Write a checkpoint every `n` completed epochs (in addition to the
    /// final one). Requires [`TrainSession::checkpoint_to`].
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = Some(n);
        self
    }

    /// Write checkpoints to `path` (atomically: a temp file is renamed
    /// into place). With no `checkpoint_every`, only the final state is
    /// written.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_to = Some(path.into());
        self
    }

    /// Resume from a checkpoint written by an identical session: same
    /// task, model, dataset identity and training configuration —
    /// anything else is an [`MgError::Mismatch`]. The epoch budget is
    /// the one deliberate exception: resuming with a larger `epochs`
    /// continues an interrupted (or exhausted) run, and the continuation
    /// replays exactly what an uninterrupted run with that budget would
    /// have computed.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Run the session to completion.
    pub fn run<'a>(&self, input: impl Into<SessionInput<'a>>) -> Result<RunOutcome, MgError> {
        if self.checkpoint_every.is_some() && self.checkpoint_to.is_none() {
            return Err(MgError::InvalidInput {
                detail: "checkpoint_every(n) needs a destination; call checkpoint_to(path) too"
                    .into(),
            });
        }
        if self.minibatch.is_some()
            && !matches!(
                self.kind,
                SessionKind::NodeClassification(_) | SessionKind::LinkPrediction(_)
            )
        {
            return Err(MgError::InvalidInput {
                detail: format!(
                    "minibatch sampling applies to node classification and link prediction, \
                     not {}",
                    self.kind.task_name()
                ),
            });
        }
        let resume = match &self.resume_from {
            Some(p) => Some(Checkpoint::load(p)?),
            None => None,
        };
        let hooks = CkptHooks {
            every: self.checkpoint_every,
            path: self.checkpoint_to.as_deref(),
            resume: resume.as_ref(),
        };
        let mut outcome = match (self.kind, input.into()) {
            (SessionKind::NodeClassification(k), SessionInput::Node(ds)) => {
                let (res, trace) = match &self.minibatch {
                    Some(mb) => crate::minibatch::node_classification_minibatch(
                        k, ds, &self.cfg, mb, &hooks,
                    )?,
                    None => {
                        crate::node_tasks::node_classification_session(k, ds, &self.cfg, &hooks)?
                    }
                };
                RunOutcome {
                    test_metric: res.test_metric,
                    val_metric: Some(res.val_metric),
                    epochs_run: res.epochs_run,
                    trace,
                    epoch_seconds: None,
                }
            }
            (SessionKind::LinkPrediction(k), SessionInput::Node(ds)) => {
                let (res, trace) = match &self.minibatch {
                    Some(mb) => {
                        crate::minibatch::link_prediction_minibatch(k, ds, &self.cfg, mb, &hooks)?
                    }
                    None => crate::node_tasks::link_prediction_session(k, ds, &self.cfg, &hooks)?,
                };
                RunOutcome {
                    test_metric: res.test_metric,
                    val_metric: Some(res.val_metric),
                    epochs_run: res.epochs_run,
                    trace,
                    epoch_seconds: None,
                }
            }
            (SessionKind::NodeClustering(k), SessionInput::Node(ds)) => {
                let (score, trace) =
                    crate::clustering::node_clustering_session(k, ds, &self.cfg, &hooks)?;
                RunOutcome {
                    test_metric: score,
                    val_metric: None,
                    epochs_run: self.cfg.epochs,
                    trace,
                    epoch_seconds: None,
                }
            }
            (SessionKind::GraphClassification(k), SessionInput::Graphs(ds)) => {
                let contexts = build_contexts(ds);
                let (res, trace, epochs_run) = crate::graph_tasks::graph_classification_session(
                    k,
                    &contexts,
                    ds.feat_dim,
                    &self.cfg,
                    &hooks,
                )?;
                RunOutcome {
                    test_metric: res.test_accuracy,
                    val_metric: Some(res.val_accuracy),
                    epochs_run,
                    trace,
                    epoch_seconds: Some(res.epoch_seconds),
                }
            }
            (
                SessionKind::GraphClassification(k),
                SessionInput::Prebuilt { contexts, feat_dim },
            ) => {
                let (res, trace, epochs_run) = crate::graph_tasks::graph_classification_session(
                    k, contexts, feat_dim, &self.cfg, &hooks,
                )?;
                RunOutcome {
                    test_metric: res.test_accuracy,
                    val_metric: Some(res.val_accuracy),
                    epochs_run,
                    trace,
                    epoch_seconds: Some(res.epoch_seconds),
                }
            }
            (kind, _) => {
                return Err(MgError::InvalidInput {
                    detail: format!(
                        "{} cannot run on this input (node-level tasks take a NodeDataset, \
                         graph classification a GraphDataset or prebuilt contexts)",
                        kind.task_name()
                    ),
                })
            }
        };
        if !self.traced {
            outcome.trace = TrainTrace::new();
        }
        Ok(outcome)
    }
}

/// Checkpoint/resume wiring threaded into the task trainers. With all
/// fields `None` the trainers behave exactly as before the session API
/// existed — checkpointing is pure observation.
pub(crate) struct CkptHooks<'a> {
    pub every: Option<usize>,
    pub path: Option<&'a Path>,
    pub resume: Option<&'a Checkpoint>,
}

impl CkptHooks<'_> {
    /// No checkpointing, no resume.
    #[cfg(test)]
    pub fn none() -> CkptHooks<'static> {
        CkptHooks {
            every: None,
            path: None,
            resume: None,
        }
    }

    /// Should a checkpoint be written after `completed` epochs?
    /// `last` marks the final epoch (exhaustion or early stop), which
    /// always writes when a destination is configured.
    pub fn due(&self, completed: usize, last: bool) -> bool {
        self.path.is_some()
            && (last
                || self
                    .every
                    .is_some_and(|k| k > 0 && completed.is_multiple_of(k)))
    }
}

/// Flatten a [`TrainConfig`] into its persisted mirror.
pub(crate) fn to_ckpt_config(cfg: &TrainConfig) -> CkptConfig {
    CkptConfig {
        epochs: cfg.epochs,
        lr: cfg.lr,
        patience: cfg.patience,
        hidden: cfg.hidden,
        levels: cfg.levels,
        seed: cfg.seed,
        gamma: cfg.weights.gamma,
        delta: cfg.weights.delta,
        flyback: cfg.flyback,
        pooling: cfg.pooling,
    }
}

/// Rebuild a [`TrainConfig`] from its persisted mirror.
pub(crate) fn from_ckpt_config(c: &CkptConfig) -> TrainConfig {
    TrainConfig {
        epochs: c.epochs,
        lr: c.lr,
        patience: c.patience,
        hidden: c.hidden,
        levels: c.levels,
        seed: c.seed,
        weights: LossWeights {
            gamma: c.gamma,
            delta: c.delta,
        },
        flyback: c.flyback,
        pooling: c.pooling,
    }
}

/// Reject a checkpoint that was produced by a different job: resuming
/// across task, model, dataset identity or configuration would silently
/// train the wrong thing.
pub(crate) fn check_resume(
    ck: &Checkpoint,
    meta: &CkptMeta,
    cfg: &TrainConfig,
) -> Result<(), MgError> {
    if ck.meta != *meta {
        return Err(MgError::Mismatch {
            detail: format!(
                "checkpoint identity {:?} does not match this session's {:?}",
                ck.meta, meta
            ),
        });
    }
    let want = to_ckpt_config(cfg);
    // The epoch budget is allowed to differ: nothing inside an epoch
    // depends on it, so a short-budget run is bitwise a prefix of a
    // longer one and resuming with more epochs is a pure continuation.
    let mut have = ck.config;
    have.epochs = want.epochs;
    if have != want {
        return Err(MgError::Mismatch {
            detail: format!(
                "checkpoint config {:?} does not match this session's {:?}",
                ck.config, want
            ),
        });
    }
    Ok(())
}

/// The trace prefix a resumed run starts from.
pub(crate) fn restored_trace(ck: &Checkpoint) -> TrainTrace {
    let mut trace = TrainTrace::new();
    for row in &ck.trace {
        trace.push(row.epoch, row.loss, row.val);
    }
    trace
}

/// Assemble and atomically write one checkpoint file.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_checkpoint(
    path: &Path,
    meta: &CkptMeta,
    cfg: &TrainConfig,
    state: TrainState,
    store: &ParamStore,
    rng: &StdRng,
    trace: &TrainTrace,
    epoch_times: &[f64],
    structure: Option<FrozenStructure>,
) -> Result<(), MgError> {
    let (params, adam_t) = store.export_state();
    let ck = Checkpoint {
        meta: meta.clone(),
        config: to_ckpt_config(cfg),
        state,
        params,
        adam_t,
        rng: rng.state(),
        trace: trace
            .records
            .iter()
            .map(|r| TraceRow {
                epoch: r.epoch,
                loss: r.loss,
                val: r.val,
            })
            .collect(),
        epoch_times: epoch_times.to_vec(),
        structure,
    };
    ck.save(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips_through_ckpt_mirror() {
        let cfg = TrainConfig {
            epochs: 7,
            lr: 0.005,
            patience: 3,
            hidden: 12,
            levels: 2,
            seed: 42,
            weights: LossWeights {
                gamma: 0.1,
                delta: 0.3,
            },
            flyback: false,
            pooling: adamgnn_core::PoolingKind::Asap,
        };
        let back = from_ckpt_config(&to_ckpt_config(&cfg));
        assert_eq!(to_ckpt_config(&back), to_ckpt_config(&cfg));
    }

    /// A checkpoint trained under one pooling operator holds that
    /// operator's parameters; resuming it under another must be a typed
    /// mismatch, never a silent reinterpretation of the weights.
    #[test]
    fn resume_under_different_pooling_operator_is_a_mismatch() {
        let ds = mg_data::make_node_dataset(
            mg_data::NodeDatasetKind::Cora,
            &mg_data::NodeGenConfig {
                scale: 0.05,
                max_feat_dim: 16,
                seed: 7,
            },
        );
        let dir = std::env::temp_dir().join("mg_session_pooling_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adamgnn.mgck");
        let cfg = TrainConfig {
            epochs: 2,
            patience: 2,
            hidden: 8,
            levels: 2,
            seed: 3,
            pooling: adamgnn_core::PoolingKind::AdamGnn,
            ..Default::default()
        };
        TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &cfg,
        )
        .checkpoint_to(&path)
        .run(&ds)
        .unwrap();
        let other = TrainConfig {
            epochs: 4,
            pooling: adamgnn_core::PoolingKind::Asap,
            ..cfg
        };
        let err = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &other,
        )
        .resume_from(&path)
        .run(&ds);
        assert!(matches!(err, Err(MgError::Mismatch { .. })), "{err:?}");
        // same operator, larger budget: a legitimate continuation
        let cont = TrainConfig { epochs: 4, ..cfg };
        TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &cont,
        )
        .resume_from(&path)
        .run(&ds)
        .expect("same-operator resume continues");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_every_without_destination_errors() {
        let ds = mg_data::make_node_dataset(
            mg_data::NodeDatasetKind::Cora,
            &mg_data::NodeGenConfig {
                scale: 0.05,
                max_feat_dim: 16,
                seed: 0,
            },
        );
        let err = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::Gcn),
            &TrainConfig::default(),
        )
        .checkpoint_every(5)
        .run(&ds);
        assert!(matches!(err, Err(MgError::InvalidInput { .. })));
    }

    #[test]
    fn mismatched_input_kind_errors() {
        let ds = mg_data::make_graph_dataset(
            mg_data::GraphDatasetKind::Proteins,
            &mg_data::GraphGenConfig {
                scale: 0.02,
                max_nodes: 20,
                seed: 0,
            },
        );
        let err = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::Gcn),
            &TrainConfig::default(),
        )
        .run(&ds);
        assert!(matches!(err, Err(MgError::InvalidInput { .. })));
    }

    #[test]
    fn due_policy() {
        let path = PathBuf::from("x.mgck");
        let h = CkptHooks {
            every: Some(3),
            path: Some(&path),
            resume: None,
        };
        assert!(!h.due(1, false));
        assert!(h.due(3, false));
        assert!(h.due(7, true), "final epoch always writes");
        let h = CkptHooks {
            every: None,
            path: Some(&path),
            resume: None,
        };
        assert!(!h.due(3, false), "no cadence: only the final write");
        assert!(h.due(3, true));
        assert!(!CkptHooks::none().due(3, true), "no destination: never");
    }
}

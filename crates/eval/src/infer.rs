//! Forward-only inference: load a checkpoint, rebuild the model it
//! describes, and serve predictions without touching an optimizer.
//!
//! A [`FrozenModel`] binds parameters with `requires_grad = false`, so
//! forward passes allocate no gradients and no Adam state. For AdamGNN
//! node models whose checkpoint pinned a [`FrozenStructure`], inference
//! on the training graph replays the exact pooling hierarchy the final
//! model induced; on other graphs (or without a pinned structure) the
//! hierarchy is re-derived by a deterministic eval-mode forward.
//!
//! Wrong-job uses — serving node outputs from a graph-classification
//! checkpoint, feeding features of the wrong width — fail with
//! [`MgError::Mismatch`] instead of producing garbage.

use crate::models::{AnyNodeModel, GraphModelKind, NodeModelKind};
use crate::session;
use adamgnn_core::FrozenStructure;
use mg_ckpt::{Checkpoint, CkptMeta};
use mg_nn::{GraphClassifier, GraphCtx};
use mg_tensor::{Matrix, MgError, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

enum FrozenInner {
    Node(AnyNodeModel),
    Graph(Box<dyn GraphClassifier>),
}

/// A trained model reconstructed from a checkpoint, ready to serve.
pub struct FrozenModel {
    ck: Checkpoint,
    store: ParamStore,
    inner: FrozenInner,
}

impl FrozenModel {
    /// Load and reconstruct from a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<FrozenModel, MgError> {
        FrozenModel::from_checkpoint(Checkpoint::load(path.as_ref())?)
    }

    /// Reconstruct from an in-memory checkpoint: rebuild the recorded
    /// architecture, then overwrite every parameter with the saved
    /// tensors (names and shapes are validated by the import).
    pub fn from_checkpoint(ck: Checkpoint) -> Result<FrozenModel, MgError> {
        // A pinned hierarchy that does not chain from the recorded graph
        // dimensions would index out of range mid-forward; reject the
        // artifact before building anything on top of it.
        ck.validate_structure()?;
        let cfg = session::from_ckpt_config(&ck.config);
        let mut store = ParamStore::new();
        // throwaway init draws; import_state overwrites everything
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let inner = match ck.meta.task.as_str() {
            "graph_classification" => {
                let kind =
                    GraphModelKind::from_name(&ck.meta.model).ok_or_else(|| MgError::Mismatch {
                        detail: format!("unknown graph model `{}`", ck.meta.model),
                    })?;
                FrozenInner::Graph(kind.build(
                    &mut store,
                    ck.meta.in_dim,
                    cfg.hidden,
                    ck.meta.out_dim,
                    &cfg,
                    &mut rng,
                ))
            }
            "node_classification" | "link_prediction" | "node_clustering" => {
                let kind =
                    NodeModelKind::from_name(&ck.meta.model).ok_or_else(|| MgError::Mismatch {
                        detail: format!("unknown node model `{}`", ck.meta.model),
                    })?;
                FrozenInner::Node(kind.build(
                    &mut store,
                    ck.meta.in_dim,
                    cfg.hidden,
                    ck.meta.out_dim,
                    &cfg,
                    &mut rng,
                ))
            }
            other => {
                return Err(MgError::Mismatch {
                    detail: format!("unknown task `{other}` in checkpoint"),
                })
            }
        };
        store.import_state(&ck.params, ck.adam_t)?;
        Ok(FrozenModel { ck, store, inner })
    }

    /// Identity of the run that produced the weights.
    pub fn meta(&self) -> &CkptMeta {
        &self.ck.meta
    }

    /// The pinned pooling hierarchy, when the checkpoint carries one.
    pub fn structure(&self) -> Option<&FrozenStructure> {
        self.ck.structure.as_ref()
    }

    /// Raw per-node outputs (logits or embeddings, depending on the
    /// task the checkpoint was trained for).
    pub fn node_outputs(&self, ctx: &GraphCtx) -> Result<Matrix, MgError> {
        let model = match &self.inner {
            FrozenInner::Node(m) => m,
            FrozenInner::Graph(_) => {
                return Err(MgError::Mismatch {
                    detail: "graph-classification checkpoint cannot serve node outputs".into(),
                })
            }
        };
        self.check_in_dim(ctx)?;
        // the pinned hierarchy only applies to the graph it was
        // recorded on; anywhere else the forward re-derives one
        let structure = self
            .ck
            .structure
            .as_ref()
            .filter(|_| ctx.graph.n() == self.ck.meta.n_nodes);
        let tape = Tape::new();
        let bind = self.store.bind_frozen(&tape);
        // eval-mode forwards draw nothing from the stream
        let mut rng = StdRng::seed_from_u64(0);
        let out = model.forward_frozen(&tape, &bind, ctx, structure, &mut rng);
        Ok(tape.value_cloned(out))
    }

    /// Per-node class predictions (argmax over the output rows).
    pub fn predict_labels(&self, ctx: &GraphCtx) -> Result<Vec<usize>, MgError> {
        let out = self.node_outputs(ctx)?;
        let ids: Vec<usize> = (0..out.rows()).collect();
        Self::labels_from(&out, &ids)
    }

    /// Link probabilities `sigma(h_u . h_v)` for the given node pairs.
    pub fn score_links(
        &self,
        ctx: &GraphCtx,
        pairs: &[(usize, usize)],
    ) -> Result<Vec<f64>, MgError> {
        let h = self.node_outputs(ctx)?;
        Self::link_scores_from(&h, pairs)
    }

    /// Batch entry point: gather the output rows for `ids` out of one
    /// full forward's output matrix.
    ///
    /// Serving layers (mg-serve's micro-batcher, the `infer` bench) run
    /// [`FrozenModel::node_outputs`] once per flush and answer every
    /// coalesced request from the same matrix through these gathers —
    /// which is why responses are bitwise identical however requests are
    /// batched. Any out-of-range id rejects the whole request with
    /// [`MgError::InvalidInput`]; there are no partial results.
    pub fn embeddings_from(h: &Matrix, ids: &[usize]) -> Result<Vec<Vec<f64>>, MgError> {
        Self::check_ids(h, ids)?;
        Ok(ids.iter().map(|&i| h.row(i).to_vec()).collect())
    }

    /// Batch entry point: argmax labels for `ids` from one full
    /// forward's output matrix (see [`FrozenModel::embeddings_from`]).
    pub fn labels_from(h: &Matrix, ids: &[usize]) -> Result<Vec<usize>, MgError> {
        Self::check_ids(h, ids)?;
        Ok(ids.iter().map(|&i| h.row_argmax(i)).collect())
    }

    /// Batch entry point: link probabilities `sigma(h_u . h_v)` for
    /// `pairs` from one full forward's output matrix (see
    /// [`FrozenModel::embeddings_from`]).
    pub fn link_scores_from(h: &Matrix, pairs: &[(usize, usize)]) -> Result<Vec<f64>, MgError> {
        if let Some(&(u, v)) = pairs.iter().find(|&&(u, v)| u >= h.rows() || v >= h.rows()) {
            return Err(MgError::InvalidInput {
                detail: format!("link ({u}, {v}) out of range for {} nodes", h.rows()),
            });
        }
        Ok(crate::metrics::pair_scores(h, pairs)
            .into_iter()
            .map(|s| 1.0 / (1.0 + (-s).exp()))
            .collect())
    }

    fn check_ids(h: &Matrix, ids: &[usize]) -> Result<(), MgError> {
        if let Some(&bad) = ids.iter().find(|&&i| i >= h.rows()) {
            return Err(MgError::InvalidInput {
                detail: format!("node id {bad} out of range for {} nodes", h.rows()),
            });
        }
        Ok(())
    }

    /// Class prediction for each input graph.
    pub fn classify_graphs(&self, contexts: &[GraphCtx]) -> Result<Vec<usize>, MgError> {
        let model = match &self.inner {
            FrozenInner::Graph(m) => m,
            FrozenInner::Node(_) => {
                return Err(MgError::Mismatch {
                    detail: "node-task checkpoint cannot classify whole graphs".into(),
                })
            }
        };
        let mut preds = Vec::with_capacity(contexts.len());
        for ctx in contexts {
            self.check_in_dim(ctx)?;
            let tape = Tape::new();
            let bind = self.store.bind_frozen(&tape);
            let mut rng = StdRng::seed_from_u64(0);
            let out = model.forward(&tape, &bind, ctx, false, &mut rng);
            preds.push(tape.value(out.logits).row_argmax(0));
        }
        Ok(preds)
    }

    fn check_in_dim(&self, ctx: &GraphCtx) -> Result<(), MgError> {
        if ctx.x.cols() != self.ck.meta.in_dim {
            return Err(MgError::Mismatch {
                detail: format!(
                    "features have width {} but the model was built for {}",
                    ctx.x.cols(),
                    self.ck.meta.in_dim
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionKind, TrainSession};
    use crate::TrainConfig;
    use mg_data::{make_node_dataset, NodeDatasetKind, NodeGenConfig};

    fn trained_checkpoint(dir: &std::path::Path, kind: NodeModelKind) -> std::path::PathBuf {
        let ds = make_node_dataset(
            NodeDatasetKind::Cora,
            &NodeGenConfig {
                scale: 0.08,
                max_feat_dim: 32,
                seed: 7,
            },
        );
        let cfg = TrainConfig {
            epochs: 5,
            hidden: 8,
            levels: 2,
            patience: 5,
            ..Default::default()
        };
        let path = dir.join(format!("{}.mgck", kind.name()));
        TrainSession::new(SessionKind::NodeClassification(kind), &cfg)
            .checkpoint_to(&path)
            .run(&ds)
            .unwrap();
        path
    }

    #[test]
    fn frozen_model_serves_node_predictions() {
        let dir = std::env::temp_dir().join("mg_infer_test_nc");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = make_node_dataset(
            NodeDatasetKind::Cora,
            &NodeGenConfig {
                scale: 0.08,
                max_feat_dim: 32,
                seed: 7,
            },
        );
        for kind in [NodeModelKind::Gcn, NodeModelKind::AdamGnn] {
            let path = trained_checkpoint(&dir, kind);
            let fm = FrozenModel::load(&path).unwrap();
            assert_eq!(fm.meta().task, "node_classification");
            let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
            let labels = fm.predict_labels(&ctx).unwrap();
            assert_eq!(labels.len(), ds.n());
            assert!(labels.iter().all(|&l| l < ds.num_classes));
            // the AdamGNN checkpoint pins its learned hierarchy
            if kind == NodeModelKind::AdamGnn {
                assert!(fm.structure().is_some());
            } else {
                assert!(fm.structure().is_none());
            }
            // two loads predict identically (frozen forwards are pure)
            let again = FrozenModel::load(&path).unwrap();
            assert_eq!(labels, again.predict_labels(&ctx).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A bytewise-intact checkpoint whose structure section disagrees
    /// with the recorded graph dimensions must be rejected at load, not
    /// detonate mid-forward.
    #[test]
    fn frozen_model_rejects_doctored_structure() {
        let dir = std::env::temp_dir().join("mg_infer_test_doctored");
        std::fs::create_dir_all(&dir).unwrap();
        let path = trained_checkpoint(&dir, NodeModelKind::AdamGnn);
        let mut ck = Checkpoint::load(&path).unwrap();
        let structure = ck.structure.as_mut().expect("AdamGNN pins structure");
        // point one ego past the graph the checkpoint claims to describe
        structure.levels[0].egos[0] = ck.meta.n_nodes + 7;
        let doctored = dir.join("doctored.mgck");
        ck.save(&doctored).unwrap();
        // the file itself is valid: every CRC passes on reload
        let reloaded = Checkpoint::load(&doctored).expect("doctored file decodes");
        assert!(reloaded.structure.is_some());
        match FrozenModel::load(&doctored) {
            Err(MgError::Mismatch { detail }) => {
                assert!(
                    detail.contains("out of range"),
                    "unhelpful detail: {detail}"
                )
            }
            Err(other) => panic!("doctored structure must be a Mismatch, got {other}"),
            Ok(_) => panic!("doctored structure must not load"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_model_rejects_wrong_jobs() {
        let dir = std::env::temp_dir().join("mg_infer_test_rej");
        std::fs::create_dir_all(&dir).unwrap();
        let path = trained_checkpoint(&dir, NodeModelKind::Gcn);
        let fm = FrozenModel::load(&path).unwrap();
        // wrong feature width
        let g = mg_graph::Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let bad_ctx = GraphCtx::new(g, Matrix::zeros(4, 3));
        assert!(matches!(
            fm.node_outputs(&bad_ctx),
            Err(MgError::Mismatch { .. })
        ));
        // node-task checkpoints do not classify graphs
        assert!(matches!(
            fm.classify_graphs(&[]),
            Err(MgError::Mismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

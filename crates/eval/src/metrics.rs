//! Evaluation metrics: classification accuracy and ROC-AUC.

use mg_tensor::Matrix;

/// Accuracy of row-argmax predictions against labels, over a node subset.
pub fn accuracy(logits: &Matrix, labels: &[usize], nodes: &[usize]) -> f64 {
    assert!(!nodes.is_empty(), "accuracy over empty set");
    let correct = nodes
        .iter()
        .filter(|&&i| logits.row_argmax(i) == labels[i])
        .count();
    correct as f64 / nodes.len() as f64
}

/// ROC-AUC via the rank statistic (equivalent to the Mann-Whitney U),
/// with proper tie handling through midranks.
///
/// # Panics
/// Panics when any score is non-finite. Ranking NaN as a tie (the old
/// behaviour) let a diverged model report a plausible-looking AUC; a
/// NaN score is a training failure and must surface as one.
pub fn roc_auc(pos_scores: &[f64], neg_scores: &[f64]) -> f64 {
    assert!(
        !pos_scores.is_empty() && !neg_scores.is_empty(),
        "roc_auc needs both classes"
    );
    assert!(
        pos_scores.iter().chain(neg_scores).all(|s| s.is_finite()),
        "roc_auc: non-finite score (NaN or infinity) — the model has likely diverged; \
         refusing to rank non-finite scores as ties"
    );
    let mut all: Vec<(f64, bool)> = pos_scores
        .iter()
        .map(|&s| (s, true))
        .chain(neg_scores.iter().map(|&s| (s, false)))
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    // midranks
    let n = all.len();
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for item in all.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let n_pos = pos_scores.len() as f64;
    let n_neg = neg_scores.len() as f64;
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// Inner-product link scores for node pairs.
pub fn pair_scores(h: &Matrix, pairs: &[(usize, usize)]) -> Vec<f64> {
    pairs.iter().map(|&(u, v)| h.row_dot(u, h, v)).collect()
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() == 1 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_correct() {
        let logits = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        let labels = vec![0, 1, 1];
        assert_eq!(accuracy(&logits, &labels, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &labels, &[0, 1]), 1.0);
    }

    #[test]
    fn auc_perfect_separation() {
        assert_eq!(roc_auc(&[0.9, 0.8], &[0.1, 0.2]), 1.0);
        assert_eq!(roc_auc(&[0.1, 0.2], &[0.9, 0.8]), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // fully tied scores -> AUC 0.5
        assert!((roc_auc(&[0.5, 0.5], &[0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_interleaved() {
        // pos {3, 1}, neg {2, 0}: pairs won = (3>2, 3>0, 1>0) = 3 of 4
        assert!((roc_auc(&[3.0, 1.0], &[2.0, 0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite score")]
    fn auc_rejects_nan_scores() {
        // pre-fix: NaN sorted as a tie and this returned a numeric AUC
        roc_auc(&[f64::NAN, 0.9], &[0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "non-finite score")]
    fn auc_rejects_infinite_negative_scores() {
        roc_auc(&[0.9], &[f64::NEG_INFINITY]);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_scores_inner_products() {
        let h = Matrix::from_vec(2, 2, vec![1.0, 0.0, 2.0, 3.0]);
        assert_eq!(pair_scores(&h, &[(0, 1)]), vec![2.0]);
    }
}

//! Per-epoch training traces — the observation hook mg-verify's golden
//! and differential tests consume.
//!
//! A trace records, for every epoch a trainer actually ran, the training
//! loss and the validation metric. Recording is pure observation: the
//! traced trainers read scalars that the training loop already computed
//! (or that evaluating costs nothing extra to read) and never draw from
//! the RNG streams, so a traced run is bit-identical to an untraced one.

/// One epoch of a training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochRecord {
    /// Epoch index, 0-based.
    pub epoch: usize,
    /// Training loss for the epoch (mean over batches for mini-batch
    /// trainers).
    pub loss: f64,
    /// Validation metric after the epoch's update (accuracy or ROC-AUC).
    pub val: f64,
}

/// The full per-epoch history of one training run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainTrace {
    pub records: Vec<EpochRecord>,
}

impl TrainTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one epoch.
    pub fn push(&mut self, epoch: usize, loss: f64, val: f64) {
        self.records.push(EpochRecord { epoch, loss, val });
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_compare() {
        let mut a = TrainTrace::new();
        a.push(0, 1.5, 0.5);
        a.push(1, 1.2, 0.75);
        assert_eq!(a.len(), 2);
        let mut b = TrainTrace::new();
        b.push(0, 1.5, 0.5);
        b.push(1, 1.2, 0.75);
        assert_eq!(a, b);
        b.push(2, 1.0, 0.8);
        assert_ne!(a, b);
    }
}

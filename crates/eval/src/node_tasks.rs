//! Trainers for the node-wise tasks: node classification (accuracy) and
//! link prediction (ROC-AUC), following the paper's protocol (80/10/10
//! splits, best-validation checkpointing, composite AdamGNN loss).

use crate::metrics::{accuracy, pair_scores, roc_auc};
use crate::models::NodeModelKind;
use crate::session::{self, CkptHooks};
use crate::telemetry;
use crate::trace::TrainTrace;
use adamgnn_core::{kl_loss, reconstruction_loss, total_loss, LossWeights, PoolingKind};
use mg_ckpt::{CkptMeta, TrainState};
use mg_data::{LinkSplit, NodeDataset, Split};
use mg_nn::GraphCtx;
use mg_obs::{RunMeta, Stopwatch, Trace};
use mg_tensor::{AdamConfig, MgError, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// The `run_start` facts shared by the node-level trainers (including
/// the clustering trainer in [`crate::clustering`]).
pub(crate) fn run_meta(kind: NodeModelKind, ds: &NodeDataset, cfg: &TrainConfig) -> RunMeta {
    RunMeta {
        model: kind.name().to_string(),
        dataset: ds.name.clone(),
        n_nodes: ds.n(),
        n_edges: ds.graph.num_edges(),
        seed: cfg.seed,
        epochs: cfg.epochs,
        hidden: cfg.hidden,
        levels: cfg.levels,
        gamma: cfg.weights.gamma,
        delta: cfg.weights.delta,
        pooling: cfg.pooling.name().to_string(),
    }
}

/// Training options shared by both node tasks.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub lr: f64,
    /// Early-stopping patience in epochs without validation improvement.
    pub patience: usize,
    pub hidden: usize,
    /// AdamGNN granularity levels.
    pub levels: usize,
    pub seed: u64,
    /// AdamGNN composite-loss weights (γ, δ); zero disables a term.
    pub weights: LossWeights,
    /// AdamGNN flyback aggregator toggle (Table 5 ablation).
    pub flyback: bool,
    /// Pooling operator AdamGNN models coarsen with (Table-4 rivals run
    /// behind the same trait). Ignored by the flat baselines.
    pub pooling: PoolingKind,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 120,
            lr: 0.01,
            patience: 30,
            hidden: 64,
            levels: 3,
            seed: 0,
            weights: LossWeights::default(),
            flyback: true,
            pooling: adamgnn_core::pooling_env_default(),
        }
    }
}

/// Result of one training run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Test metric at the best-validation checkpoint.
    pub test_metric: f64,
    /// Best validation metric observed.
    pub val_metric: f64,
    /// Epochs actually run (early stopping may cut this short).
    pub epochs_run: usize,
}

/// The node-classification trainer behind [`crate::TrainSession`]. With
/// empty hooks this is the historical traced trainer, bit for bit.
pub(crate) fn node_classification_session(
    kind: NodeModelKind,
    ds: &NodeDataset,
    cfg: &TrainConfig,
    hooks: &CkptHooks<'_>,
) -> Result<(RunResult, TrainTrace), MgError> {
    let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
    let split = Split::random_80_10_10(ds.n(), cfg.seed ^ 0x5eed)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let model = kind.build(
        &mut store,
        ds.feat_dim(),
        cfg.hidden,
        ds.num_classes,
        cfg,
        &mut rng,
    );
    let adam = AdamConfig::with_lr(cfg.lr);
    let weights = cfg.weights;
    let targets = Rc::new(ds.labels.clone());
    let train_nodes = Rc::new(split.train.clone());

    let meta = CkptMeta {
        task: "node_classification".into(),
        model: kind.name().into(),
        dataset: ds.name.clone(),
        in_dim: ds.feat_dim(),
        out_dim: ds.num_classes,
        n_nodes: ds.n(),
    };
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0;
    let mut bad_epochs = 0;
    let mut epochs_run = 0;
    let mut trace = TrainTrace::new();
    let mut start_epoch = 0;
    if let Some(ck) = hooks.resume {
        session::check_resume(ck, &meta, cfg)?;
        store.import_state(&ck.params, ck.adam_t)?;
        rng = StdRng::from_state(ck.rng);
        best_val = ck.state.best_val;
        best_test = ck.state.best_test;
        bad_epochs = ck.state.bad_epochs;
        epochs_run = ck.state.epochs_run;
        // a checkpoint taken at the early stop must not train further
        start_epoch = if bad_epochs >= cfg.patience {
            cfg.epochs
        } else {
            ck.state.next_epoch
        };
        trace = session::restored_trace(ck);
    }

    let mut obs = Trace::from_env("node_classification");
    obs.run_start(&run_meta(kind, ds, cfg));

    for epoch in start_epoch..cfg.epochs {
        epochs_run = epoch + 1;
        // train step
        let sw = Stopwatch::start();
        let (train_loss, step_obs) = {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (logits, internals) = model.forward(&tape, &bind, &ctx, true, &mut rng);
            let task = tape.cross_entropy(logits, targets.clone(), train_nodes.clone());
            let mut kl_term = None;
            let mut recon_term = None;
            let mut loss = match &internals {
                Some(out) => {
                    let kl = if weights.gamma != 0.0 {
                        kl_loss(&tape, out.h, &out.egos_l1)
                    } else {
                        tape.constant(mg_tensor::Matrix::zeros(1, 1))
                    };
                    let recon = if weights.delta != 0.0 {
                        reconstruction_loss(&tape, out.h, &ctx.graph, &mut rng)
                    } else {
                        tape.constant(mg_tensor::Matrix::zeros(1, 1))
                    };
                    kl_term = Some(kl);
                    recon_term = Some(recon);
                    total_loss(&tape, task, kl, recon, &weights)
                }
                None => task,
            };
            // operator-specific auxiliary term (None for the default
            // operator, keeping the historical composition unchanged)
            if let Some(aux) = internals.as_ref().and_then(|o| o.aux) {
                loss = tape.add(loss, aux);
            }
            let loss_value = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            // telemetry reads gradients before the optimiser consumes them
            let step_obs = obs.enabled().then(|| {
                telemetry::collect_step(
                    &tape,
                    &store,
                    &bind,
                    &grads,
                    telemetry::LossTerms {
                        task: Some(task),
                        kl: kl_term,
                        recon: recon_term,
                    },
                    internals.as_ref(),
                )
            });
            store.step(&mut grads, &bind, &adam);
            (loss_value, step_obs)
        };
        let train_ns = sw.elapsed_ns();
        // evaluate
        let sw = Stopwatch::start();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (logits, _) = model.forward(&tape, &bind, &ctx, false, &mut rng);
        let lv = tape.value_cloned(logits);
        let val = accuracy(&lv, &ds.labels, &split.val);
        let eval_ns = sw.elapsed_ns();
        trace.push(epoch, train_loss, val);
        if let Some(s) = step_obs {
            obs.epoch(&mg_obs::EpochRecord {
                epoch,
                loss_total: train_loss,
                loss_task: s.loss_task,
                loss_kl: s.loss_kl,
                loss_recon: s.loss_recon,
                val_metric: Some(val),
                train_ns,
                eval_ns,
                grad_norms: s.grad_norms,
                beta: s.beta,
                level_sizes: s.level_sizes,
                peak_tape_bytes: s.peak_tape_bytes,
            });
        }
        let mut stop = false;
        if val > best_val {
            best_val = val;
            best_test = accuracy(&lv, &ds.labels, &split.test);
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
            if bad_epochs >= cfg.patience {
                stop = true;
            }
        }
        if hooks.due(epoch + 1, stop || epoch + 1 == cfg.epochs) {
            session::write_checkpoint(
                hooks.path.expect("due() implies a destination"),
                &meta,
                cfg,
                TrainState {
                    next_epoch: epoch + 1,
                    epochs_run,
                    best_val,
                    best_test,
                    bad_epochs,
                },
                &store,
                &rng,
                &trace,
                &[],
                model.record_structure(&store, &ctx),
            )?;
        }
        if stop {
            break;
        }
    }
    crate::maybe_dump_kernel_stats("node_classification");
    obs.kernel_stats();
    obs.run_end(epochs_run, Some(best_val), Some(best_test));
    Ok((
        RunResult {
            test_metric: best_test,
            val_metric: best_val,
            epochs_run,
        },
        trace,
    ))
}

/// The link-prediction trainer behind [`crate::TrainSession`]. With
/// empty hooks this is the historical traced trainer, bit for bit.
/// The encoder output is an embedding decoded by inner products; the
/// task loss is the sampled reconstruction BCE (which for AdamGNN *is*
/// `L_R`, so its total is `L_R + γ L_KL` as in the paper).
pub(crate) fn link_prediction_session(
    kind: NodeModelKind,
    ds: &NodeDataset,
    cfg: &TrainConfig,
    hooks: &CkptHooks<'_>,
) -> Result<(RunResult, TrainTrace), MgError> {
    let link = LinkSplit::new(&ds.graph, cfg.seed ^ 0x11bb)?;
    // the encoder sees only the training graph
    let ctx = GraphCtx::new(link.train_graph.clone(), ds.features.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let embed_dim = cfg.hidden;
    let model = kind.build(
        &mut store,
        ds.feat_dim(),
        cfg.hidden,
        embed_dim,
        cfg,
        &mut rng,
    );
    let adam = AdamConfig::with_lr(cfg.lr);
    let weights = cfg.weights;

    let pos = link.train_pos.clone();
    let n = ds.n();

    let meta = CkptMeta {
        task: "link_prediction".into(),
        model: kind.name().into(),
        dataset: ds.name.clone(),
        in_dim: ds.feat_dim(),
        out_dim: embed_dim,
        n_nodes: ds.n(),
    };
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0;
    let mut bad_epochs = 0;
    let mut epochs_run = 0;
    let mut trace = TrainTrace::new();
    let mut start_epoch = 0;
    if let Some(ck) = hooks.resume {
        session::check_resume(ck, &meta, cfg)?;
        store.import_state(&ck.params, ck.adam_t)?;
        rng = StdRng::from_state(ck.rng);
        best_val = ck.state.best_val;
        best_test = ck.state.best_test;
        bad_epochs = ck.state.bad_epochs;
        epochs_run = ck.state.epochs_run;
        start_epoch = if bad_epochs >= cfg.patience {
            cfg.epochs
        } else {
            ck.state.next_epoch
        };
        trace = session::restored_trace(ck);
    }

    let mut obs = Trace::from_env("link_prediction");
    obs.run_start(&run_meta(kind, ds, cfg));

    for epoch in start_epoch..cfg.epochs {
        epochs_run = epoch + 1;
        let sw = Stopwatch::start();
        let (train_loss, step_obs) = {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (h, internals) = model.forward(&tape, &bind, &ctx, true, &mut rng);
            // Fresh negatives each epoch. This guarded rejection loop
            // predates mg_data::sample_non_edges and is deliberately kept
            // bit-for-bit (the mg-verify link-prediction golden pins its
            // exact draw sequence); unlike the evaluation sets, a rare
            // training-negative shortfall only softens one epoch's loss.
            let mut pairs = pos.clone();
            let mut labels = vec![1.0; pos.len()];
            let mut added = 0;
            let mut guard = 0;
            while added < pos.len() && guard < 100 * pos.len() {
                guard += 1;
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v && !ds.graph.has_edge(u, v) {
                    pairs.push((u, v));
                    labels.push(0.0);
                    added += 1;
                }
            }
            let task = tape.bce_pairs(h, Rc::new(pairs), Rc::new(labels));
            let mut kl_term = None;
            let mut loss = match &internals {
                Some(out) if weights.gamma != 0.0 => {
                    // LP: L = L_R + γ L_KL (task loss already equals L_R)
                    let kl = kl_loss(&tape, out.h, &out.egos_l1);
                    kl_term = Some(kl);
                    tape.add(task, tape.scale(kl, weights.gamma))
                }
                _ => task,
            };
            // operator-specific auxiliary term (None for the default
            // operator, keeping the historical composition unchanged)
            if let Some(aux) = internals.as_ref().and_then(|o| o.aux) {
                loss = tape.add(loss, aux);
            }
            let loss_value = tape.value(loss).scalar();
            let mut grads = tape.backward(loss);
            let step_obs = obs.enabled().then(|| {
                // the BCE task term *is* L_R for link prediction
                telemetry::collect_step(
                    &tape,
                    &store,
                    &bind,
                    &grads,
                    telemetry::LossTerms {
                        task: Some(task),
                        kl: kl_term,
                        recon: Some(task),
                    },
                    internals.as_ref(),
                )
            });
            store.step(&mut grads, &bind, &adam);
            (loss_value, step_obs)
        };
        let train_ns = sw.elapsed_ns();
        let sw = Stopwatch::start();
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (h, _) = model.forward(&tape, &bind, &ctx, false, &mut rng);
        let hv = tape.value_cloned(h);
        let val = roc_auc(
            &pair_scores(&hv, &link.val_pos),
            &pair_scores(&hv, &link.val_neg),
        );
        let eval_ns = sw.elapsed_ns();
        trace.push(epoch, train_loss, val);
        if let Some(s) = step_obs {
            obs.epoch(&mg_obs::EpochRecord {
                epoch,
                loss_total: train_loss,
                loss_task: s.loss_task,
                loss_kl: s.loss_kl,
                loss_recon: s.loss_recon,
                val_metric: Some(val),
                train_ns,
                eval_ns,
                grad_norms: s.grad_norms,
                beta: s.beta,
                level_sizes: s.level_sizes,
                peak_tape_bytes: s.peak_tape_bytes,
            });
        }
        let mut stop = false;
        if val > best_val {
            best_val = val;
            best_test = roc_auc(
                &pair_scores(&hv, &link.test_pos),
                &pair_scores(&hv, &link.test_neg),
            );
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
            if bad_epochs >= cfg.patience {
                stop = true;
            }
        }
        if hooks.due(epoch + 1, stop || epoch + 1 == cfg.epochs) {
            session::write_checkpoint(
                hooks.path.expect("due() implies a destination"),
                &meta,
                cfg,
                TrainState {
                    next_epoch: epoch + 1,
                    epochs_run,
                    best_val,
                    best_test,
                    bad_epochs,
                },
                &store,
                &rng,
                &trace,
                &[],
                model.record_structure(&store, &ctx),
            )?;
        }
        if stop {
            break;
        }
    }
    crate::maybe_dump_kernel_stats("link_prediction");
    obs.kernel_stats();
    obs.run_end(epochs_run, Some(best_val), Some(best_test));
    Ok((
        RunResult {
            test_metric: best_test,
            val_metric: best_val,
            epochs_run,
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionKind, TrainSession};
    use mg_data::{make_node_dataset, NodeDatasetKind, NodeGenConfig};

    fn tiny_ds() -> NodeDataset {
        make_node_dataset(
            NodeDatasetKind::Cora,
            &NodeGenConfig {
                scale: 0.08,
                max_feat_dim: 48,
                seed: 11,
            },
        )
    }

    fn fast_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 30,
            lr: 0.02,
            patience: 30,
            hidden: 16,
            levels: 2,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn gcn_nc_beats_chance() {
        let ds = tiny_ds();
        let res = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::Gcn),
            &fast_cfg(),
        )
        .run(&ds)
        .unwrap();
        let chance = 1.0 / ds.num_classes as f64;
        assert!(res.test_metric > chance + 0.1, "acc = {}", res.test_metric);
        assert_eq!(res.trace.len(), res.epochs_run, "traced by default");
    }

    #[test]
    fn adamgnn_nc_beats_chance() {
        let ds = tiny_ds();
        let res = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &fast_cfg(),
        )
        .run(&ds)
        .unwrap();
        let chance = 1.0 / ds.num_classes as f64;
        assert!(res.test_metric > chance + 0.1, "acc = {}", res.test_metric);
    }

    #[test]
    fn gcn_lp_beats_chance() {
        let ds = tiny_ds();
        let res = TrainSession::new(SessionKind::LinkPrediction(NodeModelKind::Gcn), &fast_cfg())
            .traced(false)
            .run(&ds)
            .unwrap();
        assert!(res.test_metric > 0.6, "auc = {}", res.test_metric);
        assert!(res.trace.is_empty(), "untraced session drops the trace");
    }

    #[test]
    fn adamgnn_lp_beats_chance() {
        let ds = tiny_ds();
        let res = TrainSession::new(
            SessionKind::LinkPrediction(NodeModelKind::AdamGnn),
            &fast_cfg(),
        )
        .run(&ds)
        .unwrap();
        assert!(res.test_metric > 0.6, "auc = {}", res.test_metric);
    }

    /// Two sessions with identical configuration must agree bit for bit
    /// (the determinism contract the goldens rely on).
    #[test]
    fn repeated_session_is_bitwise_repeatable() {
        let ds = tiny_ds();
        let cfg = fast_cfg();
        let a = TrainSession::new(SessionKind::NodeClassification(NodeModelKind::Gcn), &cfg)
            .run(&ds)
            .unwrap();
        let b = TrainSession::new(SessionKind::NodeClassification(NodeModelKind::Gcn), &cfg)
            .run(&ds)
            .unwrap();
        assert_eq!(a.test_metric.to_bits(), b.test_metric.to_bits());
        assert_eq!(
            a.val_metric.unwrap().to_bits(),
            b.val_metric.unwrap().to_bits()
        );
        assert_eq!(a.epochs_run, b.epochs_run);
    }
}

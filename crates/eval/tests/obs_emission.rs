//! End-to-end check of the mg-obs wiring: a traced node-classification
//! run must (a) be bit-identical to an untraced run — telemetry is pure
//! observation — and (b) emit a schema-valid JSONL trace with one
//! `EpochRecord` per epoch carrying all three loss terms, flyback-β
//! stats, per-level hyper-node counts and per-parameter gradient norms.
//!
//! These tests live in their own test binary because `MG_TRACE` is
//! process global: the library tests (which never set it) cannot race
//! with them, and the tests here serialise on [`ENV_LOCK`] so they
//! cannot race with each other.

use mg_data::{make_node_dataset, NodeDatasetKind, NodeGenConfig};
use mg_eval::{NodeModelKind, SessionKind, TrainConfig, TrainSession};
use mg_obs::{validate_trace, Json};
use std::sync::Mutex;

/// Guards every MG_TRACE mutation in this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tiny_ds() -> mg_data::NodeDataset {
    make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale: 0.05,
            max_feat_dim: 32,
            seed: 11,
        },
    )
}

fn fast_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        lr: 0.02,
        patience: 6,
        hidden: 16,
        levels: 2,
        seed: 1,
        ..Default::default()
    }
}

#[test]
fn traced_run_is_bitwise_identical_and_emits_valid_jsonl() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = tiny_ds();
    let cfg = fast_cfg();

    let session = || {
        TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &cfg,
        )
        .run(&ds)
    };

    // Baseline: MG_TRACE unset — telemetry fully disabled.
    std::env::remove_var("MG_TRACE");
    let base_res = session().unwrap();

    // Traced run into a temp file.
    let path = std::env::temp_dir().join(format!("mg_obs_emission_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("MG_TRACE", &path);
    let obs_res = session().unwrap();
    std::env::remove_var("MG_TRACE");

    // (a) Telemetry must not perturb the computation: bitwise equality.
    assert_eq!(
        base_res.trace, obs_res.trace,
        "tracing changed the training run"
    );
    assert_eq!(
        base_res.test_metric.to_bits(),
        obs_res.test_metric.to_bits()
    );
    assert_eq!(
        base_res.val_metric.unwrap().to_bits(),
        obs_res.val_metric.unwrap().to_bits()
    );
    assert_eq!(base_res.epochs_run, obs_res.epochs_run);

    // (b) The emitted trace parses and matches the schema.
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let report = validate_trace(&text).expect("trace validates");
    assert_eq!(report.run_starts, 1);
    assert_eq!(report.run_ends, 1);
    assert_eq!(report.kernel_stats, 1);
    assert_eq!(
        report.epochs, obs_res.epochs_run,
        "one EpochRecord per epoch actually run"
    );

    // Spot-check the payload of each epoch record: the AdamGNN composite
    // loss decomposes into all three terms, β stats and hyper-node
    // counts are present (levels=2 ⇒ 2 pooling levels), and every
    // parameter reports a gradient norm.
    let mut saw_epoch = false;
    for line in text.lines() {
        let v = Json::parse(line).expect("line parses");
        if v.get("kind").and_then(Json::as_str) != Some("epoch") {
            continue;
        }
        saw_epoch = true;
        assert_eq!(
            v.get("task").and_then(Json::as_str),
            Some("node_classification")
        );
        for term in ["loss_total", "loss_task", "loss_kl", "loss_recon"] {
            let x = v
                .get(term)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("epoch record missing finite {term}: {line}"));
            assert!(x.is_finite());
        }
        let beta = v.get("beta").expect("beta stats present");
        assert!(beta
            .get("mean")
            .and_then(Json::as_arr)
            .is_some_and(|a| !a.is_empty()));
        let sizes = v
            .get("level_sizes")
            .and_then(Json::as_arr)
            .expect("level_sizes present");
        assert_eq!(sizes.len(), cfg.levels, "one hyper-node count per level");
        let norms = v
            .get("grad_norms")
            .and_then(Json::as_arr)
            .expect("grad_norms present");
        assert!(!norms.is_empty(), "per-parameter gradient norms recorded");
    }
    assert!(saw_epoch);

    let _ = std::fs::remove_file(&path);
}

/// Every traced trainer must close its trace: exactly one run_start,
/// one kernel_stats and one run_end per run (a table sweep appending
/// several runs to one file stays well-formed). Regression for the LP
/// trainer, which once emitted epochs but never run_end.
#[test]
fn all_trainers_emit_complete_run_records() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = tiny_ds();
    let cfg = fast_cfg();
    let path = std::env::temp_dir().join(format!("mg_obs_complete_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("MG_TRACE", &path);
    let nc = TrainSession::new(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &cfg,
    )
    .run(&ds)
    .unwrap();
    let lp = TrainSession::new(SessionKind::LinkPrediction(NodeModelKind::AdamGnn), &cfg)
        .run(&ds)
        .unwrap();
    let cl = TrainSession::new(SessionKind::NodeClustering(NodeModelKind::Gcn), &cfg)
        .run(&ds)
        .unwrap();
    std::env::remove_var("MG_TRACE");
    assert!(cl.test_metric >= 0.0);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let report = validate_trace(&text).expect("trace validates");
    assert_eq!(report.run_starts, 3, "one run_start per run");
    assert_eq!(report.kernel_stats, 3, "one kernel_stats per run");
    assert_eq!(report.run_ends, 3, "one run_end per run");
    assert_eq!(report.epochs, nc.epochs_run + lp.epochs_run + cfg.epochs);

    let _ = std::fs::remove_file(&path);
}

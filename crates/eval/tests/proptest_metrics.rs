//! Property-based tests for the evaluation metrics.

use mg_eval::{accuracy, mean_std, nmi, roc_auc};
use mg_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    /// AUC is invariant under any strictly monotone transform of scores.
    #[test]
    fn auc_monotone_invariant(
        pos in proptest::collection::vec(-5.0..5.0f64, 1..20),
        neg in proptest::collection::vec(-5.0..5.0f64, 1..20),
    ) {
        let base = roc_auc(&pos, &neg);
        let squash = |v: &[f64]| -> Vec<f64> { v.iter().map(|&x| (x / 3.0).tanh() * 7.0 + 1.0).collect() };
        let transformed = roc_auc(&squash(&pos), &squash(&neg));
        prop_assert!((base - transformed).abs() < 1e-9);
    }

    /// Swapping positives and negatives mirrors the AUC around 0.5.
    #[test]
    fn auc_symmetry(
        pos in proptest::collection::vec(-5.0..5.0f64, 1..20),
        neg in proptest::collection::vec(-5.0..5.0f64, 1..20),
    ) {
        let a = roc_auc(&pos, &neg);
        let b = roc_auc(&neg, &pos);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    /// Accuracy is bounded and consistent with per-node counting.
    #[test]
    fn accuracy_bounds(labels in proptest::collection::vec(0usize..3, 5..30), seed in 0u64..100) {
        use rand::SeedableRng;
        let n = labels.len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let logits = Matrix::uniform(n, 3, -1.0, 1.0, &mut rng);
        let nodes: Vec<usize> = (0..n).collect();
        let acc = accuracy(&logits, &labels, &nodes);
        prop_assert!((0.0..=1.0).contains(&acc));
        // exact count cross-check
        let manual = nodes.iter().filter(|&&i| logits.row_argmax(i) == labels[i]).count();
        prop_assert!((acc - manual as f64 / n as f64).abs() < 1e-12);
    }

    /// NMI is symmetric and bounded.
    #[test]
    fn nmi_symmetric_and_bounded(
        a in proptest::collection::vec(0usize..4, 6..40),
        seed in 0u64..100,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b: Vec<usize> = a.iter().map(|_| rng.random_range(0..4)).collect();
        let ab = nmi(&a, &b);
        let ba = nmi(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((nmi(&a, &a) - 1.0).abs() < 1e-9 || a.iter().all(|&x| x == a[0]));
    }

    /// mean_std: the mean is within the sample range, std >= 0.
    #[test]
    fn mean_std_sanity(xs in proptest::collection::vec(-100.0..100.0f64, 1..50)) {
        let (m, s) = mean_std(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        prop_assert!(s >= 0.0);
    }
}

//! Telemetry e2e: a served request stream emits one valid mg-obs
//! `serve` record per request, and the trace passes `validate_trace`.
//!
//! Lives in its own test binary because it mutates the process-global
//! `MG_TRACE` environment variable (same isolation convention as
//! mg-eval's `obs_emission` suite).

use mg_data::{make_node_dataset, NodeDatasetKind, NodeGenConfig};
use mg_eval::{FrozenModel, NodeModelKind, SessionKind, TrainConfig, TrainSession};
use mg_nn::GraphCtx;
use mg_obs::validate_trace;
use mg_serve::{HttpClient, NodesRequest, ServeConfig, Server};

#[test]
fn served_requests_emit_a_valid_trace() {
    let dir = std::env::temp_dir().join(format!("mg_serve_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ds = make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale: 0.08,
            max_feat_dim: 32,
            seed: 7,
        },
    );
    let ckpt = dir.join("adamgnn.mgck");
    let cfg = TrainConfig {
        epochs: 5,
        hidden: 8,
        levels: 2,
        patience: 5,
        ..Default::default()
    };
    TrainSession::new(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &cfg,
    )
    .checkpoint_to(&ckpt)
    .run(&ds)
    .unwrap();

    let trace_path = dir.join("serve_trace.jsonl");
    std::env::set_var("MG_TRACE", &trace_path);
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
        move || {
            let fm = FrozenModel::load(&ckpt)?;
            let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
            Ok((fm, ctx))
        },
    )
    .unwrap();
    std::env::remove_var("MG_TRACE");

    let mut client = HttpClient::connect(server.addr()).unwrap();
    let good = NodesRequest { ids: vec![0, 1] }.to_json();
    for _ in 0..3 {
        let (status, _) = client.request("POST", "/v1/nodes", Some(&good)).unwrap();
        assert_eq!(status, 200);
    }
    // rejected requests are traced too, with their status
    let (status, _) = client
        .request("POST", "/v1/nodes", Some("not json"))
        .unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    // shutdown joins the telemetry thread, so the file is complete
    server.shutdown();

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let report = validate_trace(&text).expect("trace validates");
    assert_eq!(report.serves, 5, "one serve record per request:\n{text}");
    // spot-check record contents beyond schema validity
    let mut saw_400 = false;
    let mut saw_batched_forward = false;
    for line in text.lines() {
        let v = mg_obs::Json::parse(line).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("serve"));
        assert_eq!(v.get("task").unwrap().as_str(), Some("serve"));
        let status = v.get("status").unwrap().as_f64().unwrap() as u16;
        saw_400 |= status == 400;
        saw_batched_forward |= v.get("forward_ns").unwrap().as_f64().unwrap() > 0.0;
    }
    saw_400.then_some(()).expect("the rejection was traced");
    assert!(
        saw_batched_forward,
        "successful requests record forward time"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end tests over real loopback sockets: a trained AdamGNN
//! checkpoint served by a full [`Server`], exercised by concurrent
//! keep-alive HTTP clients.
//!
//! The load-bearing test is the bitwise-identity one: responses under
//! concurrency (where the micro-batcher coalesces requests into shared
//! flushes) must equal, byte for byte, the responses the same requests
//! get sequentially.

use mg_data::{make_node_dataset, NodeDataset, NodeDatasetKind, NodeGenConfig};
use mg_eval::{FrozenModel, NodeModelKind, SessionKind, TrainConfig, TrainSession};
use mg_nn::GraphCtx;
use mg_obs::Json;
use mg_serve::{
    ApiRequest, HttpClient, LinksRequest, ModelService, NodesRequest, ServeConfig, Server,
};
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::Duration;

/// The serving dataset: deterministic, so every call rebuilds the same
/// graph the checkpoint was trained on.
fn dataset() -> NodeDataset {
    make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale: 0.08,
            max_feat_dim: 32,
            seed: 7,
        },
    )
}

/// Train the shared checkpoint once per test process.
fn checkpoint() -> PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("mg_serve_e2e_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adamgnn.mgck");
        let cfg = TrainConfig {
            epochs: 5,
            hidden: 8,
            levels: 2,
            patience: 5,
            ..Default::default()
        };
        TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &cfg,
        )
        .checkpoint_to(&path)
        .run(&dataset())
        .unwrap();
        path
    })
    .clone()
}

fn start(cfg: ServeConfig) -> Server {
    let path = checkpoint();
    Server::start(cfg, move || {
        let fm = FrozenModel::load(&path)?;
        let ds = dataset();
        let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
        Ok((fm, ctx))
    })
    .expect("server starts")
}

fn ephemeral(cfg: ServeConfig) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    }
}

#[test]
fn healthz_and_statsz_report_identity_and_counters() {
    let server = start(ephemeral(ServeConfig::default()));
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let (status, body) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("task").unwrap().as_str(), Some("node_classification"));
    assert!(v.get("n_nodes").unwrap().as_f64().unwrap() > 0.0);

    // one real inference so the counters have something to say
    let req = NodesRequest { ids: vec![0, 1, 2] };
    let (status, _) = client
        .request("POST", "/v1/nodes", Some(&req.to_json()))
        .unwrap();
    assert_eq!(status, 200);

    let (status, body) = client.request("GET", "/statsz", None).unwrap();
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert!(v.get("requests").unwrap().as_f64().unwrap() >= 2.0);
    assert!(v.get("flushes").is_none()); // nested under "batch"
    let batch = v.get("batch").unwrap();
    assert!(batch.get("flushes").unwrap().as_f64().unwrap() >= 1.0);
    assert!(v.get("pool_threads").unwrap().as_f64().unwrap() >= 1.0);
    server.shutdown();
}

/// The tentpole guarantee: responses are bitwise identical whether a
/// request is served alone or coalesced into a flush with arbitrary
/// concurrent companions.
#[test]
fn concurrent_batched_responses_match_sequential_bitwise() {
    let n_nodes = dataset().n();
    // requests of both kinds, overlapping ids, request-order sensitive
    let nodes: Vec<String> = (0..6)
        .map(|i| {
            NodesRequest {
                ids: vec![i, (i * 31 + 5) % n_nodes, n_nodes - 1 - i],
            }
            .to_json()
        })
        .collect();
    let links: Vec<String> = (0..6)
        .map(|i| {
            LinksRequest {
                pairs: vec![(i, (i * 17 + 3) % n_nodes), (n_nodes - 1 - i, i)],
            }
            .to_json()
        })
        .collect();
    let bodies: Vec<(&'static str, String)> = nodes
        .into_iter()
        .map(|b| ("/v1/nodes", b))
        .chain(links.into_iter().map(|b| ("/v1/links", b)))
        .collect();

    // the reference is DIRECT FrozenModel serving — no server, no HTTP,
    // no batcher: load the same checkpoint, answer each request alone
    let reference: Vec<String> = {
        let fm = FrozenModel::load(checkpoint()).unwrap();
        let ds = dataset();
        let svc =
            ModelService::new(fm, GraphCtx::new(ds.graph.clone(), ds.features.clone())).unwrap();
        bodies
            .iter()
            .map(|(path, body)| {
                let req = if *path == "/v1/nodes" {
                    ApiRequest::Nodes(NodesRequest::from_json(body, 4096).unwrap())
                } else {
                    ApiRequest::Links(LinksRequest::from_json(body, 4096).unwrap())
                };
                svc.handle_one(req).unwrap().to_json()
            })
            .collect()
    };

    // concurrent run: a wide straggler window plus a barrier, so the
    // batcher has every chance to coalesce different requests
    let server = start(ephemeral(ServeConfig {
        max_batch: 8,
        max_wait: Duration::from_millis(50),
        ..ServeConfig::default()
    }));
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(bodies.len()));
    let got: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = bodies
        .iter()
        .enumerate()
        .map(|(i, (path, body))| {
            let (path, body) = (path.to_string(), body.clone());
            let (barrier, got) = (Arc::clone(&barrier), Arc::clone(&got));
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for _round in 0..3 {
                    barrier.wait();
                    let (status, resp) = client.request("POST", &path, Some(&body)).unwrap();
                    assert_eq!(status, 200, "concurrent request failed: {resp}");
                    got.lock().unwrap().push((i, resp));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // every concurrent response is byte-identical to its reference
    let got = got.lock().unwrap();
    assert_eq!(got.len(), bodies.len() * 3);
    for (i, resp) in got.iter() {
        assert_eq!(
            resp, &reference[*i],
            "batched response diverged from sequential reference"
        );
    }

    // and the barrier really did exercise multi-request flushes
    let mut client = HttpClient::connect(addr).unwrap();
    let (_, body) = client.request("GET", "/statsz", None).unwrap();
    let v = Json::parse(&body).unwrap();
    let hist = v.get("batch").unwrap().get("hist").unwrap();
    let coalesced = (2..=8).any(|k| hist.get(&k.to_string()).is_some());
    assert!(coalesced, "no flush held more than one request: {body}");
    server.shutdown();
}

#[test]
fn malformed_and_invalid_requests_reject_typed() {
    let server = start(ephemeral(ServeConfig {
        max_items: 4,
        ..ServeConfig::default()
    }));
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let expect = |client: &mut HttpClient,
                  method: &str,
                  path: &str,
                  body: Option<&str>,
                  status: u16,
                  code: &str| {
        let (got, resp) = client.request(method, path, body).unwrap();
        assert_eq!(got, status, "{method} {path}: {resp}");
        let v = Json::parse(&resp).expect("error body is JSON");
        assert_eq!(v.get("error").unwrap().as_str(), Some(code), "{resp}");
        assert!(v.get("detail").unwrap().as_str().is_some());
    };

    expect(
        &mut client,
        "POST",
        "/v1/nodes",
        Some("not json"),
        400,
        "bad_request",
    );
    expect(
        &mut client,
        "POST",
        "/v1/nodes",
        Some("{\"ids\": [1.5]}"),
        400,
        "bad_request",
    );
    expect(
        &mut client,
        "POST",
        "/v1/links",
        Some("{\"pairs\": [[0]]}"),
        400,
        "bad_request",
    );
    // parses fine, but the id does not exist in the graph
    expect(
        &mut client,
        "POST",
        "/v1/nodes",
        Some("{\"ids\": [999999]}"),
        400,
        "invalid_input",
    );
    // over the per-request item cap (max_items = 4)
    expect(
        &mut client,
        "POST",
        "/v1/nodes",
        Some("{\"ids\": [0,1,2,3,4]}"),
        400,
        "invalid_input",
    );
    expect(
        &mut client,
        "GET",
        "/v1/nodes",
        None,
        405,
        "method_not_allowed",
    );
    expect(&mut client, "POST", "/nope", None, 404, "not_found");

    // rejections never wedge the connection: a valid request still works
    let ok = NodesRequest { ids: vec![0] }.to_json();
    let (status, _) = client.request("POST", "/v1/nodes", Some(&ok)).unwrap();
    assert_eq!(status, 200);

    // an oversized payload is refused before its body is read, and the
    // connection is closed (the body was never consumed)
    let mut fat = HttpClient::connect(server.addr()).unwrap();
    let (status, resp) = fat
        .request_raw(b"POST /v1/nodes HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    assert_eq!(status, 413, "{resp}");
    assert!(resp.contains("payload_too_large"));

    // unreadable HTTP is a typed 400, not a hangup
    let mut bad = HttpClient::connect(server.addr()).unwrap();
    let (status, resp) = bad.request_raw(b"GARBAGE\r\n\r\n").unwrap();
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("bad_request"));

    server.shutdown();
}

#[test]
fn shutdown_drains_then_refuses() {
    let server = start(ephemeral(ServeConfig::default()));
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).unwrap();
    let req = NodesRequest { ids: vec![0, 1] }.to_json();
    let (status, before) = client.request("POST", "/v1/nodes", Some(&req)).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
    // the answer delivered before shutdown stays intact and complete
    assert!(before.contains("\"labels\""));
    // after shutdown nothing is listening
    assert!(HttpClient::connect(addr).is_err());
}

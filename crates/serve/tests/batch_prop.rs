//! Property tests isolating the micro-batcher: however concurrent
//! submissions interleave across flush windows, every submitter gets
//! exactly the answer sequential execution would have given it, and a
//! full queue pushes back instead of dropping work.

use mg_serve::{BatchCfg, Batcher, ServeError};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The executor contract mg-serve's model thread obeys: a pure function
/// of each request, independent of its flush companions. Any executor
/// of this shape makes batched == sequential hold by construction; the
/// batcher's job is to never break it by merging, reordering within a
/// reply, or dropping.
fn pure(req: u64) -> u64 {
    req.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of concurrent submitters — random request
    /// values, thread counts, batch caps, straggler windows, submission
    /// jitter — yields each submitter exactly the sequential answer.
    #[test]
    fn any_interleaving_matches_sequential(
        reqs in proptest::collection::vec(0u64..1_000_000, 1..40),
        max_batch in 1usize..9,
        wait_us in 0u64..800,
        jitter_us in 0u64..200,
    ) {
        let batcher: Arc<Batcher<u64, u64>> = Arc::new(Batcher::new(BatchCfg {
            max_batch,
            max_wait: Duration::from_micros(wait_us),
            max_queue: 1024,
        }));
        let flusher = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || {
                b.serve_loop(|batch| {
                    let out = batch.into_iter().map(|r| Ok(pure(r))).collect();
                    (out, 1)
                })
            })
        };
        let workers: Vec<_> = reqs
            .iter()
            .enumerate()
            .map(|(i, &req)| {
                let b = Arc::clone(&batcher);
                let nap = Duration::from_micros((i as u64 * 7) % (jitter_us + 1));
                std::thread::spawn(move || {
                    std::thread::sleep(nap);
                    let rx = b.submit(req).expect("queue has room");
                    rx.recv().expect("flusher answers")
                })
            })
            .collect();
        for (worker, &req) in workers.into_iter().zip(&reqs) {
            let (result, meta) = worker.join().unwrap();
            // bitwise the sequential answer, whatever flush it rode in
            prop_assert_eq!(result.unwrap(), pure(req));
            prop_assert!(meta.batch_size >= 1 && meta.batch_size <= max_batch);
        }
        batcher.close();
        flusher.join().unwrap();
    }
}

/// A queue at capacity rejects loudly and drops nothing: every submit is
/// either answered correctly or refused with a typed `Overloaded`, and
/// the two tallies account for every attempt.
#[test]
fn queue_full_is_backpressure_not_loss() {
    let batcher: Arc<Batcher<u64, u64>> = Arc::new(Batcher::new(BatchCfg {
        max_batch: 2,
        max_wait: Duration::from_micros(200),
        max_queue: 4,
    }));
    let answered = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    // a deliberately slow flusher so the tiny queue actually fills
    let flusher = {
        let b = Arc::clone(&batcher);
        std::thread::spawn(move || {
            b.serve_loop(|batch| {
                std::thread::sleep(Duration::from_micros(500));
                let out = batch.into_iter().map(|r| Ok(pure(r))).collect();
                (out, 1)
            })
        })
    };
    const PER_THREAD: u64 = 50;
    let workers: Vec<_> = (0..8u64)
        .map(|t| {
            let b = Arc::clone(&batcher);
            let (answered, rejected) = (Arc::clone(&answered), Arc::clone(&rejected));
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let req = t * PER_THREAD + i;
                    match b.submit(req) {
                        Ok(rx) => {
                            let (result, _) = rx.recv().expect("accepted work is answered");
                            assert_eq!(result.unwrap(), pure(req), "accepted answer is exact");
                            answered.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::Overloaded { depth }) => {
                            assert!(depth >= 4, "rejected below capacity");
                            rejected.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    batcher.close();
    flusher.join().unwrap();
    let (a, r) = (
        answered.load(Ordering::SeqCst),
        rejected.load(Ordering::SeqCst),
    );
    assert_eq!(a + r, 8 * PER_THREAD, "every submit accounted for");
    assert!(a > 0, "backpressure must not starve the queue entirely");
}

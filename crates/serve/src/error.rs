//! Typed request-rejection errors and their HTTP renderings.
//!
//! mg-serve is fail-closed: every way a request can be unacceptable —
//! unreadable HTTP, malformed JSON, out-of-range ids, an over-large
//! payload, a full queue — maps to exactly one [`ServeError`] variant,
//! which in turn fixes the HTTP status, a stable machine-readable `code`
//! and a structured JSON error body. A rejected request never receives
//! partial results, and model-side [`MgError`]s surface through the same
//! funnel instead of panicking a worker.

use mg_obs::json::string;
use mg_tensor::MgError;

/// Why a request was rejected (or, for [`ServeError::Internal`], why the
/// server could not answer it).
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The HTTP request or its JSON body never parsed.
    BadRequest { detail: String },
    /// The body parsed but asks for something the model cannot do:
    /// out-of-range node ids, too many items, wrong-task checkpoint.
    Invalid { detail: String },
    /// The request disagrees with the loaded artifact (wrong job for
    /// this checkpoint) — [`MgError::Mismatch`] surfaced over HTTP.
    Mismatch { detail: String },
    /// Body larger than the configured cap; rejected before reading it.
    PayloadTooLarge { limit: usize, got: usize },
    /// No route at this path.
    NotFound { path: String },
    /// The path exists but not for this method.
    MethodNotAllowed { method: String },
    /// The micro-batch queue is at capacity — explicit backpressure
    /// instead of unbounded buffering.
    Overloaded { depth: usize },
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The model thread failed or died; details are server-side state,
    /// not caller input.
    Internal { detail: String },
}

impl ServeError {
    /// The HTTP status this rejection answers with.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest { .. } | ServeError::Invalid { .. } => 400,
            ServeError::NotFound { .. } => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::Mismatch { .. } => 409,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::Overloaded { .. } | ServeError::ShuttingDown => 503,
            ServeError::Internal { .. } => 500,
        }
    }

    /// Stable machine-readable discriminant for the error body.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::Invalid { .. } => "invalid_input",
            ServeError::Mismatch { .. } => "mismatch",
            ServeError::PayloadTooLarge { .. } => "payload_too_large",
            ServeError::NotFound { .. } => "not_found",
            ServeError::MethodNotAllowed { .. } => "method_not_allowed",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// Human-readable detail line.
    pub fn detail(&self) -> String {
        match self {
            ServeError::BadRequest { detail }
            | ServeError::Invalid { detail }
            | ServeError::Mismatch { detail }
            | ServeError::Internal { detail } => detail.clone(),
            ServeError::PayloadTooLarge { limit, got } => {
                format!("body of {got} bytes exceeds the {limit}-byte cap")
            }
            ServeError::NotFound { path } => format!("no route at {path}"),
            ServeError::MethodNotAllowed { method } => {
                format!("method {method} not allowed on this route")
            }
            ServeError::Overloaded { depth } => {
                format!("batch queue full at depth {depth}; retry later")
            }
            ServeError::ShuttingDown => "server is draining for shutdown".into(),
        }
    }

    /// The structured JSON error body.
    pub fn body(&self) -> String {
        format!(
            "{{\"error\": {}, \"detail\": {}}}",
            string(self.code()),
            string(&self.detail())
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

impl std::error::Error for ServeError {}

impl From<MgError> for ServeError {
    fn from(e: MgError) -> ServeError {
        match e {
            MgError::InvalidInput { detail } => ServeError::Invalid { detail },
            MgError::Mismatch { detail } => ServeError::Mismatch { detail },
            other => ServeError::Internal {
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_obs::Json;

    #[test]
    fn every_variant_has_status_code_and_valid_body() {
        let all = [
            ServeError::BadRequest { detail: "x".into() },
            ServeError::Invalid { detail: "x".into() },
            ServeError::Mismatch { detail: "x".into() },
            ServeError::PayloadTooLarge { limit: 10, got: 20 },
            ServeError::NotFound {
                path: "/nope".into(),
            },
            ServeError::MethodNotAllowed {
                method: "PUT".into(),
            },
            ServeError::Overloaded { depth: 8 },
            ServeError::ShuttingDown,
            ServeError::Internal { detail: "x".into() },
        ];
        for e in all {
            assert!((400..=599).contains(&e.status()), "{e}");
            let v = Json::parse(&e.body()).expect("body is valid JSON");
            assert_eq!(v.get("error").unwrap().as_str(), Some(e.code()));
            assert!(v.get("detail").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn mg_errors_map_to_typed_rejections() {
        let e: ServeError = MgError::InvalidInput {
            detail: "id".into(),
        }
        .into();
        assert_eq!(e.status(), 400);
        let e: ServeError = MgError::Mismatch {
            detail: "job".into(),
        }
        .into();
        assert_eq!(e.status(), 409);
        let e: ServeError = MgError::BadMagic { found: *b"ELF\x7f" }.into();
        assert_eq!(e.status(), 500);
    }
}

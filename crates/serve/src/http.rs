//! A deliberately minimal HTTP/1.1 implementation over `std::net`.
//!
//! Scope: exactly what the inference endpoints need — request line,
//! headers, `Content-Length` bodies, keep-alive, and fixed-length JSON
//! responses. No chunked encoding, no TLS, no compression; anything
//! outside that scope is a typed 400. Limits are enforced *while*
//! reading (line length, header count, body cap), so a hostile peer
//! cannot balloon memory before validation runs.

use crate::error::ServeError;
use std::io::{BufRead, Read, Write};

/// Longest accepted request/header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;
/// Cap on the *total* bytes of all header lines in one request. Without
/// it a client could stream `MAX_HEADERS` lines of `MAX_LINE` bytes each
/// (~800 KiB) per request, or restart the count on keep-alive forever.
const MAX_HEADER_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: String,
    /// Whether the connection should serve another request after this
    /// one (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

/// Read one CRLF- (or LF-) terminated line, capped at [`MAX_LINE`].
/// `Ok(None)` is clean EOF before any byte of the line.
fn read_line(r: &mut impl BufRead) -> Result<Option<String>, ServeError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ServeError::BadRequest {
                    detail: "connection closed mid-line".into(),
                });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| ServeError::BadRequest {
                            detail: "request line is not UTF-8".into(),
                        });
                }
                if line.len() >= MAX_LINE {
                    return Err(ServeError::BadRequest {
                        detail: format!("header line exceeds {MAX_LINE} bytes"),
                    });
                }
                line.push(byte[0]);
            }
            Err(e)
                if line.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                // idle timeout between requests: close, don't 400
                return Ok(None);
            }
            Err(e) => {
                return Err(ServeError::BadRequest {
                    detail: format!("read failed: {e}"),
                })
            }
        }
    }
}

/// Read and validate one request. `Ok(None)` means the client closed
/// the connection cleanly between requests (normal keep-alive end).
pub fn read_request(
    r: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<HttpRequest>, ServeError> {
    let Some(request_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(ServeError::BadRequest {
                detail: format!("malformed request line {request_line:?}"),
            })
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::BadRequest {
            detail: format!("unsupported protocol {version:?}"),
        });
    }
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length: usize = 0;
    let mut header_bytes: usize = 0;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return Err(ServeError::BadRequest {
                detail: format!("more than {MAX_HEADERS} headers"),
            });
        }
        let line = read_line(r)?.ok_or_else(|| ServeError::BadRequest {
            detail: "connection closed inside headers".into(),
        })?;
        if line.is_empty() {
            break;
        }
        // +2 for the CRLF stripped by read_line; fail closed once the
        // running total passes the cap, before parsing the line
        header_bytes += line.len() + 2;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ServeError::PayloadTooLarge {
                limit: MAX_HEADER_BYTES,
                got: header_bytes,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::BadRequest {
                detail: format!("malformed header {line:?}"),
            });
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| ServeError::BadRequest {
                    detail: format!("unreadable Content-Length {value:?}"),
                })?;
                // reject before reading a byte of an over-large body
                if content_length > max_body {
                    return Err(ServeError::PayloadTooLarge {
                        limit: max_body,
                        got: content_length,
                    });
                }
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                return Err(ServeError::BadRequest {
                    detail: "chunked bodies are not supported; send Content-Length".into(),
                });
            }
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|e| ServeError::BadRequest {
            detail: format!("body shorter than Content-Length: {e}"),
        })?;
    let body = String::from_utf8(body).map_err(|_| ServeError::BadRequest {
        detail: "body is not UTF-8".into(),
    })?;
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Write one fixed-length JSON response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
        body
    )?;
    w.flush()
}

/// A keep-alive client connection for tests and benches: issues
/// requests sequentially over one TCP stream and parses the fixed-length
/// responses the server writes.
pub struct HttpClient {
    stream: std::io::BufReader<std::net::TcpStream>,
}

impl HttpClient {
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<HttpClient> {
        let stream = std::net::TcpStream::connect(addr)?;
        Ok(HttpClient {
            stream: std::io::BufReader::new(stream),
        })
    }

    /// Send one request and read the response: `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.get_mut().write_all(msg.as_bytes())?;
        self.read_response()
    }

    /// Send raw bytes (malformed-request tests) and read the response.
    pub fn request_raw(&mut self, raw: &[u8]) -> std::io::Result<(u16, String)> {
        self.stream.get_mut().write_all(raw)?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        self.stream.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line {status_line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.stream.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad Content-Length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("body not UTF-8"))?;
        Ok((status, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str, max_body: usize) -> Result<Option<HttpRequest>, ServeError> {
        read_request(&mut Cursor::new(raw.as_bytes()), max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/nodes HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"ids\":[0]}",
            1024,
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/nodes");
        assert_eq!(req.body, "{\"ids\":[0]}");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n", 64)
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n", 64).unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn eof_before_any_request_is_clean() {
        assert_eq!(parse("", 64).unwrap(), None);
    }

    #[test]
    fn malformed_requests_reject_typed() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", // truncated body
        ] {
            match parse(raw, 1024) {
                Err(ServeError::BadRequest { .. }) => {}
                other => panic!("{raw:?} must be a BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_bodies_reject_before_reading() {
        match parse("POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 10) {
            Err(ServeError::PayloadTooLarge {
                limit: 10,
                got: 100,
            }) => {}
            other => panic!("expected PayloadTooLarge, got {other:?}"),
        }
    }

    /// Yields a request line followed by header lines forever — a
    /// hostile client that never sends the blank line.
    struct EndlessHeaders {
        pos: usize,
        prefix: Vec<u8>,
        line: Vec<u8>,
    }

    impl Read for EndlessHeaders {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            for b in buf.iter_mut() {
                *b = if self.pos < self.prefix.len() {
                    let x = self.prefix[self.pos];
                    self.pos += 1;
                    x
                } else {
                    let off = (self.pos - self.prefix.len()) % self.line.len();
                    self.pos += 1;
                    self.line[off]
                };
            }
            Ok(buf.len())
        }
    }

    #[test]
    fn endless_header_stream_rejects_at_byte_cap() {
        let mut r = std::io::BufReader::new(EndlessHeaders {
            pos: 0,
            prefix: b"GET /healthz HTTP/1.1\r\n".to_vec(),
            line: format!("X-Pad: {}\r\n", "a".repeat(500)).into_bytes(),
        });
        match read_request(&mut r, 1024) {
            Err(ServeError::PayloadTooLarge { limit, got }) => {
                assert_eq!(limit, 8 * 1024);
                // rejected within one line of the cap, not megabytes later
                assert!(got <= 8 * 1024 + 512, "got = {got}");
            }
            other => panic!("expected PayloadTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn header_bytes_under_cap_still_parse() {
        // ~60 headers of ~100 bytes ≈ 6 KiB < 8 KiB, but > MAX default line
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..58 {
            raw.push_str(&format!("X-Filler-{i:03}: {}\r\n", "v".repeat(80)));
        }
        raw.push_str("\r\n");
        let req = parse(&raw, 64).unwrap().unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn response_writer_emits_parseable_http() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}

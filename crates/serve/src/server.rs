//! The concurrent HTTP server: accept loop, per-connection workers, the
//! model thread, and the telemetry thread.
//!
//! ## Threading model
//!
//! * **Acceptor** — blocks on `TcpListener::accept`, spawns one worker
//!   per connection (tracked by a gauge so shutdown can drain).
//! * **Workers** — parse HTTP, validate JSON, submit to the shared
//!   [`Batcher`] and block on their reply channel. Workers never touch
//!   the model.
//! * **Model thread** — the only thread that owns the [`FrozenModel`]
//!   (which holds `Rc`s and is deliberately not `Send`). It runs the
//!   batcher's flush loop: one deterministic forward per flush, pure
//!   gathers per request. Under `--features parallel` that forward's
//!   kernels run on mg-runtime's shared global pool, so one flush uses
//!   every configured core (`MG_NUM_THREADS`).
//! * **Telemetry thread** — owns the mg-obs [`Trace`] sink; workers send
//!   it one `serve` record per request over a channel, keeping file I/O
//!   off the latency path and the non-`Send` sink on one thread.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops the acceptor, waits for in-flight
//! connections to finish, closes the batcher (which *drains*: accepted
//! requests still execute and answer), joins the model thread, then
//! flushes and joins telemetry. Submits during the drain are rejected
//! with a typed `shutting_down` body.

use crate::api::{healthz_body, ApiRequest, LinksRequest, NodesRequest};
use crate::batch::{BatchCfg, BatchMeta, Batcher};
use crate::error::ServeError;
use crate::http::{read_request, write_response, HttpRequest};
use crate::service::ModelService;
use mg_eval::FrozenModel;
use mg_nn::GraphCtx;
use mg_obs::{ServeRecord, Trace};
use mg_tensor::MgError;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle keep-alive connections are closed after this long so a silent
/// peer cannot stall shutdown indefinitely.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// Server knobs and their environment variables.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`MG_SERVE_ADDR`); port 0 picks an ephemeral port.
    pub addr: String,
    /// Most requests coalesced into one flush (`MG_SERVE_BATCH`).
    pub max_batch: usize,
    /// Longest a flush waits for stragglers, µs (`MG_SERVE_WAIT_US`).
    pub max_wait: Duration,
    /// Most requests pending before backpressure (`MG_SERVE_QUEUE`).
    pub max_queue: usize,
    /// Request body cap, bytes (`MG_SERVE_MAX_BODY`).
    pub max_body: usize,
    /// Per-request item cap: ids or pairs (`MG_SERVE_MAX_ITEMS`).
    pub max_items: usize,
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            max_batch: 32,
            max_wait: Duration::from_micros(1000),
            max_queue: 1024,
            max_body: 1 << 20,
            max_items: 4096,
        }
    }
}

impl ServeConfig {
    /// Resolve every knob from the environment over the defaults.
    pub fn from_env() -> ServeConfig {
        let d = ServeConfig::default();
        ServeConfig {
            addr: std::env::var("MG_SERVE_ADDR").unwrap_or(d.addr),
            max_batch: env_or("MG_SERVE_BATCH", d.max_batch).max(1),
            max_wait: Duration::from_micros(env_or(
                "MG_SERVE_WAIT_US",
                d.max_wait.as_micros() as u64,
            )),
            max_queue: env_or("MG_SERVE_QUEUE", d.max_queue).max(1),
            max_body: env_or("MG_SERVE_MAX_BODY", d.max_body),
            max_items: env_or("MG_SERVE_MAX_ITEMS", d.max_items),
        }
    }
}

/// Identity facts served by `/healthz` and `/statsz`.
#[derive(Clone, Debug)]
struct ModelInfo {
    model: String,
    dataset: String,
    task: String,
    n_nodes: usize,
    pinned_structure: bool,
}

/// Counters behind `/statsz`.
#[derive(Default)]
struct StatsInner {
    requests: u64,
    by_status: BTreeMap<u16, u64>,
    by_endpoint: BTreeMap<String, u64>,
    rejected_overload: u64,
    flushes: u64,
    /// flush size -> number of flushes of that size
    batch_hist: BTreeMap<usize, u64>,
    queue_ns_total: u64,
    forward_ns_total: u64,
}

struct ConnGauge {
    count: Mutex<usize>,
    zero: Condvar,
}

struct Shared {
    cfg: ServeConfig,
    batcher: Batcher<ApiRequest, crate::api::ApiResponse>,
    stats: Mutex<StatsInner>,
    info: OnceLock<ModelInfo>,
    stopping: AtomicBool,
    conns: ConnGauge,
    started: Instant,
    trace_tx: Mutex<Option<mpsc::Sender<ServeRecord>>>,
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    model: JoinHandle<()>,
    telemetry: JoinHandle<()>,
}

impl Server {
    /// Bind, load the model, and start serving.
    ///
    /// `init` runs on the model thread (the model may own `Rc`s); its
    /// error fails `start` — a server that cannot serve must not come
    /// up. The trace sink is mg-obs's `MG_TRACE` contract: unset means
    /// every record is a no-op.
    pub fn start<F>(cfg: ServeConfig, init: F) -> Result<Server, MgError>
    where
        F: FnOnce() -> Result<(FrozenModel, GraphCtx), MgError> + Send + 'static,
    {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| MgError::InvalidInput {
            detail: format!("cannot bind {}: {e}", cfg.addr),
        })?;
        let addr = listener.local_addr().map_err(|e| MgError::InvalidInput {
            detail: format!("no local address: {e}"),
        })?;

        let (trace_tx, trace_rx) = mpsc::channel::<ServeRecord>();
        let telemetry = std::thread::Builder::new()
            .name("mg-serve-trace".into())
            .spawn(move || {
                let mut trace = Trace::from_env("serve");
                for rec in trace_rx {
                    trace.serve(&rec);
                    trace.flush();
                }
            })
            .expect("spawn telemetry thread");

        let shared = Arc::new(Shared {
            batcher: Batcher::new(BatchCfg {
                max_batch: cfg.max_batch,
                max_wait: cfg.max_wait,
                max_queue: cfg.max_queue,
            }),
            stats: Mutex::new(StatsInner::default()),
            info: OnceLock::new(),
            stopping: AtomicBool::new(false),
            conns: ConnGauge {
                count: Mutex::new(0),
                zero: Condvar::new(),
            },
            started: Instant::now(),
            trace_tx: Mutex::new(Some(trace_tx)),
            cfg,
        });

        let (ready_tx, ready_rx) = mpsc::channel::<Result<ModelInfo, MgError>>();
        let model = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mg-serve-model".into())
                .spawn(move || {
                    let svc = match init().and_then(|(m, ctx)| ModelService::new(m, ctx)) {
                        Ok(svc) => svc,
                        Err(e) => {
                            let _ = ready_tx.send(Err(e));
                            return;
                        }
                    };
                    let meta = svc.model().meta();
                    let _ = ready_tx.send(Ok(ModelInfo {
                        model: meta.model.clone(),
                        dataset: meta.dataset.clone(),
                        task: meta.task.clone(),
                        n_nodes: svc.n_nodes(),
                        pinned_structure: svc.model().structure().is_some(),
                    }));
                    shared.batcher.serve_loop(|reqs| {
                        let n = reqs.len();
                        let out = svc.execute(reqs);
                        let mut st = shared.stats.lock().unwrap();
                        st.flushes += 1;
                        *st.batch_hist.entry(n).or_insert(0) += 1;
                        st.forward_ns_total += out.1;
                        out
                    });
                })
                .expect("spawn model thread")
        };

        let info = ready_rx.recv().map_err(|_| MgError::InvalidInput {
            detail: "model thread died during startup".into(),
        })??;
        shared.info.set(info).expect("info set once");

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mg-serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.stopping.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // gauge up BEFORE the worker exists, so shutdown
                        // cannot observe zero while a spawn is in flight
                        *shared.conns.count.lock().unwrap() += 1;
                        let shared = Arc::clone(&shared);
                        let _ = std::thread::Builder::new()
                            .name("mg-serve-conn".into())
                            .spawn(move || {
                                handle_conn(stream, &shared);
                                let mut n = shared.conns.count.lock().unwrap();
                                *n -= 1;
                                if *n == 0 {
                                    shared.conns.zero.notify_all();
                                }
                            });
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(Server {
            addr,
            shared,
            acceptor,
            model,
            telemetry,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections
    /// and queued requests, then tear the threads down in order.
    pub fn shutdown(self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // unblock the acceptor; it checks `stopping` before handling
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        {
            let mut n = self.shared.conns.count.lock().unwrap();
            while *n > 0 {
                n = self.shared.conns.zero.wait(n).unwrap();
            }
        }
        self.shared.batcher.close();
        let _ = self.model.join();
        // dropping the last sender ends the telemetry loop
        self.shared.trace_tx.lock().unwrap().take();
        let _ = self.telemetry.join();
    }
}

/// Serve one connection until close, error, or shutdown.
fn handle_conn(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, shared.cfg.max_body) {
            Ok(None) => break, // clean close (or idle timeout)
            Ok(Some(req)) => {
                let keep = req.keep_alive && !shared.stopping.load(Ordering::SeqCst);
                let (status, body, meta, items) = route(&req, shared);
                record(shared, &req.path, status, items, meta);
                if write_response(&mut writer, status, &body, keep).is_err() || !keep {
                    break;
                }
            }
            Err(e) => {
                // the request never parsed; answer typed and close
                record(shared, "?", e.status(), 0, BatchMeta::default());
                let _ = write_response(&mut writer, e.status(), &e.body(), false);
                break;
            }
        }
    }
}

/// `(status, body, batch meta, items asked about)` for one request.
type Routed = (u16, String, BatchMeta, usize);

fn route(req: &HttpRequest, shared: &Shared) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let info = shared.info.get().expect("set before serving");
            let body = healthz_body(&info.model, &info.dataset, &info.task, info.n_nodes);
            (200, body, BatchMeta::default(), 0)
        }
        ("GET", "/statsz") => (200, stats_body(shared), BatchMeta::default(), 0),
        ("POST", "/v1/nodes") => {
            let parsed =
                NodesRequest::from_json(&req.body, shared.cfg.max_items).map(ApiRequest::Nodes);
            answer(shared, parsed)
        }
        ("POST", "/v1/links") => {
            let parsed =
                LinksRequest::from_json(&req.body, shared.cfg.max_items).map(ApiRequest::Links);
            answer(shared, parsed)
        }
        (method, "/v1/nodes" | "/v1/links" | "/healthz" | "/statsz") => {
            reject(ServeError::MethodNotAllowed {
                method: method.to_string(),
            })
        }
        (_, path) => reject(ServeError::NotFound { path: path.into() }),
    }
}

fn reject(e: ServeError) -> Routed {
    (e.status(), e.body(), BatchMeta::default(), 0)
}

/// Run one parsed API request through the batcher and render the result.
fn answer(shared: &Shared, parsed: Result<ApiRequest, ServeError>) -> Routed {
    let req = match parsed {
        Ok(req) => req,
        Err(e) => return reject(e),
    };
    let items = req.items();
    let rx = match shared.batcher.submit(req) {
        Ok(rx) => rx,
        Err(e) => {
            if matches!(e, ServeError::Overloaded { .. }) {
                shared.stats.lock().unwrap().rejected_overload += 1;
            }
            return reject(e);
        }
    };
    let Ok((result, meta)) = rx.recv() else {
        return reject(ServeError::Internal {
            detail: "model thread terminated".into(),
        });
    };
    match result {
        Ok(resp) => (200, resp.to_json(), meta, items),
        Err(e) => (e.status(), e.body(), meta, items),
    }
}

/// The `/statsz` document: counters, batching shape, pool facts.
fn stats_body(shared: &Shared) -> String {
    let info = shared.info.get().expect("set before serving");
    let st = shared.stats.lock().unwrap();
    let map = |m: &BTreeMap<u16, u64>| {
        let kv: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        format!("{{{}}}", kv.join(", "))
    };
    let by_status = map(&st.by_status);
    let by_endpoint: Vec<String> = st
        .by_endpoint
        .iter()
        .map(|(k, v)| format!("{}: {v}", mg_obs::json::string(k)))
        .collect();
    let hist: Vec<String> = st
        .batch_hist
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!(
        concat!(
            "{{\"uptime_ms\": {}, \"model\": {}, \"dataset\": {}, \"task\": {}, ",
            "\"n_nodes\": {}, \"pinned_structure\": {}, \"pool_threads\": {}, ",
            "\"requests\": {}, \"by_status\": {}, \"by_endpoint\": {{{}}}, ",
            "\"rejected_overload\": {}, \"queue_depth\": {}, ",
            "\"batch\": {{\"max_batch\": {}, \"max_wait_us\": {}, \"flushes\": {}, ",
            "\"hist\": {{{}}}}}, \"queue_ns_total\": {}, \"forward_ns_total\": {}}}"
        ),
        shared.started.elapsed().as_millis(),
        mg_obs::json::string(&info.model),
        mg_obs::json::string(&info.dataset),
        mg_obs::json::string(&info.task),
        info.n_nodes,
        info.pinned_structure,
        mg_runtime::current_threads(),
        st.requests,
        by_status,
        by_endpoint.join(", "),
        st.rejected_overload,
        shared.batcher.depth(),
        shared.cfg.max_batch,
        shared.cfg.max_wait.as_micros(),
        st.flushes,
        hist.join(", "),
        st.queue_ns_total,
        st.forward_ns_total,
    )
}

/// Update counters and emit the per-request `serve` trace record.
fn record(shared: &Shared, endpoint: &str, status: u16, items: usize, meta: BatchMeta) {
    {
        let mut st = shared.stats.lock().unwrap();
        st.requests += 1;
        *st.by_status.entry(status).or_insert(0) += 1;
        *st.by_endpoint.entry(endpoint.to_string()).or_insert(0) += 1;
        st.queue_ns_total += meta.queue_ns;
    }
    let tx = shared.trace_tx.lock().unwrap().clone();
    if let Some(tx) = tx {
        let _ = tx.send(ServeRecord {
            endpoint: endpoint.to_string(),
            status,
            items,
            batch_size: meta.batch_size,
            queue_ns: meta.queue_ns,
            forward_ns: meta.forward_ns,
        });
    }
}

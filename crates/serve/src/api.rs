//! The wire types of the inference API, shared by online serving
//! (mg-serve's HTTP endpoints) and offline inference (the `infer`
//! bench binary) so the two cannot drift.
//!
//! Encoding uses mg-obs's JSON helpers: floats render as Rust's shortest
//! round-tripping decimal, so an `f64` survives encode → decode with its
//! exact bit pattern — the property the batched-equals-sequential
//! bitwise guarantee is stated in terms of.

use crate::error::ServeError;
use mg_obs::json::{number, string};
use mg_obs::Json;

/// `POST /v1/nodes` body: node ids to embed and classify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodesRequest {
    pub ids: Vec<usize>,
}

/// `POST /v1/nodes` response: one embedding row and one argmax label per
/// requested id, in request order.
#[derive(Clone, Debug, PartialEq)]
pub struct NodesResponse {
    pub embeddings: Vec<Vec<f64>>,
    pub labels: Vec<usize>,
}

/// `POST /v1/links` body: node pairs to score.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinksRequest {
    pub pairs: Vec<(usize, usize)>,
}

/// `POST /v1/links` response: `sigma(h_u . h_v)` per pair, in request
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct LinksResponse {
    pub scores: Vec<f64>,
}

/// One request as the micro-batcher sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiRequest {
    Nodes(NodesRequest),
    Links(LinksRequest),
}

/// One response as the micro-batcher produces it.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiResponse {
    Nodes(NodesResponse),
    Links(LinksResponse),
}

impl ApiRequest {
    /// Items (ids or pairs) this request asks about.
    pub fn items(&self) -> usize {
        match self {
            ApiRequest::Nodes(r) => r.ids.len(),
            ApiRequest::Links(r) => r.pairs.len(),
        }
    }
}

/// A JSON number that must be a non-negative integer (a node id).
fn as_index(v: &Json, what: &str) -> Result<usize, ServeError> {
    let x = v.as_f64().ok_or_else(|| ServeError::BadRequest {
        detail: format!("{what} must be a number"),
    })?;
    if x.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&x) {
        return Err(ServeError::BadRequest {
            detail: format!("{what} must be a non-negative integer, got {x}"),
        });
    }
    Ok(x as usize)
}

fn parse_body(body: &str) -> Result<Json, ServeError> {
    Json::parse(body).map_err(|e| ServeError::BadRequest {
        detail: format!("body is not valid JSON: {e}"),
    })
}

fn items_array<'j>(v: &'j Json, key: &str, max_items: usize) -> Result<&'j [Json], ServeError> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::BadRequest {
            detail: format!("body must be an object with an array field {key:?}"),
        })?;
    if arr.len() > max_items {
        return Err(ServeError::Invalid {
            detail: format!(
                "{} items exceed the per-request cap of {max_items}",
                arr.len()
            ),
        });
    }
    Ok(arr)
}

impl NodesRequest {
    /// Decode a `/v1/nodes` body, rejecting anything but
    /// `{"ids": [int, ...]}` with at most `max_items` ids.
    pub fn from_json(body: &str, max_items: usize) -> Result<NodesRequest, ServeError> {
        let v = parse_body(body)?;
        let ids = items_array(&v, "ids", max_items)?
            .iter()
            .map(|x| as_index(x, "node id"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NodesRequest { ids })
    }

    pub fn to_json(&self) -> String {
        let ids: Vec<String> = self.ids.iter().map(|i| i.to_string()).collect();
        format!("{{\"ids\": [{}]}}", ids.join(", "))
    }
}

impl NodesResponse {
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .embeddings
            .iter()
            .map(|row| {
                let xs: Vec<String> = row.iter().map(|&x| number(x)).collect();
                format!("[{}]", xs.join(", "))
            })
            .collect();
        let labels: Vec<String> = self.labels.iter().map(|l| l.to_string()).collect();
        format!(
            "{{\"n\": {}, \"embeddings\": [{}], \"labels\": [{}]}}",
            self.embeddings.len(),
            rows.join(", "),
            labels.join(", ")
        )
    }

    /// Decode a `/v1/nodes` response body (clients, benches, tests).
    pub fn from_json(body: &str) -> Result<NodesResponse, ServeError> {
        let v = parse_body(body)?;
        let embeddings = v
            .get("embeddings")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::BadRequest {
                detail: "response lacks \"embeddings\"".into(),
            })?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| ServeError::BadRequest {
                        detail: "embedding row is not an array".into(),
                    })?
                    .iter()
                    .map(|x| {
                        x.as_f64().ok_or_else(|| ServeError::BadRequest {
                            detail: "embedding entry is not a number".into(),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let labels = v
            .get("labels")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::BadRequest {
                detail: "response lacks \"labels\"".into(),
            })?
            .iter()
            .map(|x| as_index(x, "label"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NodesResponse { embeddings, labels })
    }
}

impl LinksRequest {
    /// Decode a `/v1/links` body, rejecting anything but
    /// `{"pairs": [[int, int], ...]}` with at most `max_items` pairs.
    pub fn from_json(body: &str, max_items: usize) -> Result<LinksRequest, ServeError> {
        let v = parse_body(body)?;
        let pairs = items_array(&v, "pairs", max_items)?
            .iter()
            .map(|p| {
                let p =
                    p.as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| ServeError::BadRequest {
                            detail: "each pair must be a two-element array".into(),
                        })?;
                Ok((as_index(&p[0], "node id")?, as_index(&p[1], "node id")?))
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(LinksRequest { pairs })
    }

    pub fn to_json(&self) -> String {
        let pairs: Vec<String> = self
            .pairs
            .iter()
            .map(|(u, v)| format!("[{u}, {v}]"))
            .collect();
        format!("{{\"pairs\": [{}]}}", pairs.join(", "))
    }
}

impl LinksResponse {
    pub fn to_json(&self) -> String {
        let xs: Vec<String> = self.scores.iter().map(|&x| number(x)).collect();
        format!(
            "{{\"n\": {}, \"scores\": [{}]}}",
            self.scores.len(),
            xs.join(", ")
        )
    }

    /// Decode a `/v1/links` response body (clients, benches, tests).
    pub fn from_json(body: &str) -> Result<LinksResponse, ServeError> {
        let v = parse_body(body)?;
        let scores = v
            .get("scores")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::BadRequest {
                detail: "response lacks \"scores\"".into(),
            })?
            .iter()
            .map(|x| {
                x.as_f64().ok_or_else(|| ServeError::BadRequest {
                    detail: "score is not a number".into(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LinksResponse { scores })
    }
}

impl ApiResponse {
    /// The JSON body this response serializes to.
    pub fn to_json(&self) -> String {
        match self {
            ApiResponse::Nodes(r) => r.to_json(),
            ApiResponse::Links(r) => r.to_json(),
        }
    }
}

/// A health/identity document for `GET /healthz`.
pub fn healthz_body(model: &str, dataset: &str, task: &str, n_nodes: usize) -> String {
    format!(
        "{{\"status\": \"ok\", \"model\": {}, \"dataset\": {}, \"task\": {}, \"n_nodes\": {}}}",
        string(model),
        string(dataset),
        string(task),
        n_nodes
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_request_roundtrips() {
        let req = NodesRequest { ids: vec![0, 7, 3] };
        let back = NodesRequest::from_json(&req.to_json(), 16).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn links_request_roundtrips() {
        let req = LinksRequest {
            pairs: vec![(0, 1), (5, 2)],
        };
        let back = LinksRequest::from_json(&req.to_json(), 16).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn responses_roundtrip_bitwise() {
        // values chosen to stress shortest-round-trip float printing
        let resp = NodesResponse {
            embeddings: vec![
                vec![0.1 + 0.2, -0.0, 1e-300],
                vec![f64::MIN_POSITIVE, 3.5, 2.0],
            ],
            labels: vec![4, 0],
        };
        let back = NodesResponse::from_json(&resp.to_json()).unwrap();
        for (a, b) in resp
            .embeddings
            .iter()
            .flatten()
            .zip(back.embeddings.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.labels, resp.labels);
        let resp = LinksResponse {
            scores: vec![0.5, 1.0 / 3.0],
        };
        let back = LinksResponse::from_json(&resp.to_json()).unwrap();
        for (a, b) in resp.scores.iter().zip(&back.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn malformed_bodies_reject_typed() {
        for bad in [
            "",                   // empty
            "not json",           // unparseable
            "{\"ids\": 3}",       // wrong type
            "{\"pairs\": [[0]]}", // arity
            "{\"ids\": [1.5]}",   // non-integer id
            "{\"ids\": [-1]}",    // negative id
            "{}",                 // missing field
        ] {
            let n = NodesRequest::from_json(bad, 16);
            let l = LinksRequest::from_json(bad, 16);
            assert!(n.is_err() && l.is_err(), "accepted {bad:?}");
        }
        // over-large requests are a distinct, typed rejection
        let huge = NodesRequest { ids: vec![1; 17] }.to_json();
        match NodesRequest::from_json(&huge, 16) {
            Err(ServeError::Invalid { .. }) => {}
            other => panic!("cap must reject as invalid_input, got {other:?}"),
        }
    }
}

//! The model-side executor: one frozen forward per flush, answered by
//! pure gathers.
//!
//! [`ModelService`] owns the (non-`Send`) [`FrozenModel`] and its
//! serving [`GraphCtx`]; it lives on the flusher thread. A flush of any
//! composition — node lookups and link scorings interleaved — costs one
//! deterministic forward; each request is then answered from the same
//! output matrix through the `FrozenModel::*_from` batch entry points.
//! Because the forward does not depend on the requests and the gathers
//! are per-request, the response to a request is bitwise identical
//! whether it was flushed alone or with arbitrary companions — the
//! determinism claim the e2e suite verifies over real sockets.

use crate::api::{ApiRequest, ApiResponse, LinksResponse, NodesResponse};
use crate::error::ServeError;
use mg_eval::FrozenModel;
use mg_nn::GraphCtx;
use mg_tensor::{Matrix, MgError};
use std::time::Instant;

/// A frozen model bound to the graph it serves.
pub struct ModelService {
    model: FrozenModel,
    ctx: GraphCtx,
}

impl ModelService {
    /// Bind `model` to `ctx`, validating up front that the pairing can
    /// serve node outputs at all (feature width, task kind) — a broken
    /// pairing must fail at startup, not on the first request.
    pub fn new(model: FrozenModel, ctx: GraphCtx) -> Result<ModelService, MgError> {
        model.node_outputs(&ctx)?;
        Ok(ModelService { model, ctx })
    }

    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// Nodes in the serving graph.
    pub fn n_nodes(&self) -> usize {
        self.ctx.graph.n()
    }

    /// One full deterministic forward over the serving graph.
    pub fn forward(&self) -> Result<Matrix, MgError> {
        self.model.node_outputs(&self.ctx)
    }

    /// Execute one flush: a single forward, then per-request gathers.
    /// Returns one result per request (in order) and the forward's wall
    /// time in ns. A request that fails (out-of-range id) fails alone
    /// and completely; its companions are unaffected.
    pub fn execute(&self, reqs: Vec<ApiRequest>) -> (Vec<Result<ApiResponse, ServeError>>, u64) {
        let timer = Instant::now();
        let h = match self.forward() {
            Ok(h) => h,
            Err(e) => {
                // forward failure poisons the whole flush — but typed,
                // per request, with no partial bodies
                let e: ServeError = e.into();
                let n = reqs.len();
                return (vec![Err(e); n], timer.elapsed().as_nanos() as u64);
            }
        };
        let forward_ns = timer.elapsed().as_nanos() as u64;
        let results = reqs
            .into_iter()
            .map(|req| Self::answer_from(&h, req))
            .collect();
        (results, forward_ns)
    }

    /// Sequential reference path: execute one request as a batch of one.
    /// The `infer` bench serves its offline forwards through this, so
    /// offline and online inference share one code path by construction.
    pub fn handle_one(&self, req: ApiRequest) -> Result<ApiResponse, ServeError> {
        let (mut results, _) = self.execute(vec![req]);
        results.pop().expect("execute answers every request")
    }

    /// Answer one request from a computed output matrix (pure gather).
    fn answer_from(h: &Matrix, req: ApiRequest) -> Result<ApiResponse, ServeError> {
        match req {
            ApiRequest::Nodes(r) => {
                let embeddings = FrozenModel::embeddings_from(h, &r.ids)?;
                let labels = FrozenModel::labels_from(h, &r.ids)?;
                Ok(ApiResponse::Nodes(NodesResponse { embeddings, labels }))
            }
            ApiRequest::Links(r) => {
                let scores = FrozenModel::link_scores_from(h, &r.pairs)?;
                Ok(ApiResponse::Links(LinksResponse { scores }))
            }
        }
    }
}

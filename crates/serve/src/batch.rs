//! The micro-batching queue: coalesce concurrent requests into one
//! batched execution per flush window.
//!
//! Worker threads [`Batcher::submit`] requests and block on a per-request
//! reply channel; a single flusher thread runs [`Batcher::serve_loop`],
//! draining up to `max_batch` requests per flush (waiting at most
//! `max_wait` after the first pending request for stragglers) and
//! executing them with one callback. The executor is created *inside*
//! the flusher thread, so it may own non-`Send` state — mg-serve's
//! `FrozenModel` lives there.
//!
//! ## Determinism
//!
//! The batcher never merges, reorders or splits the *contents* of
//! requests; a flush hands the executor the pending requests in
//! submission order and returns one result per request. With mg-serve's
//! executor — one deterministic frozen forward per flush, answered by
//! pure gathers — any interleaving of requests across flush windows
//! yields bitwise the results of executing them one at a time (the
//! `batch_prop` suite and the e2e test pin this).
//!
//! ## Fail-closed backpressure
//!
//! The queue is bounded: a submit against a full queue returns
//! [`ServeError::Overloaded`] immediately instead of buffering without
//! limit, and a submit after [`Batcher::close`] returns
//! [`ServeError::ShuttingDown`]. Close drains: requests accepted before
//! the close are still executed and answered.

use crate::error::ServeError;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batching knobs (see `ServeConfig` for the env mapping).
#[derive(Clone, Copy, Debug)]
pub struct BatchCfg {
    /// Most requests coalesced into one flush.
    pub max_batch: usize,
    /// Longest a flush waits for stragglers after its first request.
    pub max_wait: Duration,
    /// Most requests pending before submits are rejected.
    pub max_queue: usize,
}

/// How a request's flush treated it, for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchMeta {
    /// Requests in the flush this one rode in.
    pub batch_size: usize,
    /// Time spent queued before the flush started, ns.
    pub queue_ns: u64,
    /// Wall time of the flush's execution, ns (shared by the batch).
    pub forward_ns: u64,
}

/// What a submitter receives back.
pub type Reply<Resp> = (Result<Resp, ServeError>, BatchMeta);

struct Pending<Req, Resp> {
    req: Req,
    queued: Instant,
    reply: mpsc::Sender<Reply<Resp>>,
}

struct Inner<Req, Resp> {
    queue: VecDeque<Pending<Req, Resp>>,
    closed: bool,
}

/// The shared queue. `Req`/`Resp` cross from worker threads to the
/// flusher thread and back, so both must be `Send`; the executor state
/// need not be.
pub struct Batcher<Req, Resp> {
    cfg: BatchCfg,
    inner: Mutex<Inner<Req, Resp>>,
    nonempty: Condvar,
}

impl<Req: Send, Resp: Send> Batcher<Req, Resp> {
    pub fn new(cfg: BatchCfg) -> Batcher<Req, Resp> {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.max_queue >= 1, "max_queue must be at least 1");
        Batcher {
            cfg,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    pub fn cfg(&self) -> &BatchCfg {
        &self.cfg
    }

    /// Requests currently pending (statsz).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Enqueue one request. Returns the channel its reply will arrive
    /// on, or a typed rejection if the queue is full or draining.
    pub fn submit(&self, req: Req) -> Result<mpsc::Receiver<Reply<Resp>>, ServeError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(ServeError::ShuttingDown);
        }
        if inner.queue.len() >= self.cfg.max_queue {
            return Err(ServeError::Overloaded {
                depth: inner.queue.len(),
            });
        }
        let (tx, rx) = mpsc::channel();
        inner.queue.push_back(Pending {
            req,
            queued: Instant::now(),
            reply: tx,
        });
        drop(inner);
        self.nonempty.notify_all();
        Ok(rx)
    }

    /// Stop accepting new requests and wake the flusher so it can drain
    /// what was already accepted and exit.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }

    /// Collect the next batch: blocks until at least one request is
    /// pending, gives stragglers `max_wait` to pile on (or until the
    /// batch is full), then drains up to `max_batch` requests. Returns
    /// `None` once the batcher is closed and fully drained.
    fn next_batch(&self) -> Option<Vec<Pending<Req, Resp>>> {
        let mut inner = self.inner.lock().unwrap();
        while inner.queue.is_empty() {
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
        let deadline = Instant::now() + self.cfg.max_wait;
        while inner.queue.len() < self.cfg.max_batch && !inner.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self.nonempty.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let take = inner.queue.len().min(self.cfg.max_batch);
        Some(inner.queue.drain(..take).collect())
    }

    /// The flusher loop. `exec` receives each flush's requests in
    /// submission order and must return one result per request plus the
    /// execution's wall time in ns; results are delivered to the
    /// matching submitters. Runs until [`Batcher::close`] and the queue
    /// is drained.
    pub fn serve_loop<F>(&self, mut exec: F)
    where
        F: FnMut(Vec<Req>) -> (Vec<Result<Resp, ServeError>>, u64),
    {
        while let Some(batch) = self.next_batch() {
            let flushed = Instant::now();
            let batch_size = batch.len();
            type Waiter<Resp> = (Instant, mpsc::Sender<Reply<Resp>>);
            let (reqs, waiters): (Vec<Req>, Vec<Waiter<Resp>>) = batch
                .into_iter()
                .map(|p| (p.req, (p.queued, p.reply)))
                .unzip();
            let (results, forward_ns) = exec(reqs);
            assert_eq!(
                results.len(),
                batch_size,
                "executor must answer every request in the batch"
            );
            for (result, (queued, reply)) in results.into_iter().zip(waiters) {
                let meta = BatchMeta {
                    batch_size,
                    queue_ns: flushed.duration_since(queued).as_nanos() as u64,
                    forward_ns,
                };
                // a submitter that gave up (hung up) is not an error
                let _ = reply.send((result, meta));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cfg(max_batch: usize, wait_us: u64, max_queue: usize) -> BatchCfg {
        BatchCfg {
            max_batch,
            max_wait: Duration::from_micros(wait_us),
            max_queue,
        }
    }

    #[test]
    fn backpressure_rejects_when_full_and_recovers_after_drain() {
        let b: Batcher<u32, u32> = Batcher::new(cfg(4, 100, 2));
        let r1 = b.submit(1).unwrap();
        let _r2 = b.submit(2).unwrap();
        match b.submit(3) {
            Err(ServeError::Overloaded { depth: 2 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // no flusher running: drain manually through next_batch
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
        for p in batch {
            let _ = p.reply.send((Ok(p.req * 10), BatchMeta::default()));
        }
        assert_eq!(r1.recv().unwrap().0.unwrap(), 10);
        // space freed: submits work again
        b.submit(4).expect("queue has space after the drain");
    }

    #[test]
    fn close_drains_accepted_requests_then_stops() {
        let b: Arc<Batcher<u32, u32>> = Arc::new(Batcher::new(cfg(3, 50, 64)));
        let receivers: Vec<_> = (0..7).map(|i| b.submit(i).unwrap()).collect();
        b.close();
        match b.submit(99) {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("submit after close must fail, got {other:?}"),
        }
        let flusher = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let mut batches = 0u32;
                b.serve_loop(|reqs| {
                    batches += 1;
                    let out = reqs.into_iter().map(|r| Ok(r + 100)).collect();
                    (out, 5)
                });
                batches
            })
        };
        for (i, rx) in receivers.into_iter().enumerate() {
            let (result, meta) = rx.recv().expect("drained before exit");
            assert_eq!(result.unwrap(), i as u32 + 100);
            assert!(meta.batch_size >= 1 && meta.batch_size <= 3);
            assert_eq!(meta.forward_ns, 5);
        }
        // 7 requests at max_batch 3 need at least 3 flushes
        assert!(flusher.join().unwrap() >= 3);
    }

    #[test]
    fn batch_size_never_exceeds_cap() {
        let b: Arc<Batcher<u64, u64>> = Arc::new(Batcher::new(cfg(2, 200, 1024)));
        let receivers: Vec<_> = (0..20).map(|i| b.submit(i).unwrap()).collect();
        b.close();
        let flusher = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                b.serve_loop(|reqs| {
                    assert!(reqs.len() <= 2);
                    (reqs.into_iter().map(Ok).collect(), 0)
                })
            })
        };
        for rx in receivers {
            rx.recv().unwrap().0.unwrap();
        }
        flusher.join().unwrap();
    }
}

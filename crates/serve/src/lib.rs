//! mg-serve: a concurrent online inference service over a frozen
//! AdamGNN checkpoint.
//!
//! The server loads one [`mg_eval::FrozenModel`] at startup and exposes
//! it over hand-rolled HTTP/1.1 on `std::net` (no external deps):
//!
//! * `POST /v1/nodes` — `{"ids": [..]}` → embeddings + argmax labels
//! * `POST /v1/links` — `{"pairs": [[u,v], ..]}` → link scores
//! * `GET /healthz` — model/dataset/task identity
//! * `GET /statsz` — request counters, batch-size histogram, pool facts
//!
//! Concurrent requests are coalesced by a micro-batcher ([`batch`]) into
//! one frozen forward per flush window; because the forward is
//! request-independent and answers are pure gathers, responses are
//! bitwise identical however requests interleave ([`service`]). Every
//! rejection path is typed ([`error`]) and every request emits one
//! mg-obs `serve` trace record.
//!
//! See `DESIGN.md` ("mg-serve") for the threading model and the
//! determinism argument in full.

pub mod api;
pub mod batch;
pub mod error;
pub mod http;
pub mod server;
pub mod service;

pub use api::{ApiRequest, ApiResponse, LinksRequest, LinksResponse, NodesRequest, NodesResponse};
pub use batch::{BatchCfg, BatchMeta, Batcher};
pub use error::ServeError;
pub use http::HttpClient;
pub use server::{ServeConfig, Server};
pub use service::ModelService;

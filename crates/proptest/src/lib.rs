//! Vendored, dependency-free stand-in for the parts of crates.io
//! `proptest` that this workspace uses (the build environment is offline).
//!
//! Semantics: each `#[test]` inside [`proptest!`] runs
//! [`ProptestConfig::cases`] times with freshly generated inputs from a
//! deterministic per-test RNG stream. `prop_assume!` rejects a case and
//! regenerates it; `prop_assert*!` failures panic with the message.
//! There is **no shrinking** — failures report the assertion message and
//! case number, and the deterministic seeding makes every failure exactly
//! reproducible by rerunning the test.

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))] // optional
///     #[test]
///     fn my_prop(x in 0..100usize, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal: expand each `fn name(pat in strategy, ...) { body }`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                &__pt_config,
                concat!(module_path!(), "::", stringify!($name)),
                |__pt_rng| {
                    $(let $pat =
                        $crate::strategy::Strategy::new_value(&($strat), __pt_rng);)*
                    let __pt_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    __pt_result
                },
            );
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pt_l, __pt_r) => {
                $crate::prop_assert!(
                    *__pt_l == *__pt_r,
                    "assertion failed: `{:?}` == `{:?}`",
                    __pt_l,
                    __pt_r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__pt_l, __pt_r) => {
                $crate::prop_assert!(*__pt_l == *__pt_r, $($fmt)*);
            }
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pt_l, __pt_r) => {
                $crate::prop_assert!(
                    *__pt_l != *__pt_r,
                    "assertion failed: `{:?}` != `{:?}`",
                    __pt_l,
                    __pt_r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__pt_l, __pt_r) => {
                $crate::prop_assert!(*__pt_l != *__pt_r, $($fmt)*);
            }
        }
    };
}

/// Discard the current case (it is regenerated, not counted) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

//! Value-generation strategies: ranges, tuples, `Just`, and the
//! `prop_map` / `prop_flat_map` combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies are generated through shared references too (so a
/// strategy expression can be borrowed by the `proptest!` macro).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.new_value(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_combinators() {
        let mut rng = TestRng::deterministic(0);
        let s = (1..=4usize, 0..10u32).prop_flat_map(|(n, _)| {
            crate::collection::vec(0.0..1.0f64, n).prop_map(move |v| (n, v))
        });
        for _ in 0..50 {
            let (n, v) = s.new_value(&mut rng);
            assert_eq!(v.len(), n);
            assert!((1..=4).contains(&n));
            assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::deterministic(1);
        assert_eq!(Just(7u32).new_value(&mut rng), 7);
    }
}

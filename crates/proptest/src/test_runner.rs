//! The case runner: configuration, RNG, and the reject/fail protocol.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections across the run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest defaults to 256; 64 keeps this repo's heavier
        // graph-construction properties fast while still exploring widely.
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — regenerate, don't count the case.
    Reject,
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// RNG handed to strategies. Wraps the workspace [`StdRng`] so every
/// generated input is a pure function of `(test name, case index,
/// reject count)` — failures reproduce exactly on rerun.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Deterministic stream for a given 64-bit label.
    pub fn deterministic(label: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(0x70726F_70746573 ^ label),
        }
    }
}

/// Hash a test name to a stable 64-bit stream label (FNV-1a).
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Drive one property: run until `config.cases` cases pass, regenerating
/// rejected cases. Panics on the first failing case.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = name_hash(name);
    let mut rejects = 0u32;
    let mut passed = 0u32;
    let mut stream = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::deterministic(base.wrapping_add(stream));
        stream += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "{name}: too many prop_assume! rejections \
                         ({rejects} rejects, {passed}/{} cases passed)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed at case {passed} (stream {}): {msg}",
                    stream - 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_passing_cases() {
        let mut calls = 0u32;
        run_cases(&ProptestConfig::with_cases(10), "t", |_| {
            calls += 1;
            if calls.is_multiple_of(3) {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(calls > 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics() {
        run_cases(&ProptestConfig::with_cases(5), "t", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    #[should_panic(expected = "too many prop_assume!")]
    fn reject_storm_panics() {
        run_cases(
            &ProptestConfig {
                cases: 1,
                max_global_rejects: 10,
            },
            "t",
            |_| Err(TestCaseError::Reject),
        );
    }

    #[test]
    fn deterministic_streams() {
        use crate::strategy::Strategy;
        let s = 0..1000u32;
        let a = s.new_value(&mut TestRng::deterministic(5));
        let b = s.new_value(&mut TestRng::deterministic(5));
        assert_eq!(a, b);
    }
}

//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Anything usable as a collection size: a fixed `usize`, `a..b`, or
/// `a..=b`.
pub trait IntoSizeRange {
    /// Sample a concrete size.
    fn sample_size(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_size(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "collection size: empty range");
        rng.rng.random_range(self.clone())
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        rng.rng.random_range(self.clone())
    }
}

/// Strategy for a `Vec` whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample_size(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for a `BTreeSet` with a target size drawn from `size`.
///
/// If the element space is too small to reach the target size, the set
/// saturates after a bounded number of attempts rather than looping
/// forever (mirroring upstream proptest's behaviour of giving up on
/// duplicate insertions).
pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: IntoSizeRange,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: IntoSizeRange,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample_size(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = 16 * (target + 1);
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_length_from_range() {
        let mut rng = TestRng::deterministic(0);
        let s = vec(0..100u32, 2..5);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_saturates_small_space() {
        let mut rng = TestRng::deterministic(1);
        // only 2 possible elements, but we ask for up to 10
        let s = btree_set(0..2u32, 10);
        let set = s.new_value(&mut rng);
        assert!(set.len() <= 2);
    }

    #[test]
    fn btree_set_of_tuples() {
        let mut rng = TestRng::deterministic(2);
        let s = btree_set((0..5u32, 0..5u32), 0..12);
        for _ in 0..50 {
            let set = s.new_value(&mut rng);
            assert!(set.len() < 12);
            assert!(set.iter().all(|&(a, b)| a < 5 && b < 5));
        }
    }
}

//! Vendored, dependency-free stand-in for the parts of crates.io `rand`
//! (0.9-era API: `random` / `random_range`) that this workspace uses.
//!
//! The build environment has no registry access and the seed workspace
//! pinned a nonexistent `rand = "0.10"`, so the dependency is satisfied by
//! this path crate instead. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms for a given seed, which is
//! all the reproduction harness requires (it never asks for OS entropy).
//!
//! Implemented surface:
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! * [`rngs::StdRng`]
//! * [`Rng::random`] for `f64`, `f32`, `u32`, `u64`, `bool`
//! * [`Rng::random_range`] over `Range` / `RangeInclusive` of the common
//!   integer types and `f64`
//! * [`RngExt`] — alias of [`Rng`] kept because call sites import both.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(-1.0..1.0)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "random_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Historical alias: some call sites in this workspace import `RngExt`.
pub use Rng as RngExt;

/// Types constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed array.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 (the same
    /// expansion rand 0.9 uses, so behaviour is stable per seed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Fast, passes BigCrush, and — unlike the upstream `StdRng` — its
    /// stream for a given seed is guaranteed stable forever, which keeps
    /// every "deterministic shuffle" in the data generators reproducible.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a live stream.
        ///
        /// Together with [`StdRng::from_state`] this lets a training run
        /// persist its exact position in the random stream and resume
        /// bit-for-bit where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by
        /// [`StdRng::state`], restoring the stream verbatim.
        ///
        /// The all-zero state (a fixed point of xoshiro, unreachable
        /// from any seeded stream) gets the same nudge as
        /// [`super::SeedableRng::from_seed`] so a hand-crafted zero
        /// state cannot produce a degenerate generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Standard-distribution sampling for a value type.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform sampling of an integer in `[0, span)` by widening multiply.
///
/// The ~2^-64 modulo bias is irrelevant for a test/repro workload and
/// buys branch-free determinism.
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
        for _ in 0..1_000 {
            let v = rng.random_range(3..=5u32);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn ufcs_calls_compile() {
        // Mirrors call forms used in the tensor proptest suite.
        let mut rng = StdRng::seed_from_u64(3);
        let _ = crate::RngExt::random::<f64>(&mut rng);
        let _ = crate::RngExt::random_range(&mut rng, -3.0..3.0);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(17);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_state_is_nudged() {
        let mut z = StdRng::from_state([0, 0, 0, 0]);
        // a true all-zero xoshiro state only ever emits zero
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}

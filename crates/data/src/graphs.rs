//! Graph-classification datasets.
//!
//! The paper evaluates on six TUDataset benchmarks (NCI1, NCI109, D&D,
//! MUTAG, Mutagenicity, PROTEINS). Offline, each is replaced by a seeded
//! motif-labelled random-graph generator matched to the published
//! statistics (Table 7): graph count, average nodes/edges, node-label
//! alphabet size and two classes. The label is determined by planted
//! structural motifs (rings / cliques) plus a correlated node-label
//! signal — exactly the meso-level structure hierarchical pooling is
//! supposed to capture, so the benchmark discriminates between flat and
//! multi-grained models the same way the originals do.

use mg_graph::Topology;
use mg_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The six graph-classification benchmarks of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphDatasetKind {
    Nci1,
    Nci109,
    Dd,
    Mutag,
    Mutagenicity,
    Proteins,
}

impl GraphDatasetKind {
    /// All six, in the paper's Table 1 column order.
    pub fn all() -> [GraphDatasetKind; 6] {
        use GraphDatasetKind::*;
        [Nci1, Nci109, Dd, Mutag, Mutagenicity, Proteins]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GraphDatasetKind::Nci1 => "NCI1",
            GraphDatasetKind::Nci109 => "NCI109",
            GraphDatasetKind::Dd => "D&D",
            GraphDatasetKind::Mutag => "MUTAG",
            GraphDatasetKind::Mutagenicity => "Mutagenicity",
            GraphDatasetKind::Proteins => "PROTEINS",
        }
    }

    /// Published statistics from Table 7:
    /// `(graphs, avg_nodes, avg_edges, feature_dim)`. All are 2-class.
    pub fn paper_stats(&self) -> (usize, f64, f64, usize) {
        match self {
            GraphDatasetKind::Nci1 => (4110, 29.87, 32.30, 37),
            GraphDatasetKind::Nci109 => (4127, 29.68, 32.13, 38),
            GraphDatasetKind::Dd => (1178, 284.32, 715.66, 89),
            GraphDatasetKind::Mutag => (188, 17.93, 19.79, 7),
            GraphDatasetKind::Mutagenicity => (4337, 30.32, 30.77, 14),
            GraphDatasetKind::Proteins => (1113, 39.06, 72.82, 32),
        }
    }
}

/// A single labelled graph.
#[derive(Clone, Debug)]
pub struct GraphSample {
    pub graph: Topology,
    /// One-hot node-label features, `n x feat_dim`.
    pub features: Matrix,
    /// Binary class.
    pub label: usize,
}

/// A graph-classification dataset.
#[derive(Clone, Debug)]
pub struct GraphDataset {
    pub name: String,
    pub samples: Vec<GraphSample>,
    pub feat_dim: usize,
    pub num_classes: usize,
}

impl GraphDataset {
    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Average node count.
    pub fn avg_nodes(&self) -> f64 {
        self.samples.iter().map(|s| s.graph.n() as f64).sum::<f64>() / self.len() as f64
    }

    /// Average edge count.
    pub fn avg_edges(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.graph.num_edges() as f64)
            .sum::<f64>()
            / self.len() as f64
    }
}

/// Generation options.
#[derive(Clone, Copy, Debug)]
pub struct GraphGenConfig {
    /// Scale factor on the number of graphs (1.0 = paper size).
    pub scale: f64,
    /// Cap on per-graph node count (D&D averages 284 nodes; capping keeps
    /// the dense 3WL baseline tractable on CPU). `0` disables.
    pub max_nodes: usize,
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            scale: 1.0,
            max_nodes: 120,
            seed: 42,
        }
    }
}

impl GraphGenConfig {
    /// Config with a given scale, defaults elsewhere.
    pub fn with_scale(scale: f64) -> Self {
        GraphGenConfig {
            scale,
            ..Default::default()
        }
    }
}

/// Generate the analogue of one of the paper's graph-classification sets.
pub fn make_graph_dataset(kind: GraphDatasetKind, cfg: &GraphGenConfig) -> GraphDataset {
    let (count0, avg_n, avg_m, feat_dim) = kind.paper_stats();
    let count = ((count0 as f64 * cfg.scale) as usize).max(40);
    let avg_n = if cfg.max_nodes > 0 {
        avg_n.min(cfg.max_nodes as f64)
    } else {
        avg_n
    };
    let avg_m = avg_m.min(avg_n * 2.5);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fxhash(kind.name()));
    let mut samples = Vec::with_capacity(count);
    for g in 0..count {
        let label = g % 2; // balanced classes
        samples.push(make_sample(avg_n, avg_m, feat_dim, label, &mut rng));
    }
    // deterministic shuffle so classes are interleaved randomly
    for i in (1..samples.len()).rev() {
        let j = rng.random_range(0..=i);
        samples.swap(i, j);
    }
    GraphDataset {
        name: kind.name().to_string(),
        samples,
        feat_dim,
        num_classes: 2,
    }
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Top up `edges` with unique extra edges until the graph holds
/// `target_m` *distinct* edges (or the simple graph is full). Draws come
/// from a fork of the stream — an `StdRng` seeded by hashing the edges
/// already drawn — so callers' RNG state is untouched and every draw
/// sequence that existed before this fix is preserved bit for bit.
fn top_up_edges(edges: &mut Vec<(u32, u32)>, n: usize, target_m: usize) {
    let norm = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
    let mut seen: std::collections::HashSet<(u32, u32)> = edges
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| norm(u, v))
        .collect();
    let max_edges = n * (n - 1) / 2;
    let want = target_m.min(max_edges);
    if seen.len() >= want {
        return;
    }
    let fork_seed = edges.iter().fold(0x517c_c1b7_2722_0a95u64, |h, &(u, v)| {
        (h ^ (((u as u64) << 32) | v as u64)).wrapping_mul(0x100000001b3)
    });
    let mut fork = StdRng::seed_from_u64(fork_seed);
    let mut guard = 0;
    while seen.len() < want && guard < 200 * want {
        guard += 1;
        let u = fork.random_range(0..n as u32);
        let v = fork.random_range(0..n as u32);
        if u != v && seen.insert(norm(u, v)) {
            edges.push((u, v));
        }
    }
}

/// One labelled graph: a random connected "molecule-like" backbone.
/// Class 1 graphs contain planted ring motifs whose members carry a
/// biased node-label distribution; class 0 graphs contain star motifs.
fn make_sample(
    avg_n: f64,
    avg_m: f64,
    feat_dim: usize,
    label: usize,
    rng: &mut StdRng,
) -> GraphSample {
    let n = ((avg_n * rng.random_range(0.7..1.3)) as usize).max(8);
    let target_m = ((avg_m / avg_n) * n as f64) as usize;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target_m);
    // random recursive tree backbone
    for v in 1..n as u32 {
        let u = rng.random_range(0..v);
        edges.push((u, v));
    }
    // Extra random edges up to the target count. Historically this loop
    // counted duplicate draws toward `target_m` even though
    // `Topology::from_edges` dedups them later, so generated graphs
    // silently undershot the target edge count. The loop itself is kept
    // byte-identical (the mg-verify graph-classification golden pins its
    // exact draw sequence); the undershoot is repaired afterwards by a
    // *top-up* pass that draws from a forked RNG seeded by hashing the
    // edges drawn so far — the main stream is never perturbed.
    let mut guard = 0;
    while edges.len() < target_m && guard < 20 * target_m {
        guard += 1;
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    top_up_edges(&mut edges, n, target_m);
    // Plant the class signal among *marked* nodes (distinctive atom
    // types, same marginal distribution in both classes). What differs is
    // the arrangement: class 1 wires its marked nodes into rings
    // (functional groups), class 0 scatters the same number of marks over
    // random nodes and adds the same number of plain random edges, so
    // edge counts and feature histograms match across classes. A model
    // must therefore combine node features with local structure — the
    // meso-level signal hierarchical pooling exploits.
    let motif_size = 6.min(n / 2).max(3);
    let num_motifs = (n / 12).max(1);
    let mut motif_members: Vec<u32> = Vec::new();
    for m in 0..num_motifs {
        if label == 1 {
            let start = (m * motif_size) % (n - motif_size);
            let members: Vec<u32> = (start as u32..(start + motif_size) as u32).collect();
            for w in 0..motif_size {
                edges.push((members[w], members[(w + 1) % motif_size]));
            }
            motif_members.extend_from_slice(&members);
        } else {
            // scattered marks, edge budget matched with random edges
            for _ in 0..motif_size {
                motif_members.push(rng.random_range(0..n as u32));
                let u = rng.random_range(0..n as u32);
                let v = rng.random_range(0..n as u32);
                if u != v {
                    edges.push((u, v));
                }
            }
        }
    }
    let graph = Topology::from_edges(n, &edges);
    let motif_set: std::collections::HashSet<u32> = motif_members.into_iter().collect();
    let marked_types = 2.min(feat_dim);
    let mut features = Matrix::zeros(n, feat_dim);
    for i in 0..n {
        let is_member = motif_set.contains(&(i as u32));
        let t = if is_member && rng.random::<f64>() < 0.85 {
            // marked atom type (same distribution in both classes)
            rng.random_range(0..marked_types)
        } else if !is_member && rng.random::<f64>() < 0.12 {
            // distractor mark: features alone must not decide the class
            rng.random_range(0..marked_types)
        } else if feat_dim > marked_types {
            rng.random_range(marked_types..feat_dim)
        } else {
            rng.random_range(0..feat_dim)
        };
        features[(i, t)] = 1.0;
    }
    GraphSample {
        graph,
        features,
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: GraphDatasetKind) -> GraphDataset {
        make_graph_dataset(
            kind,
            &GraphGenConfig {
                scale: 0.02,
                max_nodes: 60,
                seed: 3,
            },
        )
    }

    #[test]
    fn all_kinds_generate() {
        for kind in GraphDatasetKind::all() {
            let ds = tiny(kind);
            assert!(ds.len() >= 40, "{}", ds.name);
            assert!(ds.samples.iter().all(|s| s.label < 2));
            assert!(ds.samples.iter().all(|s| s.features.rows() == s.graph.n()));
        }
    }

    #[test]
    fn classes_are_balanced() {
        let ds = tiny(GraphDatasetKind::Mutag);
        let ones = ds.samples.iter().filter(|s| s.label == 1).count();
        let frac = ones as f64 / ds.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "class-1 fraction = {frac}");
    }

    #[test]
    fn average_sizes_track_paper_stats() {
        let ds = make_graph_dataset(
            GraphDatasetKind::Nci1,
            &GraphGenConfig {
                scale: 0.05,
                max_nodes: 0,
                seed: 9,
            },
        );
        let (_, avg_n, _, _) = GraphDatasetKind::Nci1.paper_stats();
        assert!(
            (ds.avg_nodes() - avg_n).abs() / avg_n < 0.25,
            "avg nodes = {}",
            ds.avg_nodes()
        );
    }

    /// The realized (deduped) edge count must reach the per-graph target
    /// instead of silently undershooting when the extra-edge loop drew
    /// duplicates. Motif planting only *adds* edges on top of the target,
    /// so the per-dataset average must sit at or above the configured
    /// `avg_m` (up to the few motif-edge duplicates dedup removes).
    #[test]
    fn realized_edge_count_reaches_target() {
        for kind in [GraphDatasetKind::Mutag, GraphDatasetKind::Nci1] {
            let ds = make_graph_dataset(
                kind,
                &GraphGenConfig {
                    scale: 0.04,
                    max_nodes: 20,
                    seed: 5,
                },
            );
            let (_, avg_n0, avg_m0, _) = kind.paper_stats();
            let avg_n = avg_n0.min(20.0);
            let avg_m = avg_m0.min(avg_n * 2.5);
            let per_node_target = avg_m / avg_n0.min(20.0);
            // reconstruct the mean of per-graph targets from the samples
            let mean_target = ds
                .samples
                .iter()
                .map(|s| (per_node_target * s.graph.n() as f64).floor())
                .sum::<f64>()
                / ds.len() as f64;
            assert!(
                ds.avg_edges() >= mean_target * 0.98,
                "{}: avg edges {} undershoots target {}",
                ds.name,
                ds.avg_edges(),
                mean_target
            );
        }
    }

    #[test]
    fn top_up_rejects_duplicates_and_fills_to_target() {
        // 3 distinct edges among 6 duplicates; target 5 of max 6
        let mut edges = vec![(0, 1), (1, 0), (0, 1), (1, 2), (2, 1), (2, 3)];
        top_up_edges(&mut edges, 4, 5);
        let distinct: std::collections::HashSet<(u32, u32)> = edges
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        assert_eq!(distinct.len(), 5);
        // a full graph caps at n*(n-1)/2 instead of spinning
        let mut full = vec![(0, 1), (0, 2), (1, 2)];
        top_up_edges(&mut full, 3, 100);
        assert_eq!(full.len(), 3);
        // deterministic: same input, same result
        let mut a = vec![(0, 1), (0, 1)];
        let mut b = vec![(0, 1), (0, 1)];
        top_up_edges(&mut a, 5, 4);
        top_up_edges(&mut b, 5, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_generation() {
        let a = tiny(GraphDatasetKind::Proteins);
        let b = tiny(GraphDatasetKind::Proteins);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.graph.edges(), y.graph.edges());
        }
    }

    #[test]
    fn features_are_one_hot() {
        let ds = tiny(GraphDatasetKind::Mutagenicity);
        for s in &ds.samples {
            for i in 0..s.graph.n() {
                let sum: f64 = s.features.row(i).iter().sum();
                assert_eq!(sum, 1.0);
            }
        }
    }

    #[test]
    fn class1_marked_nodes_form_rings() {
        // in class 1 the marked nodes are wired into cycles, so marked
        // nodes adjacent to >= 2 other marked nodes are far more common
        let ds = tiny(GraphDatasetKind::Nci1);
        let marked = |s: &GraphSample, i: usize| {
            s.features[(i, 0)] > 0.0 || (s.features.cols() > 1 && s.features[(i, 1)] > 0.0)
        };
        let ringiness = |s: &GraphSample| {
            let mut hits = 0.0;
            for i in 0..s.graph.n() {
                if marked(s, i) {
                    let m_neigh = s.graph.neighbors(i).filter(|&j| marked(s, j)).count();
                    if m_neigh >= 2 {
                        hits += 1.0;
                    }
                }
            }
            hits / s.graph.n() as f64
        };
        let avg = |label: usize| {
            let xs: Vec<f64> = ds
                .samples
                .iter()
                .filter(|s| s.label == label)
                .map(ringiness)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            avg(1) > 1.5 * avg(0),
            "ringiness: class1 {} vs class0 {}",
            avg(1),
            avg(0)
        );
    }

    #[test]
    fn graphs_are_connected() {
        let ds = tiny(GraphDatasetKind::Dd);
        for s in ds.samples.iter().take(10) {
            assert_eq!(s.graph.num_components(), 1);
        }
    }
}

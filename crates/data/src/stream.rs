//! Streaming planted-partition generation for million-node graphs, plus
//! the [`NodeFeatureSource`] abstraction that lets training gather
//! features and labels per sampled node without ever materializing a
//! dense `n × d` matrix.
//!
//! The mid-size generators ([`crate::make_node_dataset`]) collect every
//! undirected edge into a `Vec<(u32, u32)>`, then hand it to
//! `Topology::from_edges`, which materializes a second, *symmetric*
//! vector of length 2m before building the CSR — roughly 24 bytes per
//! edge of transient overhead on top of the final structure. At 10⁶
//! nodes that transient dominates. The streaming builder instead replays
//! one deterministic edge stream twice: pass 1 counts degrees and
//! prefix-sums them into `indptr`; pass 2 writes each endpoint directly
//! into its row's slot of the index array. Per-row sort + in-place dedup
//! compaction then establishes the CSR invariants without any
//! edge-tuple vector existing at any point.

use crate::node::NodeDataset;
use mg_graph::Topology;
use mg_tensor::Csr;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-node feature/label access for training loops that gather rows on
/// demand (sampled minibatches) instead of slicing a dense matrix.
pub trait NodeFeatureSource {
    /// Number of nodes.
    fn n(&self) -> usize;
    /// Feature dimensionality.
    fn feat_dim(&self) -> usize;
    /// Number of classes.
    fn num_classes(&self) -> usize;
    /// Label of node `i`.
    fn label(&self, i: usize) -> usize;
    /// Write node `i`'s feature row into `out` (length [`feat_dim`]).
    ///
    /// [`feat_dim`]: NodeFeatureSource::feat_dim
    fn fill_features(&self, i: usize, out: &mut [f64]);
    /// The graph topology.
    fn graph(&self) -> &Topology;
}

impl NodeFeatureSource for NodeDataset {
    fn n(&self) -> usize {
        NodeDataset::n(self)
    }
    fn feat_dim(&self) -> usize {
        NodeDataset::feat_dim(self)
    }
    fn num_classes(&self) -> usize {
        self.num_classes
    }
    fn label(&self, i: usize) -> usize {
        self.labels[i]
    }
    fn fill_features(&self, i: usize, out: &mut [f64]) {
        out.copy_from_slice(self.features.row(i));
    }
    fn graph(&self) -> &Topology {
        &self.graph
    }
}

/// Configuration of the streaming planted-partition generator.
#[derive(Clone, Copy, Debug)]
pub struct BigGraphConfig {
    /// Node count (10⁶⁺ is the design point).
    pub n: usize,
    /// Class count; labels are contiguous blocks so `label(i)` is O(1)
    /// arithmetic with no per-node array.
    pub classes: usize,
    /// Target mean degree (realized degree is slightly lower after
    /// self-loop rejection and duplicate merging).
    pub avg_degree: usize,
    /// Feature dimensionality (rows are synthesized on demand).
    pub feat_dim: usize,
    pub seed: u64,
    /// Hard cap on the builder's peak transient allocation, bytes. The
    /// build panics if its accounting exceeds this.
    pub byte_budget: usize,
}

impl Default for BigGraphConfig {
    fn default() -> Self {
        BigGraphConfig {
            n: 1_000_000,
            classes: 10,
            avg_degree: 8,
            feat_dim: 32,
            seed: 42,
            byte_budget: 256 << 20,
        }
    }
}

/// A streamed planted-partition graph: CSR topology plus O(1)-per-node
/// label arithmetic and on-demand feature synthesis.
pub struct BigGraph {
    topo: Topology,
    classes: usize,
    feat_dim: usize,
    seed: u64,
    /// Peak transient bytes the builder accounted for (degree counts,
    /// indptr, cursors, index array).
    pub peak_bytes: usize,
}

/// Fraction of edges drawn inside the endpoint's own class block — the
/// homophily signal the sampled trainer must be able to pick up.
const INTRA_CLASS: f64 = 0.7;

/// Replay the deterministic edge stream, invoking `emit(u, v)` for every
/// kept draw (`u != v`). Both generator passes call this with the same
/// seed, so they observe byte-identical streams.
fn for_each_edge(cfg: &BigGraphConfig, mut emit: impl FnMut(u32, u32)) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
    let n = cfg.n as u32;
    let m = cfg.n * cfg.avg_degree / 2;
    for _ in 0..m {
        let u = rng.random_range(0..n);
        let v = if rng.random::<f64>() < INTRA_CLASS {
            // uniform inside u's class block
            let c = block_label(u as usize, cfg.n, cfg.classes);
            let lo = (c * cfg.n / cfg.classes) as u32;
            let hi = ((c + 1) * cfg.n / cfg.classes) as u32;
            rng.random_range(lo..hi)
        } else {
            rng.random_range(0..n)
        };
        if u != v {
            emit(u, v);
        }
    }
}

/// Contiguous-block label: node `i` belongs to class `i·classes/n`.
#[inline]
fn block_label(i: usize, n: usize, classes: usize) -> usize {
    (i * classes / n).min(classes - 1)
}

impl BigGraph {
    /// Generate the graph under the configured byte budget.
    ///
    /// # Panics
    /// Panics if the builder's transient allocations would exceed
    /// `cfg.byte_budget`.
    pub fn generate(cfg: &BigGraphConfig) -> BigGraph {
        assert!(cfg.classes >= 1 && cfg.n >= cfg.classes);
        let n = cfg.n;
        let mut peak = 0usize;
        let mut live = 0usize;
        let charge = |live: &mut usize, peak: &mut usize, bytes: usize, budget: usize| {
            *live += bytes;
            *peak = (*peak).max(*live);
            assert!(
                *peak <= budget,
                "streaming CSR build exceeds byte budget: {} > {}",
                *peak,
                budget
            );
        };

        // pass 1: degree counts → indptr prefix sums
        charge(&mut live, &mut peak, 4 * n, cfg.byte_budget);
        let mut deg = vec![0u32; n];
        for_each_edge(cfg, |u, v| {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        });
        charge(&mut live, &mut peak, 8 * (n + 1), cfg.byte_budget);
        let mut indptr: Vec<usize> = Vec::with_capacity(n + 1);
        indptr.push(0);
        let mut acc = 0usize;
        for &d in &deg {
            acc += d as usize;
            indptr.push(acc);
        }
        drop(deg);
        live -= 4 * n;

        // pass 2: direct index-array fill via per-row write cursors
        charge(&mut live, &mut peak, 4 * acc, cfg.byte_budget);
        let mut indices = vec![0u32; acc];
        charge(&mut live, &mut peak, 8 * n, cfg.byte_budget);
        let mut cursor: Vec<usize> = indptr[..n].to_vec();
        for_each_edge(cfg, |u, v| {
            indices[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            indices[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        });
        drop(cursor);
        live -= 8 * n;

        // establish CSR invariants: per-row sort, in-place dedup
        // compaction, indptr fixup (write pointer never passes the read
        // pointer, so no second array is needed)
        let mut w = 0usize;
        let mut row_start = indptr[0];
        for r in 0..n {
            let (rs, re) = (row_start, indptr[r + 1]);
            row_start = re;
            indices[rs..re].sort_unstable();
            let mut prev = u32::MAX;
            for k in rs..re {
                let x = indices[k];
                if x != prev {
                    indices[w] = x;
                    w += 1;
                    prev = x;
                }
            }
            indptr[r + 1] = w;
        }
        indices.truncate(w);
        // the m-entry unique-edge list from_symmetric_csr builds is the
        // last transient; the final structures themselves stay live
        charge(&mut live, &mut peak, 8 * (w / 2), cfg.byte_budget);
        let adj = Csr::from_parts(n, n, indptr, indices);
        let topo = Topology::from_symmetric_csr(adj);
        let _ = live;
        BigGraph {
            topo,
            classes: cfg.classes,
            feat_dim: cfg.feat_dim,
            seed: cfg.seed,
            peak_bytes: peak,
        }
    }
}

/// SplitMix64 finalizer — decorrelates (node, slot) pairs for feature
/// synthesis.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl NodeFeatureSource for BigGraph {
    fn n(&self) -> usize {
        self.topo.n()
    }
    fn feat_dim(&self) -> usize {
        self.feat_dim
    }
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn label(&self, i: usize) -> usize {
        block_label(i, self.topo.n(), self.classes)
    }
    /// Bag-of-words-like row synthesized on demand: four active slots in
    /// the node's own class block plus two uniform noise slots, chosen by
    /// a seeded hash of the node id — the same class-block correlation
    /// the mid-size [`crate::make_node_dataset`] features carry.
    fn fill_features(&self, i: usize, out: &mut [f64]) {
        let d = self.feat_dim;
        debug_assert_eq!(out.len(), d);
        out.fill(0.0);
        let c = self.label(i);
        let block = (d / self.classes).max(1);
        let lo = (c * block).min(d - 1);
        let span = block.min(d - lo);
        let h = mix((i as u64) ^ self.seed.rotate_left(17));
        for t in 0..4u64 {
            let slot = lo + (mix(h ^ t) as usize) % span;
            out[slot] = 1.0;
        }
        for t in 4..6u64 {
            out[(mix(h ^ t) as usize) % d] = 1.0;
        }
    }
    fn graph(&self) -> &Topology {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> BigGraphConfig {
        BigGraphConfig {
            n: 2000,
            classes: 4,
            avg_degree: 8,
            feat_dim: 16,
            seed: 7,
            byte_budget: 4 << 20,
        }
    }

    /// Reference: same edge stream through the quadratic-transient path.
    fn reference_topology(cfg: &BigGraphConfig) -> Topology {
        let mut edges = Vec::new();
        for_each_edge(cfg, |u, v| edges.push((u, v)));
        Topology::from_edges(cfg.n, &edges)
    }

    #[test]
    fn streaming_build_matches_from_edges_exactly() {
        let cfg = small_cfg();
        let got = BigGraph::generate(&cfg);
        let want = reference_topology(&cfg);
        assert_eq!(got.topo.n(), want.n());
        assert_eq!(got.topo.edges(), want.edges());
        for i in (0..cfg.n).step_by(97) {
            assert_eq!(
                got.topo.neighbors(i).collect::<Vec<_>>(),
                want.neighbors(i).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BigGraph::generate(&small_cfg());
        let b = BigGraph::generate(&small_cfg());
        assert_eq!(a.topo.edges(), b.topo.edges());
        let mut ra = vec![0.0; a.feat_dim()];
        let mut rb = vec![0.0; b.feat_dim()];
        for i in [0, 17, 1999] {
            a.fill_features(i, &mut ra);
            b.fill_features(i, &mut rb);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn labels_are_contiguous_balanced_blocks() {
        let g = BigGraph::generate(&small_cfg());
        let mut counts = vec![0usize; g.num_classes()];
        let mut prev = 0;
        for i in 0..g.n() {
            let l = g.label(i);
            assert!(l >= prev, "labels must be non-decreasing");
            prev = l;
            counts[l] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 2000 / 4);
        }
    }

    #[test]
    fn homophily_is_planted() {
        let g = BigGraph::generate(&small_cfg());
        let intra = g
            .topo
            .edges()
            .iter()
            .filter(|&&(u, v)| g.label(u as usize) == g.label(v as usize))
            .count();
        let frac = intra as f64 / g.topo.num_edges() as f64;
        // 0.7 intra draws + 1/classes of the uniform remainder, minus
        // merge noise
        assert!(frac > 0.6, "intra fraction = {frac}");
    }

    #[test]
    fn features_concentrate_in_own_class_block() {
        let g = BigGraph::generate(&small_cfg());
        let mut row = vec![0.0; g.feat_dim()];
        let block = g.feat_dim() / g.num_classes();
        let mut own = 0usize;
        let mut total = 0usize;
        for i in (0..g.n()).step_by(13) {
            g.fill_features(i, &mut row);
            let c = g.label(i);
            for (j, &x) in row.iter().enumerate() {
                if x > 0.0 {
                    total += 1;
                    if j >= c * block && j < (c + 1) * block {
                        own += 1;
                    }
                }
            }
        }
        assert!(own as f64 / total as f64 > 0.6);
    }

    #[test]
    #[should_panic(expected = "exceeds byte budget")]
    fn byte_budget_is_enforced() {
        let cfg = BigGraphConfig {
            byte_budget: 1024,
            ..small_cfg()
        };
        let _ = BigGraph::generate(&cfg);
    }

    #[test]
    fn peak_accounting_reflects_index_array() {
        let cfg = small_cfg();
        let g = BigGraph::generate(&cfg);
        // the index array alone is 4·nnz bytes; peak must cover it
        assert!(g.peak_bytes >= 4 * g.topo.adj().nnz());
        assert!(g.peak_bytes <= cfg.byte_budget);
    }
}

//! # mg-data
//!
//! Synthetic dataset generators for the AdamGNN reproduction, matched to
//! the statistics the paper publishes for its twelve benchmarks, plus
//! train/val/test split utilities. See DESIGN.md for the substitution
//! rationale (the original datasets are not available offline).

pub mod graphs;
pub mod node;
pub mod sampler;
pub mod splits;
pub mod stream;

pub use graphs::{make_graph_dataset, GraphDataset, GraphDatasetKind, GraphGenConfig, GraphSample};
pub use node::{make_node_dataset, NodeDataset, NodeDatasetKind, NodeGenConfig};
pub use sampler::{NeighborSampler, SampledSubgraph};
pub use splits::{sample_non_edges, LinkSplit, Split};
pub use stream::{BigGraph, BigGraphConfig, NodeFeatureSource};

//! Train/validation/test splits.
//!
//! The paper's protocol: 80/10/10 random splits for labelled nodes and
//! graphs; for link prediction, 10% of edges held out for validation and
//! 10% for test, each paired with an equal number of sampled non-edges,
//! with the training graph containing only the remaining 80% of edges.
//!
//! Negative sampling guarantee: [`sample_non_edges`] always returns
//! exactly the requested number of pairs. Its rejection-sampling fast
//! path is bounded, and when it stalls (dense graphs, where distinct
//! non-edges are rare in the u,v grid) it falls back to enumerating the
//! remaining non-edges and drawing without replacement. A graph with too
//! few distinct non-edges for the request is a typed
//! [`MgError::TooDense`] instead of a silently unbalanced negative set —
//! an unbalanced `val_neg`/`val_pos` class mix would bias every AUC
//! computed on it.
//!
//! Error policy: these are user-facing entry points (any dataset the
//! caller supplies can be too small or too dense), so they return
//! `Result<_, MgError>` rather than panicking.

use mg_graph::Topology;
use mg_tensor::MgError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Index split for node or graph classification.
#[derive(Clone, Debug)]
pub struct Split {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

impl Split {
    /// Random 80/10/10 split of `0..n`.
    ///
    /// Fails with [`MgError::InvalidInput`] when `n < 10` (each part
    /// must be non-empty).
    pub fn random_80_10_10(n: usize, seed: u64) -> Result<Split, MgError> {
        if n < 10 {
            return Err(MgError::InvalidInput {
                detail: format!("split needs at least 10 items, got {n}"),
            });
        }
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let n_val = n / 10;
        let n_test = n / 10;
        let n_train = n - n_val - n_test;
        Ok(Split {
            train: idx[..n_train].to_vec(),
            val: idx[n_train..n_train + n_val].to_vec(),
            test: idx[n_train + n_val..].to_vec(),
        })
    }

    /// Sanity: the three parts partition `0..n`.
    pub fn is_partition_of(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        for &i in self.train.iter().chain(&self.val).chain(&self.test) {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        seen.iter().all(|&s| s)
    }
}

/// Link-prediction split: message-passing graph plus positive/negative
/// evaluation pairs.
#[derive(Clone, Debug)]
pub struct LinkSplit {
    /// Graph containing only training edges (input to the encoder).
    pub train_graph: Topology,
    /// Training positive edges (also used for the reconstruction loss).
    pub train_pos: Vec<(usize, usize)>,
    /// Training negatives (resampled per call if desired).
    pub train_neg: Vec<(usize, usize)>,
    pub val_pos: Vec<(usize, usize)>,
    pub val_neg: Vec<(usize, usize)>,
    pub test_pos: Vec<(usize, usize)>,
    pub test_neg: Vec<(usize, usize)>,
}

impl LinkSplit {
    /// Build an 80/10/10 edge split with equal-size sampled non-edges.
    ///
    /// Fails with [`MgError::InvalidInput`] on graphs with fewer than 10
    /// edges and with [`MgError::TooDense`] when the graph has too few
    /// distinct non-edges for class-balanced negative sets.
    pub fn new(g: &Topology, seed: u64) -> Result<LinkSplit, MgError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32)> = g.edges().to_vec();
        if edges.len() < 10 {
            return Err(MgError::InvalidInput {
                detail: format!("link split needs at least 10 edges, got {}", edges.len()),
            });
        }
        for i in (1..edges.len()).rev() {
            let j = rng.random_range(0..=i);
            edges.swap(i, j);
        }
        let m = edges.len();
        let n_val = m / 10;
        let n_test = m / 10;
        let n_train = m - n_val - n_test;
        let train_e = &edges[..n_train];
        let val_e = &edges[n_train..n_train + n_val];
        let test_e = &edges[n_train + n_val..];
        let train_graph = Topology::from_edges(g.n(), train_e);
        let as_pairs =
            |es: &[(u32, u32)]| es.iter().map(|&(u, v)| (u as usize, v as usize)).collect();
        let train_pos: Vec<(usize, usize)> = as_pairs(train_e);
        let val_pos: Vec<(usize, usize)> = as_pairs(val_e);
        let test_pos: Vec<(usize, usize)> = as_pairs(test_e);
        let train_neg = sample_non_edges(g, train_pos.len(), &mut rng)?;
        let val_neg = sample_non_edges(g, val_pos.len(), &mut rng)?;
        let test_neg = sample_non_edges(g, test_pos.len(), &mut rng)?;
        Ok(LinkSplit {
            train_graph,
            train_pos,
            train_neg,
            val_pos,
            val_neg,
            test_pos,
            test_neg,
        })
    }
}

/// Uniformly sample `count` node pairs that are non-edges of `g` (and not
/// self-pairs). Pairs may repeat across calls but not within one call.
///
/// The fast path is rejection sampling with a bounded number of draws.
/// On dense graphs — where the rejection loop can exhaust its guard
/// before finding `count` *distinct* non-edges — it falls back to
/// enumerating the remaining non-edges and drawing the shortfall without
/// replacement, so the returned vector always has exactly `count` pairs.
/// Callers can therefore rely on evaluation sets being class-balanced.
///
/// # Errors
/// [`MgError::TooDense`] when the graph has fewer than `count` distinct
/// non-edges: no sampler can produce a balanced negative set there, and
/// silently returning fewer pairs would skew every metric computed on
/// them (ROC-AUC on a shortfallen negative set reads several points
/// high).
pub fn sample_non_edges(
    g: &Topology,
    count: usize,
    rng: &mut StdRng,
) -> Result<Vec<(usize, usize)>, MgError> {
    let n = g.n();
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    let mut guard = 0usize;
    while out.len() < count && guard < 1000 * count.max(1) {
        guard += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            out.push(key);
        }
    }
    if out.len() < count {
        // Rejection stalled: the distinct non-edges not yet drawn are a
        // vanishing fraction of the u,v grid. Enumerate them (O(n^2),
        // acceptable exactly because the graph is near-complete) and
        // finish with an exact without-replacement draw.
        let mut remaining: Vec<(usize, usize)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) && !seen.contains(&(u, v)) {
                    remaining.push((u, v));
                }
            }
        }
        let need = count - out.len();
        if remaining.len() < need {
            return Err(MgError::TooDense {
                requested: count,
                available: out.len() + remaining.len(),
                nodes: n,
                edges: g.num_edges(),
            });
        }
        // partial Fisher-Yates: the first `need` slots become a uniform
        // without-replacement sample of `remaining`
        for k in 0..need {
            let j = rng.random_range(k..remaining.len());
            remaining.swap(k, j);
            out.push(remaining[k]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_partition() {
        let s = Split::random_80_10_10(103, 5).unwrap();
        assert!(s.is_partition_of(103));
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 10);
        assert_eq!(s.train.len(), 83);
    }

    #[test]
    fn split_is_deterministic() {
        let a = Split::random_80_10_10(50, 9).unwrap();
        let b = Split::random_80_10_10(50, 9).unwrap();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    fn ring(n: usize) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn link_split_partitions_edges() {
        let g = ring(40);
        let ls = LinkSplit::new(&g, 11).unwrap();
        let total = ls.train_pos.len() + ls.val_pos.len() + ls.test_pos.len();
        assert_eq!(total, g.num_edges());
        assert_eq!(ls.train_graph.num_edges(), ls.train_pos.len());
        assert_eq!(ls.val_pos.len(), ls.val_neg.len());
        assert_eq!(ls.test_pos.len(), ls.test_neg.len());
    }

    #[test]
    fn link_split_negatives_are_non_edges() {
        let g = ring(40);
        let ls = LinkSplit::new(&g, 11).unwrap();
        for &(u, v) in ls.val_neg.iter().chain(&ls.test_neg).chain(&ls.train_neg) {
            assert!(!g.has_edge(u, v), "({u},{v}) is an edge");
            assert_ne!(u, v);
        }
    }

    #[test]
    fn held_out_edges_absent_from_train_graph() {
        let g = ring(40);
        let ls = LinkSplit::new(&g, 11).unwrap();
        for &(u, v) in ls.val_pos.iter().chain(&ls.test_pos) {
            assert!(!ls.train_graph.has_edge(u, v));
        }
    }

    #[test]
    fn non_edge_sampler_respects_count() {
        let g = ring(30);
        let mut rng = StdRng::seed_from_u64(0);
        let neg = sample_non_edges(&g, 25, &mut rng).unwrap();
        assert_eq!(neg.len(), 25);
        let set: std::collections::HashSet<_> = neg.iter().collect();
        assert_eq!(set.len(), 25, "no duplicates within a call");
    }

    /// Complete graph on `n` nodes minus the listed (undirected) pairs —
    /// the missing pairs are exactly the distinct non-edges.
    fn complete_minus(n: u32, missing: &[(u32, u32)]) -> Topology {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if !missing.contains(&(u, v)) {
                    edges.push((u, v));
                }
            }
        }
        Topology::from_edges(n as usize, &edges)
    }

    /// Regression: on a near-complete graph the rejection loop exhausts
    /// its guard (each specific non-edge has probability 2/n^2 per draw,
    /// and all 20 must be hit), and the pre-fix sampler silently
    /// returned fewer than `count` pairs. The enumeration fallback must
    /// deliver the full set.
    #[test]
    fn fallback_fills_count_when_rejection_stalls() {
        let missing: Vec<(u32, u32)> = (1..=20).map(|v| (0u32, v)).collect();
        let g = complete_minus(200, &missing);
        let mut rng = StdRng::seed_from_u64(3);
        let neg = sample_non_edges(&g, 20, &mut rng).unwrap();
        assert_eq!(neg.len(), 20, "sampler must return every requested pair");
        let set: std::collections::HashSet<_> = neg.iter().copied().collect();
        assert_eq!(set.len(), 20, "no duplicates");
        for &(u, v) in &neg {
            assert!(!g.has_edge(u, v), "({u},{v}) is an edge");
            assert!(u < v);
        }
    }

    /// The density contract is now a typed error, not a panic: a
    /// complete graph has zero non-edges, so any positive request must
    /// come back as `TooDense` carrying the facts of the refusal.
    #[test]
    fn sampler_errors_when_graph_has_too_few_non_edges() {
        let g = complete_minus(10, &[]);
        let mut rng = StdRng::seed_from_u64(0);
        match sample_non_edges(&g, 5, &mut rng) {
            Err(MgError::TooDense {
                requested,
                available,
                nodes,
                ..
            }) => {
                assert_eq!(requested, 5);
                assert_eq!(available, 0);
                assert_eq!(nodes, 10);
            }
            other => panic!("expected TooDense, got {other:?}"),
        }
    }

    /// A dense graph (two 10-cliques: 90 of 190 possible edges) still
    /// has enough non-edges for every split part — train needs 72 of the
    /// 100 distinct non-edges; the sampler must keep every evaluation
    /// set class-balanced.
    #[test]
    fn link_split_balanced_on_dense_graph() {
        let mut edges = Vec::new();
        for u in 0..20u32 {
            for v in (u + 1)..20 {
                if u % 2 == v % 2 {
                    edges.push((u, v));
                }
            }
        }
        let g = Topology::from_edges(20, &edges);
        let ls = LinkSplit::new(&g, 7).unwrap();
        assert_eq!(ls.val_neg.len(), ls.val_pos.len());
        assert_eq!(ls.test_neg.len(), ls.test_pos.len());
        assert_eq!(ls.train_neg.len(), ls.train_pos.len());
    }

    #[test]
    fn link_split_errors_on_near_complete_graph() {
        // K20 has zero non-edges: balanced negatives are impossible and
        // the split must refuse instead of shipping a skewed class mix.
        let g = complete_minus(20, &[]);
        assert!(matches!(
            LinkSplit::new(&g, 7),
            Err(MgError::TooDense { .. })
        ));
    }

    #[test]
    fn split_and_link_split_reject_tiny_inputs() {
        assert!(matches!(
            Split::random_80_10_10(9, 0),
            Err(MgError::InvalidInput { .. })
        ));
        let g = ring(5);
        assert!(matches!(
            LinkSplit::new(&g, 0),
            Err(MgError::InvalidInput { .. })
        ));
    }
}

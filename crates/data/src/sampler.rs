//! GraphSAGE-style neighbor-sampled ego-subgraphs for minibatch training.
//!
//! Each training step draws a batch of seed nodes, expands a bounded
//! fanout neighborhood around them (one fanout per hop, matching the
//! model's λ-hop receptive field), and materializes the *induced*
//! subgraph over every sampled node as a local [`Topology`] plus a
//! local↔global id remap. AdamGNN's pooling is local (λ-hop egos,
//! local-maximum fitness — paper Eq. 2), so running the full
//! fitness→pooling→flyback stack on the sampled subgraph and scattering
//! gradients to the global parameters is faithful to the full-batch
//! objective restricted to the batch.
//!
//! All randomness is drawn from the caller's `StdRng`, so a checkpointed
//! RNG stream replays the exact sample sequence on resume.

use mg_graph::{BfsScratch, Topology};
use rand::rngs::StdRng;
use rand::RngExt;

/// One sampled minibatch subgraph.
#[derive(Clone, Debug)]
pub struct SampledSubgraph {
    /// Induced topology over the sampled nodes, in local ids.
    pub topo: Topology,
    /// Local → global node id (`nodes[local] == global`).
    pub nodes: Vec<usize>,
    /// Number of leading entries of `nodes` that are seeds: locals
    /// `0..num_seeds` are the deduplicated seed nodes in first-seen
    /// order; loss is computed on these rows only.
    pub num_seeds: usize,
    /// How many nodes had their neighbor list truncated by a fanout cap
    /// during expansion (0 means the batch saw exact neighborhoods).
    pub truncated: usize,
}

impl SampledSubgraph {
    /// Local ids of the seed rows (`0..num_seeds`).
    pub fn seed_locals(&self) -> std::ops::Range<usize> {
        0..self.num_seeds
    }
}

/// Reusable neighbor sampler holding all per-step scratch, allocated
/// once per training run: epoch-stamped membership marks, a global→local
/// id map (only read behind a current-epoch mark, so it never needs
/// clearing), and an index buffer for partial Fisher–Yates fanout
/// selection.
pub struct NeighborSampler {
    scratch: BfsScratch,
    local_of: Vec<u32>,
    idx: Vec<u32>,
}

impl NeighborSampler {
    /// Sampler for graphs of up to `n` nodes.
    pub fn new(n: usize) -> NeighborSampler {
        NeighborSampler {
            scratch: BfsScratch::with_capacity(n),
            local_of: vec![0; n],
            idx: Vec::new(),
        }
    }

    /// Sample one ego-subgraph: mark the (deduplicated) `seeds`, then for
    /// each hop `h` expand every frontier node's neighbor list, keeping
    /// at most `fanouts[h]` uniformly-chosen neighbors (all of them when
    /// degree ≤ fanout). The induced topology contains **every** edge of
    /// the full graph whose endpoints were both sampled — including edges
    /// the expansion itself did not traverse — so the subgraph is exactly
    /// `topo.induced_subgraph(&nodes)` under the remap.
    pub fn sample(
        &mut self,
        topo: &Topology,
        seeds: &[usize],
        fanouts: &[usize],
        rng: &mut StdRng,
    ) -> SampledSubgraph {
        let n = topo.n();
        self.scratch.begin(n);
        if self.local_of.len() < n {
            self.local_of.resize(n, 0);
        }
        let mut nodes: Vec<usize> = Vec::with_capacity(seeds.len() * 4);
        for &s in seeds {
            assert!(s < n, "seed {s} out of range");
            if self.scratch.mark(s) {
                self.local_of[s] = nodes.len() as u32;
                nodes.push(s);
            }
        }
        let num_seeds = nodes.len();
        let mut truncated = 0usize;
        let mut frontier = 0..nodes.len();
        for &fanout in fanouts {
            if frontier.is_empty() {
                break;
            }
            for u_ix in frontier.clone() {
                let u = nodes[u_ix];
                let row = topo.adj().row_indices(u);
                if row.len() <= fanout {
                    for &v in row {
                        let v = v as usize;
                        if self.scratch.mark(v) {
                            self.local_of[v] = nodes.len() as u32;
                            nodes.push(v);
                        }
                    }
                } else {
                    truncated += 1;
                    // partial Fisher–Yates over the neighbor positions:
                    // the first `fanout` slots end up a uniform sample
                    self.idx.clear();
                    self.idx.extend(0..row.len() as u32);
                    for k in 0..fanout {
                        let j = rng.random_range(k..row.len());
                        self.idx.swap(k, j);
                    }
                    for k in 0..fanout {
                        let v = row[self.idx[k] as usize] as usize;
                        if self.scratch.mark(v) {
                            self.local_of[v] = nodes.len() as u32;
                            nodes.push(v);
                        }
                    }
                }
            }
            frontier = frontier.end..nodes.len();
        }
        // induced edges: scan each sampled node's full neighbor list and
        // keep edges whose far endpoint is also sampled — O(Σ deg) over
        // sampled nodes, independent of the full graph's edge count
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (lu, &gu) in nodes.iter().enumerate() {
            for &gv in topo.adj().row_indices(gu) {
                if self.scratch.is_marked(gv as usize) {
                    let lv = self.local_of[gv as usize] as usize;
                    if lu < lv {
                        edges.push((lu as u32, lv as u32));
                    }
                }
            }
        }
        SampledSubgraph {
            topo: Topology::from_edges(nodes.len(), &edges),
            nodes,
            num_seeds,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn grid(w: usize, h: usize) -> Topology {
        let mut edges = Vec::new();
        let at = |x: usize, y: usize| (y * w + x) as u32;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((at(x, y), at(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((at(x, y), at(x, y + 1)));
                }
            }
        }
        Topology::from_edges(w * h, &edges)
    }

    #[test]
    fn seeds_dedup_and_lead_the_remap() {
        let g = grid(4, 4);
        let mut sampler = NeighborSampler::new(g.n());
        let mut rng = StdRng::seed_from_u64(1);
        let sub = sampler.sample(&g, &[5, 10, 5, 10], &[100, 100], &mut rng);
        assert_eq!(sub.num_seeds, 2);
        assert_eq!(&sub.nodes[..2], &[5, 10]);
        assert_eq!(sub.seed_locals(), 0..2);
    }

    #[test]
    fn unbounded_fanout_matches_khop() {
        let g = grid(5, 5);
        let mut sampler = NeighborSampler::new(g.n());
        let mut rng = StdRng::seed_from_u64(2);
        let sub = sampler.sample(&g, &[12], &[100, 100], &mut rng);
        assert_eq!(sub.truncated, 0);
        let mut got = sub.nodes.clone();
        got.sort_unstable();
        assert_eq!(got, g.khop(12, 2));
        // induced edges match the reference induced subgraph
        let mut sorted = sub.nodes.clone();
        sorted.sort_unstable();
        let (reference, _) = g.induced_subgraph(&sorted);
        assert_eq!(sub.topo.num_edges(), reference.num_edges());
    }

    #[test]
    fn fanout_caps_expansion_and_counts_truncations() {
        // star: center 0 with 20 leaves
        let edges: Vec<(u32, u32)> = (1..=20).map(|v| (0, v)).collect();
        let g = Topology::from_edges(21, &edges);
        let mut sampler = NeighborSampler::new(g.n());
        let mut rng = StdRng::seed_from_u64(3);
        let sub = sampler.sample(&g, &[0], &[4], &mut rng);
        assert_eq!(sub.nodes.len(), 5); // center + 4 sampled leaves
        assert_eq!(sub.truncated, 1);
        assert_eq!(sub.topo.num_edges(), 4);
    }

    #[test]
    fn sampling_is_deterministic_in_rng_state() {
        let g = grid(6, 6);
        let mut s1 = NeighborSampler::new(g.n());
        let mut s2 = NeighborSampler::new(g.n());
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for step in 0..5 {
            let a = s1.sample(&g, &[step, step + 7], &[3, 2], &mut r1);
            let b = s2.sample(&g, &[step, step + 7], &[3, 2], &mut r2);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.topo.edges(), b.topo.edges());
            assert_eq!(a.truncated, b.truncated);
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_between_steps() {
        let g = grid(4, 4);
        let mut sampler = NeighborSampler::new(g.n());
        let mut rng = StdRng::seed_from_u64(4);
        let first = sampler.sample(&g, &[0], &[2, 2], &mut rng);
        let second = sampler.sample(&g, &[15], &[2, 2], &mut rng);
        // fresh sample must not contain marks or locals from the first
        assert!(second.nodes.iter().all(|&gl| {
            let mut fresh = NeighborSampler::new(g.n());
            let mut r = StdRng::seed_from_u64(99);
            // membership sanity: every node is within 2 hops of seed 15
            fresh
                .sample(&g, &[15], &[100, 100], &mut r)
                .nodes
                .contains(&gl)
        }));
        assert_eq!(first.nodes[0], 0);
        assert_eq!(second.nodes[0], 15);
    }
}
